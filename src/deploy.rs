//! One-call DeepFlow deployment over a simulated world.
//!
//! Mirrors the paper's §4.1 deployment story ("operators deploy DeepFlow
//! while the service is active"): [`Deployment::install`] attaches the
//! verified eBPF programs to every kernel *in-flight* — no service restarts
//! — installs the standard capture taps, builds the server's resource
//! dictionary from the cluster inventory, and returns a handle that polls
//! agents and ships spans as the world runs.

use df_agent::net_spans::TapContext;
use df_agent::{Agent, AgentConfig};
use df_kernel::VerifierError;
use df_mesh::apps::{install_taps, standard_taps};
use df_mesh::World;
use df_server::Server;
use df_types::{DurationNs, NodeId, Span, TimeNs};
use std::collections::BTreeMap;

/// A running DeepFlow deployment: one agent per node plus the cluster
/// server.
pub struct Deployment {
    /// Agents by node.
    pub agents: BTreeMap<NodeId, Agent>,
    /// The cluster server.
    pub server: Server,
    /// Spans shipped so far.
    pub shipped: u64,
}

impl Deployment {
    /// Deploy on every node of the world: verify + attach hook programs,
    /// install standard taps (pod veths + node NICs), build the tag
    /// dictionary from the topology inventory.
    pub fn install(world: &mut World) -> Result<Deployment, VerifierError> {
        Self::install_with(world, AgentConfig::for_node)
    }

    /// Deploy with a custom per-node agent configuration (e.g. tracepoints
    /// instead of kprobes, different snap lengths).
    pub fn install_with(
        world: &mut World,
        mut config: impl FnMut(NodeId) -> AgentConfig,
    ) -> Result<Deployment, VerifierError> {
        let inventory = world.fabric.topology.resource_inventory();
        let server = Server::new(&inventory);
        let taps = standard_taps(world);
        install_taps(world, &taps);
        let mut agents = BTreeMap::new();
        let nodes: Vec<NodeId> = world.kernels.keys().copied().collect();
        for node in nodes {
            let cfg = config(node);
            world.cpu_tax.insert(node, cfg.cpu_share);
            let kernel = world.kernels.get_mut(&node).expect("node kernel");
            let mut agent = Agent::new(cfg);
            agent.install(kernel)?;
            for (tap_node, interface, kind, local_ips) in &taps {
                if *tap_node == node {
                    agent.register_tap(
                        interface,
                        TapContext {
                            kind: *kind,
                            local_ips: local_ips.clone(),
                        },
                    );
                }
            }
            agents.insert(node, agent);
        }
        Ok(Deployment {
            agents,
            server,
            shipped: 0,
        })
    }

    /// Poll every agent once and ship the spans to the server. Returns how
    /// many spans were shipped.
    pub fn poll(&mut self, world: &mut World, now: TimeNs) -> usize {
        let mut total = 0;
        for (&node, agent) in self.agents.iter_mut() {
            let kernel = world.kernels.get_mut(&node).expect("agent node");
            let spans = agent.poll(kernel, &mut world.fabric, now);
            total += spans.len();
            self.server.ingest_batch(spans);
        }
        self.shipped += total as u64;
        total
    }

    /// [`Self::poll`], but over the DFW1 wire path: each agent encodes its
    /// batch ([`Agent::poll_wire`]) and the server decodes it
    /// ([`Server::ingest_wire`]) — the bytes that would cross the network
    /// in a real deployment. Returns how many spans were shipped; the
    /// result is identical to [`Self::poll`] on the same world state.
    pub fn poll_wire(&mut self, world: &mut World, now: TimeNs) -> usize {
        let mut total = 0;
        for (&node, agent) in self.agents.iter_mut() {
            let kernel = world.kernels.get_mut(&node).expect("agent node");
            if let Some(batch) = agent.poll_wire(kernel, &mut world.fabric, now) {
                total += self
                    .server
                    .ingest_wire(&batch)
                    .expect("agent-encoded batch decodes")
                    .len();
            }
        }
        self.shipped += total as u64;
        total
    }

    /// Poll every agent but keep the spans instead of shipping (benches
    /// that want the raw stream).
    pub fn poll_collect(&mut self, world: &mut World, now: TimeNs) -> Vec<Span> {
        let mut out = Vec::new();
        for (&node, agent) in self.agents.iter_mut() {
            let kernel = world.kernels.get_mut(&node).expect("agent node");
            out.extend(agent.poll(kernel, &mut world.fabric, now));
        }
        out
    }

    /// Run the world until `until`, polling agents every `interval` of
    /// virtual time, with a final poll at the end.
    pub fn run(&mut self, world: &mut World, until: TimeNs, interval: DurationNs) {
        let mut next = world.now() + interval;
        while next < until {
            world.run_until(next);
            self.poll(world, next);
            next += interval;
        }
        world.run_until(until);
        self.poll(world, until);
    }

    /// Aggregate agent statistics.
    pub fn agent_stats(&self) -> df_agent::AgentStats {
        let mut total = df_agent::AgentStats::default();
        for a in self.agents.values() {
            let s = a.stats();
            total.messages += s.messages;
            total.sys_spans += s.sys_spans;
            total.net_spans += s.net_spans;
            total.incomplete_spans += s.incomplete_spans;
            total.unclassified += s.unclassified;
            total.out_of_window += s.out_of_window;
        }
        total
    }
}
