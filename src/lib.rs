//! # deepflow — reproduction of *Network-Centric Distributed Tracing with
//! DeepFlow* (SIGCOMM 2023)
//!
//! Zero-code distributed tracing for microservices: an eBPF-style agent
//! hooks the ten socket syscalls of the paper's Table 3, reconstructs
//! request/response **spans** without any application instrumentation, and
//! a server assembles them into **traces** using *implicit context* —
//! thread ids, coroutine pseudo-threads, proxy X-Request-IDs and TCP
//! sequence numbers — plus smart-encoded resource tags for correlation.
//!
//! Because real kernels/eBPF are unavailable here, the substrate is a
//! deterministic discrete-event simulation (see `DESIGN.md`): simulated
//! kernels with honest TCP sequence accounting, a virtual datacenter
//! network with capture taps and fault injection, and a microservice
//! simulator. All of DeepFlow's own logic — hook programs, protocol
//! inference, session aggregation, systrace chaining, Algorithm 1, smart
//! encoding — is implemented in full and runs over that substrate.
//!
//! ## Quickstart
//!
//! ```
//! use deepflow::prelude::*;
//!
//! // A three-node cluster running the Istio Bookinfo demo at 50 RPS.
//! let mut make_tracer = || deepflow::mesh::apps::no_tracer();
//! let (mut world, handles) =
//!     deepflow::mesh::apps::bookinfo(50.0, DurationNs::from_secs(1), &mut make_tracer);
//!
//! // Deploy DeepFlow: one agent per node, hooks + taps, a cluster server.
//! let mut df = Deployment::install(&mut world).expect("verifier admits the programs");
//!
//! // Run the workload, polling agents as it goes.
//! df.run(&mut world, TimeNs::from_secs(2), DurationNs::from_millis(100));
//!
//! // Query: pick the slowest span in the window and assemble its trace.
//! let slowest = df.server.slowest_span(TimeNs::ZERO, TimeNs::from_secs(2)).unwrap();
//! let trace = df.server.trace(slowest);
//! assert!(trace.len() > 1, "a multi-span distributed trace, in zero code");
//! # let _ = handles;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;

/// The DeepFlow agent.
pub use df_agent as agent;
/// Intrusive tracing baselines.
pub use df_baselines as baselines;
/// Distributed trace assembly across simulated trace-server nodes.
pub use df_cluster as cluster;
/// The simulated kernel substrate.
pub use df_kernel as kernel;
/// The microservice simulator.
pub use df_mesh as mesh;
/// The virtual datacenter network.
pub use df_net as net;
/// L7 protocol codecs and inference.
pub use df_protocols as protocols;
/// The DeepFlow server.
pub use df_server as server;
/// The columnar span store.
pub use df_storage as storage;
/// Shared data model (ids, spans, traces, tags, metrics).
pub use df_types as types;

pub use deploy::Deployment;

/// The common imports.
pub mod prelude {
    pub use crate::deploy::Deployment;
    pub use df_agent::{Agent, AgentConfig};
    pub use df_mesh::{ClientSpec, ServiceSpec, World};
    pub use df_server::Server;
    pub use df_storage::SpanQuery;
    pub use df_types::{
        DurationNs, L7Protocol, NodeId, Span, SpanId, SpanKind, SpanStatus, TapSide, TimeNs, Trace,
    };
}
