//! Minimal offline stand-in for `criterion`.
//!
//! Same bench authoring surface (`criterion_group!`, `criterion_main!`,
//! `Criterion`, groups, `BenchmarkId`, `Throughput`, `Bencher::iter`), with
//! a simple measurement loop: warm up for ~100 ms, then time batches for
//! ~500 ms and report the mean ns/iter (plus throughput when declared).
//! Passing `--test` (as `cargo bench -- --test` does) runs each benchmark
//! body once without measuring, so CI can smoke-test benches cheaply. A
//! positional argument is a substring filter on the full benchmark label,
//! as with the real crate: `cargo bench -- alg1_scale` runs only matching
//! benchmarks.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id with an explicit function name and parameter display.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from just a parameter (group name provides the function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Declared per-iteration work, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    test_mode: bool,
    mean_ns: f64,
}

impl Bencher {
    /// Measure `routine`, discarding its output via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.mean_ns = 0.0;
            return;
        }
        // Warm-up: run until ~100ms elapsed.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(100) {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size that keeps timer overhead negligible.
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)).ceil() as u64).clamp(1, 1_000_000);
        // Measure for ~500ms.
        let measure_start = Instant::now();
        let mut total_iters = 0u64;
        while measure_start.elapsed() < Duration::from_millis(500) {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total_iters += batch;
        }
        self.mean_ns = measure_start.elapsed().as_nanos() as f64 / total_iters as f64;
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        // First non-flag argument is a substring filter on benchmark labels.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            None,
            id.into(),
            self.test_mode,
            self.filter.as_deref(),
            None,
            f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            filter: self.filter.clone(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    filter: Option<String>,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            Some(&self.name),
            id.into(),
            self.test_mode,
            self.filter.as_deref(),
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            Some(&self.name),
            id.into(),
            self.test_mode,
            self.filter.as_deref(),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    test_mode: bool,
    filter: Option<&str>,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.name),
        None => id.name,
    };
    if let Some(needle) = filter {
        if !label.contains(needle) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode,
        mean_ns: 0.0,
    };
    f(&mut b);
    if test_mode {
        println!("{label:<48} ok (test mode)");
        return;
    }
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (b.mean_ns / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (b.mean_ns / 1e9))
        }
        None => String::new(),
    };
    println!("{label:<48} time: {:>12}{tp}", fmt_time(b.mean_ns));
}

/// `std::hint::black_box` re-export matching the real crate's helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
