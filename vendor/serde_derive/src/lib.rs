//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The registry is unreachable from the build container, so `syn`/`quote`
//! are unavailable; this macro parses the derive input by hand from the raw
//! token stream and emits impl code as strings. It supports exactly the
//! shapes this workspace uses: non-generic structs (named, tuple, unit) and
//! enums (unit, tuple, struct variants), mapped onto the JSON value tree
//! with serde's default externally-tagged conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        loop {
            match (self.peek(), self.toks.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }
}

fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by the vendored serde");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, got `{other}`"),
    };
    (name, shape)
}

/// Field names of a `{ a: T, b: U }` body. Types are skipped at top level
/// (tracking `<`/`>` depth so generic arguments' commas don't split fields).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        let Some(TokenTree::Ident(_)) = c.peek() else {
            break;
        };
        fields.push(c.expect_ident("field name"));
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        let mut angle = 0i32;
        loop {
            match c.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let ch = p.as_char();
                    if ch == '<' {
                        angle += 1;
                    } else if ch == '>' {
                        angle -= 1;
                    } else if ch == ',' && angle == 0 {
                        c.pos += 1;
                        break;
                    }
                    c.pos += 1;
                }
                Some(_) => c.pos += 1,
            }
        }
    }
    fields
}

/// Arity of a `(T, U, ...)` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_item_since_comma = true;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    saw_item_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        if !saw_item_since_comma {
            count += 1;
            saw_item_since_comma = true;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, VariantShape)> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let Some(TokenTree::Ident(_)) = c.peek() else {
            break;
        };
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = VariantShape::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = VariantShape::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                s
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.pos += 1;
            }
        }
    }
    variants
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Object(::std::vec![{}])",
                pairs.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::value::Value::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "::serde::value::Value::Array(::std::vec![{}])",
                                items.join(", ")
                            )
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::value::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{v}\"), {payload})]),",
                            binds = binds.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {fields} }} => ::serde::value::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{v}\"), \
                             ::serde::value::Value::Object(::std::vec![{pairs}]))]),",
                            fields = fields.join(", "),
                            pairs = pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::__private::field(__o, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "let __o = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(__a.get({i}).ok_or_else(|| \
                         ::serde::DeError::expected(\"tuple element\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => {
                        format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),")
                    }
                    VariantShape::Tuple(1) => format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(__payload)?)),"
                    ),
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize(__a.get({i})\
                                     .ok_or_else(|| ::serde::DeError::expected(\
                                     \"tuple variant element\"))?)?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => {{ let __a = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v}({})) }}",
                            inits.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(\
                                     ::serde::__private::field(__o, \"{f}\"))?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => {{ let __o = __payload.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }}) }}",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "let (__tag, __payload) = ::serde::__private::variant(__v)?;\n\
                 match __tag {{\n{}\n__other => ::std::result::Result::Err(\
                 ::serde::DeError::custom(::std::format!(\
                 \"unknown variant {{__other}} for {name}\"))) }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl failed to parse")
}
