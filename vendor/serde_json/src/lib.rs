//! Minimal offline stand-in for `serde_json`.
//!
//! Prints and parses the vendored serde crate's [`Value`] tree as JSON, and
//! provides the `json!` construction macro. Integers keep `u128`/`i128`
//! fidelity through a round trip; floats print with enough precision to
//! round-trip `f64`.

// The `json!` tt-muncher builds arrays/objects by pushing element by
// element; a literal `vec![]` is not expressible in that expansion.
#![allow(clippy::vec_init_then_push)]

pub use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization / parse failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize any `Serialize` type to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U(n) => out.push_str(&n.to_string()),
        Value::I(n) => out.push_str(&n.to_string()),
        Value::F(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            });
        }
        Value::Object(pairs) => {
            write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_json_string(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &pairs[i].1, indent, depth + 1)
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat("]") {
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat("]") {
                        return Ok(Value::Array(items));
                    }
                    return Err(self.err("expected `,` or `]`"));
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.eat("}") {
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(":") {
                        return Err(self.err("expected `:`"));
                    }
                    pairs.push((key, self.value()?));
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat("}") {
                        return Ok(Value::Object(pairs));
                    }
                    return Err(self.err("expected `,` or `}`"));
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        if !self.eat("\"") {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u128>() {
                    return Ok(Value::I(-(n as i128)));
                }
            } else if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Construct a [`Value`] from JSON-ish syntax. Supports object / array
/// literals, `null`, and arbitrary Rust expressions in value position
/// (anything with `Into<Value>`, including multi-token method chains).
#[macro_export]
macro_rules! json {
    // -- object entry muncher: (@obj vec entries...) --
    (@obj $vec:ident) => {};
    (@obj $vec:ident $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push((::std::string::String::from($key), $crate::json!({ $($inner)* })));
        $( $crate::json!(@obj $vec $($rest)*); )?
    };
    (@obj $vec:ident $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push((::std::string::String::from($key), $crate::json!([ $($inner)* ])));
        $( $crate::json!(@obj $vec $($rest)*); )?
    };
    (@obj $vec:ident $key:tt : null $(, $($rest:tt)*)?) => {
        $vec.push((::std::string::String::from($key), $crate::Value::Null));
        $( $crate::json!(@obj $vec $($rest)*); )?
    };
    (@obj $vec:ident $key:tt : $val:expr $(, $($rest:tt)*)?) => {
        $vec.push((::std::string::String::from($key), $crate::Value::from($val)));
        $( $crate::json!(@obj $vec $($rest)*); )?
    };
    // -- array item muncher: (@arr vec items...) --
    (@arr $vec:ident) => {};
    (@arr $vec:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($inner)* }));
        $( $crate::json!(@arr $vec $($rest)*); )?
    };
    (@arr $vec:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($inner)* ]));
        $( $crate::json!(@arr $vec $($rest)*); )?
    };
    (@arr $vec:ident null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $( $crate::json!(@arr $vec $($rest)*); )?
    };
    (@arr $vec:ident $val:expr $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::from($val));
        $( $crate::json!(@arr $vec $($rest)*); )?
    };
    // -- entry points --
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        // The tt-muncher pushes element by element; a literal vec![] is not
        // expressible here.
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json!(@arr __items $($tt)*);
        $crate::Value::Array(__items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut __pairs: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json!(@obj __pairs $($tt)*);
        $crate::Value::Object(__pairs)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars_and_structures() {
        let v = json!({
            "a": 1u64,
            "b": [1, 2, 3],
            "c": {"nested": true, "f": 1.5},
            "s": "hé\"llo",
            "n": null,
            "big": 340282366920938463463374607431768211455u128,
        });
        let text = to_string(&v).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }
}
