//! The JSON value tree both `serde` derives and `serde_json` operate on.

/// A JSON value. Numbers keep full integer fidelity (`u128`/`i128`) so that
/// wide ids (e.g. 128-bit trace ids) round-trip exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U(u128),
    /// Negative integer.
    I(i128),
    /// Floating point.
    F(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Numeric view (lossy for very large integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U(n) => Some(*n as f64),
            Value::I(n) => Some(*n as f64),
            Value::F(f) => Some(*f),
            _ => None,
        }
    }

    /// `u64` view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Member lookup on objects; `Null` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; `Null` for missing keys or non-objects.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access; `Null` out of bounds or for non-arrays.
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::U(v as u128) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 { Value::U(v as u128) } else { Value::I(v as i128) }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}

from_uint!(u8, u16, u32, u64, u128, usize);
from_int!(i8, i16, i32, i64, i128, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F(v)
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::F(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F(f64::from(v))
    }
}

impl From<&f32> for Value {
    fn from(v: &f32) -> Value {
        Value::F(f64::from(*v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::Str((*v).to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T> From<std::collections::HashMap<String, T>> for Value
where
    Value: From<T>,
{
    /// Keys are sorted so the rendered object is deterministic.
    fn from(m: std::collections::HashMap<String, T>) -> Value {
        let mut pairs: Vec<(String, Value)> =
            m.into_iter().map(|(k, v)| (k, Value::from(v))).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<T> From<std::collections::BTreeMap<String, T>> for Value
where
    Value: From<T>,
{
    fn from(m: std::collections::BTreeMap<String, T>) -> Value {
        Value::Object(m.into_iter().map(|(k, v)| (k, Value::from(v))).collect())
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => Value::from(inner),
            None => Value::Null,
        }
    }
}
