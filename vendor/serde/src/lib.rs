//! Minimal offline stand-in for `serde`.
//!
//! The container image cannot reach a crate registry, so the workspace
//! vendors the external crates it uses. This crate keeps the parts the
//! workspace relies on: `#[derive(Serialize, Deserialize)]` and JSON
//! round-tripping through `serde_json`. Instead of serde's visitor-based
//! data model it uses a simple JSON value tree ([`value::Value`]) that the
//! sibling `serde_json` crate prints and parses; derives map structs and
//! enums onto it with serde's default (externally tagged) conventions.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization failure: what was expected vs. what the value held.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Error stating what the deserializer expected.
    pub fn expected(what: &str) -> Self {
        DeError {
            msg: format!("expected {what}"),
        }
    }

    /// Error with a pre-formatted message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a JSON value tree.
pub trait Serialize {
    /// Produce the value tree.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a JSON value tree.
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // The sign test is tautological for the unsigned instantiations.
            #[allow(unused_comparisons)]
            fn serialize(&self) -> Value {
                if *self >= 0 {
                    Value::U(*self as u128)
                } else {
                    Value::I(*self as i128)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    Value::I(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    Value::F(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F(f) => Ok(*f),
            Value::U(n) => Ok(*n as f64),
            Value::I(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array"))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array"))?;
                Ok(($(
                    $t::deserialize(
                        items.get($n).ok_or_else(|| DeError::expected("tuple element"))?,
                    )?,
                )+))
            }
        }
    )+};
}

tuple_impl!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DeError::expected("ipv4 address string"))
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

/// Helpers the derive-generated code calls. Not part of the public contract.
pub mod __private {
    use super::{DeError, Value};

    static NULL: Value = Value::Null;

    /// Look up a field in an object, treating a missing key as `null` (so
    /// `Option` fields tolerate older payloads).
    pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> &'v Value {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }

    /// The single `{variant: payload}` pair of an externally tagged enum.
    pub fn variant(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::Str(s) => Ok((s.as_str(), &NULL)),
            Value::Object(o) if o.len() == 1 => Ok((o[0].0.as_str(), &o[0].1)),
            _ => Err(DeError::expected("enum variant")),
        }
    }
}
