//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides `SmallRng` (splitmix64-seeded xoshiro256**), the `Rng` /
//! `SeedableRng` trait surface this workspace uses (`gen`, `gen_range`,
//! `gen_bool`), and nothing else. Deterministic for a given seed, which is
//! all the simulation substrate requires.

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample within a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: std::ops::RangeBounds<T>,
    {
        T::sample_range(self, &range)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types uniformly sampleable over their whole domain (`[0, 1)` for floats).
pub trait Standard {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                let hi = rng.next_u64() as u128;
                if std::mem::size_of::<$t>() > 8 {
                    let lo = rng.next_u64() as u128;
                    ((hi << 64) | lo) as $t
                } else {
                    hi as $t
                }
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}

/// Types sampleable uniformly within a range.
pub trait SampleUniform: Sized {
    /// Sample within `range`; panics when the range is empty.
    fn sample_range<R: RngCore, B: std::ops::RangeBounds<Self>>(rng: &mut R, range: &B) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore, B: std::ops::RangeBounds<Self>>(
                rng: &mut R,
                range: &B,
            ) -> Self {
                use std::ops::Bound;
                let lo: u128 = match range.start_bound() {
                    Bound::Included(&v) => v as u128,
                    Bound::Excluded(&v) => v as u128 + 1,
                    Bound::Unbounded => 0,
                };
                // Inclusive upper bound, so a full-domain u128 range stays
                // representable; a zero span below means "whole domain".
                let hi_incl: u128 = match range.end_bound() {
                    Bound::Included(&v) => v as u128,
                    Bound::Excluded(&v) => {
                        assert!(v as u128 > 0, "gen_range: empty range");
                        v as u128 - 1
                    }
                    Bound::Unbounded => <$t>::MAX as u128,
                };
                assert!(lo <= hi_incl, "gen_range: empty range");
                let span = hi_incl.wrapping_sub(lo).wrapping_add(1);
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                if span == 0 {
                    raw as $t
                } else {
                    (lo + raw % span) as $t
                }
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, u128, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore, B: std::ops::RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 1.0,
        };
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// RNG namespaces mirroring the real crate's layout.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the reference xoshiro seeding does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v: u64 = a.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            let u: usize = a.gen_range(0..3);
            assert!(u < 3);
        }
    }
}
