//! Minimal offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro, `any::<T>()`, integer-range strategies, tuple
//! strategies, `collection::vec`, `option::of`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test RNG; there is
//! no shrinking — failures report the case number and seed instead, and
//! `PROPTEST_CASES` overrides the case count (default 64).

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic RNG driving generation (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15) ^ 1,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                (self.start as u128 + rng.next_u128() % span) as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Whole-domain strategy marker returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
    (A, B, C, D, E, F, G, H, I),
    (A, B, C, D, E, F, G, H, I, J),
    (A, B, C, D, E, F, G, H, I, J, K),
    (A, B, C, D, E, F, G, H, I, J, K, L),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count range for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Number of cases per property (PROPTEST_CASES env override, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, case_count, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        Strategy, TestRng,
    };
}

/// Assert inside a property; fails the current case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($a), ::std::stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __a, __b
            ));
        }
    }};
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                __a
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::case_count();
            for __case in 0..__cases {
                let mut __rng =
                    $crate::TestRng::for_case(::std::stringify!($name), __case);
                #[allow(unused_mut, unused_variables)]
                let ($($pat,)+) = (
                    $($crate::Strategy::generate(&($strategy), &mut __rng),)+
                );
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "property `{}` failed on case {}/{}:\n{}\n\
                         (re-run deterministically; cases are seeded by test name + index)",
                        ::std::stringify!($name), __case, __cases, __e
                    );
                }
            }
        }
    )*};
}
