//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `Bytes` API this workspace uses: cheap
//! clones via `Arc`, zero-copy `slice`, `Deref` to `[u8]`, and (behind the
//! `serde` feature) JSON round-tripping. The container image cannot reach a
//! crate registry, so the workspace vendors the handful of external crates
//! it depends on.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wrap a static slice (copies here; the real crate borrows, but the
    /// behavioural contract is identical for this workspace).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy out to an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn serialize(&self) -> serde::value::Value {
        serde::value::Value::Array(
            self.as_ref()
                .iter()
                .map(|&b| serde::value::Value::from(b))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn deserialize(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| serde::DeError::expected("byte array"))?;
        let mut out = Vec::with_capacity(items.len());
        for it in items {
            out.push(u8::deserialize(it)?);
        }
        Ok(Bytes::from_vec(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation_and_bounds_check() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2u8, 3]));
        assert_eq!(b.len(), 5);
    }
}
