//! MQTT v3.1 — packet-type framing with packet identifiers.

use crate::{Key, MessageSummary};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType};

const CONNECT: u8 = 1;
const CONNACK: u8 = 2;
const PUBLISH: u8 = 3;
const PUBACK: u8 = 4;
const SUBSCRIBE: u8 = 8;
const SUBACK: u8 = 9;
const PINGREQ: u8 = 12;
const PINGRESP: u8 = 13;

fn fixed(ptype: u8, flags: u8, body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(2 + body.len());
    out.push((ptype << 4) | (flags & 0x0f));
    assert!(body.len() < 128, "single-byte remaining-length only");
    out.push(body.len() as u8);
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// CONNECT with a client id.
pub fn connect(client_id: &str) -> Bytes {
    let mut body = vec![0, 4];
    body.extend_from_slice(b"MQTT");
    body.push(4); // protocol level 3.1.1
    body.push(0x02); // clean session
    body.extend_from_slice(&60u16.to_be_bytes()); // keepalive
    body.extend_from_slice(&(client_id.len() as u16).to_be_bytes());
    body.extend_from_slice(client_id.as_bytes());
    fixed(CONNECT, 0, &body)
}

/// CONNACK (return code 0 = accepted).
pub fn connack(code: u8) -> Bytes {
    fixed(CONNACK, 0, &[0, code])
}

/// PUBLISH QoS1 with a packet id.
pub fn publish(packet_id: u16, topic: &str, payload: &[u8]) -> Bytes {
    let mut body = Vec::new();
    body.extend_from_slice(&(topic.len() as u16).to_be_bytes());
    body.extend_from_slice(topic.as_bytes());
    body.extend_from_slice(&packet_id.to_be_bytes());
    body.extend_from_slice(payload);
    fixed(PUBLISH, 0x02, &body) // QoS 1
}

/// PUBACK.
pub fn puback(packet_id: u16) -> Bytes {
    fixed(PUBACK, 0, &packet_id.to_be_bytes())
}

/// SUBSCRIBE.
pub fn subscribe(packet_id: u16, topic: &str) -> Bytes {
    let mut body = packet_id.to_be_bytes().to_vec();
    body.extend_from_slice(&(topic.len() as u16).to_be_bytes());
    body.extend_from_slice(topic.as_bytes());
    body.push(1); // requested QoS
    fixed(SUBSCRIBE, 0x02, &body)
}

/// SUBACK.
pub fn suback(packet_id: u16) -> Bytes {
    let mut body = packet_id.to_be_bytes().to_vec();
    body.push(1);
    fixed(SUBACK, 0, &body)
}

/// PINGREQ.
pub fn pingreq() -> Bytes {
    fixed(PINGREQ, 0, &[])
}

/// PINGRESP.
pub fn pingresp() -> Bytes {
    fixed(PINGRESP, 0, &[])
}

/// Does the payload look like MQTT?
pub fn sniff(payload: &[u8]) -> bool {
    if payload.len() < 2 {
        return false;
    }
    let ptype = payload[0] >> 4;
    if !(1..=14).contains(&ptype) {
        return false;
    }
    let remaining = payload[1] as usize;
    remaining + 2 == payload.len() && (ptype != CONNECT || payload.get(4..8) == Some(b"MQTT"))
}

/// Parse an MQTT message.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if !sniff(payload) {
        return None;
    }
    let ptype = payload[0] >> 4;
    let body = &payload[2..];
    let (msg_type, key, endpoint, err) = match ptype {
        CONNECT => (
            MessageType::Request,
            Key::Ordered,
            "CONNECT".to_string(),
            false,
        ),
        CONNACK => {
            let code = body.get(1).copied().unwrap_or(0);
            (
                MessageType::Response,
                Key::Ordered,
                "CONNACK".to_string(),
                code != 0,
            )
        }
        PUBLISH => {
            let tlen = u16::from_be_bytes([*body.first()?, *body.get(1)?]) as usize;
            let topic = std::str::from_utf8(body.get(2..2 + tlen)?).ok()?;
            let pid = u16::from_be_bytes([*body.get(2 + tlen)?, *body.get(3 + tlen)?]);
            (
                MessageType::Request,
                Key::Multiplexed(u64::from(pid)),
                format!("PUBLISH {topic}"),
                false,
            )
        }
        PUBACK => {
            let pid = u16::from_be_bytes([*body.first()?, *body.get(1)?]);
            (
                MessageType::Response,
                Key::Multiplexed(u64::from(pid)),
                "PUBACK".to_string(),
                false,
            )
        }
        SUBSCRIBE => {
            let pid = u16::from_be_bytes([*body.first()?, *body.get(1)?]);
            (
                MessageType::Request,
                Key::Multiplexed(u64::from(pid)),
                "SUBSCRIBE".to_string(),
                false,
            )
        }
        SUBACK => {
            let pid = u16::from_be_bytes([*body.first()?, *body.get(1)?]);
            (
                MessageType::Response,
                Key::Multiplexed(u64::from(pid)),
                "SUBACK".to_string(),
                false,
            )
        }
        PINGREQ => (
            MessageType::Request,
            Key::Ordered,
            "PINGREQ".to_string(),
            false,
        ),
        PINGRESP => (
            MessageType::Response,
            Key::Ordered,
            "PINGRESP".to_string(),
            false,
        ),
        _ => (
            MessageType::Unknown,
            Key::Ordered,
            format!("T{ptype}"),
            false,
        ),
    };
    let mut s = MessageSummary::basic(L7Protocol::Mqtt, msg_type, key, endpoint);
    s.server_error = err;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_connack_round_trip() {
        let c = connect("sensor-17");
        assert!(sniff(&c));
        let p = parse(&c).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.endpoint, "CONNECT");

        let ok = parse(&connack(0)).unwrap();
        assert!(!ok.server_error);
        let bad = parse(&connack(5)).unwrap();
        assert!(bad.server_error);
    }

    #[test]
    fn publish_puback_share_packet_id() {
        let pb = parse(&publish(321, "telemetry/temp", b"21.5")).unwrap();
        assert_eq!(pb.session_key, Key::Multiplexed(321));
        assert_eq!(pb.endpoint, "PUBLISH telemetry/temp");
        let ack = parse(&puback(321)).unwrap();
        assert_eq!(ack.session_key, pb.session_key);
        assert_eq!(ack.msg_type, MessageType::Response);
    }

    #[test]
    fn subscribe_suback_round_trip() {
        let s = parse(&subscribe(9, "alerts/#")).unwrap();
        assert_eq!(s.session_key, Key::Multiplexed(9));
        let a = parse(&suback(9)).unwrap();
        assert_eq!(a.session_key, s.session_key);
    }

    #[test]
    fn ping_pair() {
        assert_eq!(parse(&pingreq()).unwrap().msg_type, MessageType::Request);
        assert_eq!(parse(&pingresp()).unwrap().msg_type, MessageType::Response);
    }

    #[test]
    fn sniff_rejects_other_protocols() {
        assert!(!sniff(b"GET / HTTP/1.1\r\n"));
        assert!(!sniff(b"\x00\x01"));
    }
}
