//! Protocol inference (paper §3.3.1, Figure 6 phase 2).
//!
//! "After the message data has been transferred to the user space, the
//! DeepFlow Agent iterates through the common protocol specifications …
//! executing a one-time protocol inference for each newly established
//! connection."
//!
//! [`infer_protocol`] tries each codec's sniffer, most-distinctive magic
//! first (binary magics before text heuristics) so that, e.g., a Dubbo frame
//! is never mistaken for MySQL. [`InferenceEngine`] adds the per-connection
//! caching and bounded retry: once a flow is classified, later messages skip
//! sniffing; a flow that defies classification a few times is marked
//! [`L7Protocol::Unknown`] and only measured at L4.

use crate::{amqp, dns, dubbo, http1, http2, kafka, mqtt, mysql, redis, MessageSummary};
use df_types::L7Protocol;
use std::collections::HashMap;

/// Re-export: a fully parsed message.
pub type ParsedMessage = MessageSummary;

/// A payload classifier for a custom protocol.
pub type SniffFn = Box<dyn Fn(&[u8]) -> bool + Send>;
/// A payload parser for a custom protocol.
pub type ParseFn = Box<dyn Fn(&[u8]) -> Option<MessageSummary> + Send>;

/// A user-supplied protocol specification (paper §3.3.1: the agent also
/// iterates "the optional user-supplied protocol specifications").
pub struct CustomProtocol {
    /// Display name.
    pub name: String,
    /// Does a payload belong to this protocol?
    pub sniff: SniffFn,
    /// Parse a payload. The returned summary's `protocol` field is
    /// overwritten with the registered `L7Protocol::Custom` slot.
    pub parse: ParseFn,
}

impl std::fmt::Debug for CustomProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomProtocol")
            .field("name", &self.name)
            .finish()
    }
}

/// Try every sniffer, returning the first protocol that matches.
pub fn infer_protocol(payload: &[u8]) -> Option<L7Protocol> {
    if payload.is_empty() {
        return None;
    }
    // Binary magics first — they cannot false-positive on text protocols.
    if dubbo::sniff(payload) {
        return Some(L7Protocol::Dubbo);
    }
    if amqp::sniff(payload) {
        return Some(L7Protocol::Amqp);
    }
    if http2::sniff(payload) {
        return Some(L7Protocol::Http2);
    }
    if http1::sniff(payload) {
        return Some(L7Protocol::Http1);
    }
    if redis::sniff(payload) {
        return Some(L7Protocol::Redis);
    }
    if kafka::sniff(payload) {
        return Some(L7Protocol::Kafka);
    }
    if mqtt::sniff(payload) {
        return Some(L7Protocol::Mqtt);
    }
    if dns::sniff(payload) {
        return Some(L7Protocol::Dns);
    }
    if mysql::sniff(payload) {
        return Some(L7Protocol::Mysql);
    }
    None
}

/// Parse a message under a known protocol.
pub fn parse_message(protocol: L7Protocol, payload: &[u8]) -> Option<ParsedMessage> {
    match protocol {
        L7Protocol::Http1 => http1::parse(payload),
        L7Protocol::Http2 => http2::parse(payload),
        L7Protocol::Dns => dns::parse(payload),
        L7Protocol::Redis => redis::parse(payload),
        L7Protocol::Mysql => mysql::parse(payload),
        L7Protocol::Kafka => kafka::parse(payload),
        L7Protocol::Mqtt => mqtt::parse(payload),
        L7Protocol::Dubbo => dubbo::parse(payload),
        L7Protocol::Amqp => amqp::parse(payload),
        // Custom protocols are parsed by the engine that registered them.
        L7Protocol::Custom(_) | L7Protocol::Tls | L7Protocol::Unknown => None,
    }
}

#[derive(Debug, Clone, Copy)]
enum CacheEntry {
    Known(L7Protocol),
    Undetermined(u8),
    GaveUp,
}

/// Per-connection inference state.
#[derive(Debug)]
pub struct InferenceEngine {
    cache: HashMap<u64, CacheEntry>,
    max_attempts: u8,
    custom: Vec<CustomProtocol>,
    /// Successful one-shot inferences (diagnostics).
    pub inferences: u64,
    /// Messages parsed under a cached protocol.
    pub cache_hits: u64,
}

impl Default for InferenceEngine {
    fn default() -> Self {
        InferenceEngine::new(3)
    }
}

impl InferenceEngine {
    /// Engine giving each flow `max_attempts` messages to classify.
    pub fn new(max_attempts: u8) -> Self {
        InferenceEngine {
            cache: HashMap::new(),
            max_attempts,
            custom: Vec::new(),
            inferences: 0,
            cache_hits: 0,
        }
    }

    /// Register a user-supplied protocol. Returns the `L7Protocol::Custom`
    /// slot it will be reported as. Custom specifications are tried BEFORE
    /// the built-in suite (the user registered them because the built-ins
    /// don't cover their traffic, and they know their port space).
    pub fn register_custom(&mut self, proto: CustomProtocol) -> L7Protocol {
        let slot = self.custom.len() as u8;
        self.custom.push(proto);
        L7Protocol::Custom(slot)
    }

    /// Name of a registered custom protocol.
    pub fn custom_name(&self, slot: u8) -> Option<&str> {
        self.custom.get(slot as usize).map(|c| c.name.as_str())
    }

    fn infer_with_custom(&self, payload: &[u8]) -> Option<L7Protocol> {
        for (i, c) in self.custom.iter().enumerate() {
            if (c.sniff)(payload) {
                return Some(L7Protocol::Custom(i as u8));
            }
        }
        infer_protocol(payload)
    }

    fn parse_custom(&self, slot: u8, payload: &[u8]) -> Option<ParsedMessage> {
        let c = self.custom.get(slot as usize)?;
        let mut parsed = (c.parse)(payload)?;
        parsed.protocol = L7Protocol::Custom(slot);
        Some(parsed)
    }

    /// Classify (or recall) the protocol of a flow given one message payload.
    pub fn protocol_for(&mut self, flow_key: u64, payload: &[u8]) -> L7Protocol {
        match self.cache.get(&flow_key).copied() {
            Some(CacheEntry::Known(p)) => {
                self.cache_hits += 1;
                p
            }
            Some(CacheEntry::GaveUp) => L7Protocol::Unknown,
            other => {
                let attempts = match other {
                    Some(CacheEntry::Undetermined(n)) => n,
                    _ => 0,
                };
                match self.infer_with_custom(payload) {
                    Some(p) => {
                        self.inferences += 1;
                        self.cache.insert(flow_key, CacheEntry::Known(p));
                        p
                    }
                    None => {
                        let next = attempts + 1;
                        if next >= self.max_attempts {
                            self.cache.insert(flow_key, CacheEntry::GaveUp);
                        } else {
                            self.cache.insert(flow_key, CacheEntry::Undetermined(next));
                        }
                        L7Protocol::Unknown
                    }
                }
            }
        }
    }

    /// Parse a message for a flow, inferring the protocol if needed.
    pub fn parse_for(&mut self, flow_key: u64, payload: &[u8]) -> Option<ParsedMessage> {
        match self.protocol_for(flow_key, payload) {
            L7Protocol::Custom(slot) => self.parse_custom(slot, payload),
            proto => parse_message(proto, payload),
        }
    }

    /// Forget a closed flow.
    pub fn evict(&mut self, flow_key: u64) {
        self.cache.remove(&flow_key);
    }

    /// Flows currently cached.
    pub fn cached_flows(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::MessageType;

    #[test]
    fn each_protocol_is_inferred_from_its_own_bytes() {
        let cases: Vec<(L7Protocol, bytes::Bytes)> = vec![
            (L7Protocol::Http1, http1::request("GET", "/x", &[], b"")),
            (L7Protocol::Http2, http2::request(1, "GET", "/x", &[])),
            (L7Protocol::Dns, dns::query(1, "svc.local")),
            (L7Protocol::Redis, redis::command(&["GET", "k"])),
            (L7Protocol::Mysql, mysql::query("SELECT 1")),
            (L7Protocol::Kafka, kafka::request(kafka::API_FETCH, 1, "c")),
            (L7Protocol::Mqtt, mqtt::connect("dev-1")),
            (L7Protocol::Dubbo, dubbo::request(1, "Svc", "call")),
            (L7Protocol::Amqp, amqp::publish(1, "q", b"m")),
        ];
        for (expect, payload) in cases {
            assert_eq!(
                infer_protocol(&payload),
                Some(expect),
                "payload for {expect} misclassified"
            );
        }
    }

    #[test]
    fn responses_are_also_classified() {
        assert_eq!(
            infer_protocol(&http1::response(200, &[], b"ok")),
            Some(L7Protocol::Http1)
        );
        assert_eq!(infer_protocol(&redis::ok()), Some(L7Protocol::Redis));
        assert_eq!(
            infer_protocol(&dns::answer(5, "a.local", dns::RCODE_OK)),
            Some(L7Protocol::Dns)
        );
    }

    #[test]
    fn engine_caches_per_flow_and_counts_hits() {
        let mut eng = InferenceEngine::default();
        let req = http1::request("GET", "/", &[], b"");
        assert_eq!(eng.protocol_for(1, &req), L7Protocol::Http1);
        assert_eq!(eng.inferences, 1);
        // Second message on the same flow: cached, even though the payload
        // (a response) looks different.
        let resp = http1::response(200, &[], b"");
        assert_eq!(eng.protocol_for(1, &resp), L7Protocol::Http1);
        assert_eq!(eng.cache_hits, 1);
        assert_eq!(eng.inferences, 1);
    }

    #[test]
    fn engine_gives_up_after_max_attempts() {
        let mut eng = InferenceEngine::new(2);
        let junk = b"\x00\x01\x02\x03 junk payload";
        assert_eq!(eng.protocol_for(9, junk), L7Protocol::Unknown);
        assert_eq!(eng.protocol_for(9, junk), L7Protocol::Unknown);
        // Now given up: even a valid HTTP payload is not re-sniffed.
        let req = http1::request("GET", "/", &[], b"");
        assert_eq!(eng.protocol_for(9, &req), L7Protocol::Unknown);
    }

    #[test]
    fn engine_retries_within_budget() {
        let mut eng = InferenceEngine::new(3);
        let junk = b"\x00\x01junkjunkjunk";
        assert_eq!(eng.protocol_for(5, junk), L7Protocol::Unknown);
        // Second message is classifiable and within the attempt budget.
        let req = http1::request("GET", "/", &[], b"");
        assert_eq!(eng.protocol_for(5, &req), L7Protocol::Http1);
    }

    #[test]
    fn parse_for_end_to_end() {
        let mut eng = InferenceEngine::default();
        let req = http1::request("POST", "/orders", &[], b"{}");
        let p = eng.parse_for(2, &req).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.endpoint, "POST /orders");
    }

    #[test]
    fn custom_protocol_registration_and_parse() {
        use df_types::{MessageType, SessionKey};
        let mut eng = InferenceEngine::default();
        // A toy length-prefixed protocol: [0xCA][kind][id][body...]
        let slot = eng.register_custom(CustomProtocol {
            name: "acme-rpc".into(),
            sniff: Box::new(|p| p.first() == Some(&0xCA) && p.len() >= 3),
            parse: Box::new(|p| {
                let kind = *p.get(1)?;
                let id = u64::from(*p.get(2)?);
                Some(MessageSummary::basic(
                    df_types::L7Protocol::Unknown, // overwritten by the engine
                    if kind == 1 {
                        MessageType::Request
                    } else {
                        MessageType::Response
                    },
                    SessionKey::Multiplexed(id),
                    "acme.call",
                ))
            }),
        });
        assert_eq!(slot, df_types::L7Protocol::Custom(0));
        assert_eq!(eng.custom_name(0), Some("acme-rpc"));
        // Request and response round trip with the custom key.
        let req = eng.parse_for(1, &[0xCA, 1, 42]).expect("request parses");
        assert_eq!(req.protocol, df_types::L7Protocol::Custom(0));
        assert_eq!(req.msg_type, MessageType::Request);
        assert_eq!(req.session_key, SessionKey::Multiplexed(42));
        let resp = eng.parse_for(1, &[0xCA, 2, 42]).expect("response parses");
        assert_eq!(resp.msg_type, MessageType::Response);
        // Built-ins still work on other flows.
        let p = eng
            .parse_for(2, &http1::request("GET", "/", &[], b""))
            .unwrap();
        assert_eq!(p.protocol, df_types::L7Protocol::Http1);
    }

    #[test]
    fn custom_protocol_takes_priority_over_builtins() {
        let mut eng = InferenceEngine::default();
        // Claim anything starting with 'G' — overlaps HTTP GET.
        eng.register_custom(CustomProtocol {
            name: "greedy".into(),
            sniff: Box::new(|p| p.first() == Some(&b'G')),
            parse: Box::new(|_| {
                Some(MessageSummary::basic(
                    df_types::L7Protocol::Unknown,
                    df_types::MessageType::Request,
                    df_types::SessionKey::Ordered,
                    "greedy",
                ))
            }),
        });
        let p = eng
            .parse_for(1, &http1::request("GET", "/", &[], b""))
            .unwrap();
        assert_eq!(p.protocol, df_types::L7Protocol::Custom(0));
    }

    #[test]
    fn evict_forgets_flow() {
        let mut eng = InferenceEngine::default();
        eng.protocol_for(1, &http1::request("GET", "/", &[], b""));
        assert_eq!(eng.cached_flows(), 1);
        eng.evict(1);
        assert_eq!(eng.cached_flows(), 0);
    }

    #[test]
    fn cross_protocol_confusion_matrix() {
        // Every codec's bytes must NOT be claimed by another sniffer earlier
        // in the chain (the critical property of the inference order).
        let payloads: Vec<(L7Protocol, bytes::Bytes)> = vec![
            (L7Protocol::Http1, http1::response(404, &[], b"nf")),
            (L7Protocol::Http2, http2::response(3, 500, &[])),
            (L7Protocol::Redis, redis::error("x")),
            (L7Protocol::Mysql, mysql::err(1045, "denied")),
            (L7Protocol::Kafka, kafka::response(9, 0)),
            (L7Protocol::Mqtt, mqtt::puback(4)),
            (L7Protocol::Dubbo, dubbo::response(3, dubbo::STATUS_OK, b"")),
            (L7Protocol::Amqp, amqp::ack(2)),
        ];
        for (expect, payload) in payloads {
            assert_eq!(infer_protocol(&payload), Some(expect), "for {expect}");
        }
    }
}
