//! Kafka wire protocol — multiplexed; matched by correlation id.
//!
//! Request: `[i32 size][i16 api_key][i16 api_version][i32 correlation_id]
//! [i16 client_id_len][client_id]`; response: `[i32 size]
//! [i32 correlation_id][i16 error_code]`.

use crate::{Key, MessageSummary};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType};

/// Produce API key.
pub const API_PRODUCE: i16 = 0;
/// Fetch API key.
pub const API_FETCH: i16 = 1;
/// Metadata API key.
pub const API_METADATA: i16 = 3;

fn api_name(key: i16) -> &'static str {
    match key {
        API_PRODUCE => "Produce",
        API_FETCH => "Fetch",
        API_METADATA => "Metadata",
        _ => "Api",
    }
}

/// Build a request.
pub fn request(api_key: i16, correlation_id: i32, client_id: &str) -> Bytes {
    let body_len = 2 + 2 + 4 + 2 + client_id.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as i32).to_be_bytes());
    out.extend_from_slice(&api_key.to_be_bytes());
    out.extend_from_slice(&7i16.to_be_bytes()); // api_version
    out.extend_from_slice(&correlation_id.to_be_bytes());
    out.extend_from_slice(&(client_id.len() as i16).to_be_bytes());
    out.extend_from_slice(client_id.as_bytes());
    Bytes::from(out)
}

/// Build a response.
pub fn response(correlation_id: i32, error_code: i16) -> Bytes {
    let mut out = Vec::with_capacity(10);
    out.extend_from_slice(&6i32.to_be_bytes());
    out.extend_from_slice(&correlation_id.to_be_bytes());
    out.extend_from_slice(&error_code.to_be_bytes());
    Bytes::from(out)
}

/// Does the payload look like Kafka?
pub fn sniff(payload: &[u8]) -> bool {
    if payload.len() < 10 {
        return false;
    }
    let size = i32::from_be_bytes(payload[..4].try_into().unwrap());
    size > 0
        && (size as usize) + 4 == payload.len()
        && is_request_shape(payload) | is_response_shape(payload)
}

fn is_request_shape(payload: &[u8]) -> bool {
    if payload.len() < 14 {
        return false;
    }
    let api_key = i16::from_be_bytes([payload[4], payload[5]]);
    let api_version = i16::from_be_bytes([payload[6], payload[7]]);
    (0..=67).contains(&api_key) && (0..=15).contains(&api_version)
}

fn is_response_shape(payload: &[u8]) -> bool {
    payload.len() == 10
}

/// Parse a Kafka message.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if !sniff(payload) {
        return None;
    }
    if is_response_shape(payload) {
        let corr = i32::from_be_bytes(payload[4..8].try_into().ok()?);
        let err = i16::from_be_bytes(payload[8..10].try_into().ok()?);
        let mut s = MessageSummary::basic(
            L7Protocol::Kafka,
            MessageType::Response,
            Key::Multiplexed(corr as u32 as u64),
            if err == 0 { "OK" } else { "ERR" },
        );
        s.status_code = Some(err as u16);
        s.server_error = err != 0;
        return Some(s);
    }
    let api_key = i16::from_be_bytes(payload[4..6].try_into().ok()?);
    let corr = i32::from_be_bytes(payload[8..12].try_into().ok()?);
    Some(MessageSummary::basic(
        L7Protocol::Kafka,
        MessageType::Request,
        Key::Multiplexed(corr as u32 as u64),
        api_name(api_key),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_round_trip() {
        let req = request(API_PRODUCE, 99, "orders-svc");
        assert!(sniff(&req));
        let p = parse(&req).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.endpoint, "Produce");
        assert_eq!(p.session_key, Key::Multiplexed(99));

        let resp = response(99, 0);
        let r = parse(&resp).unwrap();
        assert_eq!(r.session_key, Key::Multiplexed(99));
        assert!(!r.server_error);
    }

    #[test]
    fn broker_error_classified() {
        let r = parse(&response(7, 6)).unwrap(); // NOT_LEADER_FOR_PARTITION
        assert!(r.server_error);
        assert_eq!(r.status_code, Some(6));
    }

    #[test]
    fn correlation_ids_distinguish_in_flight_requests() {
        let a = parse(&request(API_FETCH, 1, "c")).unwrap();
        let b = parse(&request(API_FETCH, 2, "c")).unwrap();
        assert_ne!(a.session_key, b.session_key);
    }

    #[test]
    fn sniff_rejects_wrong_size_prefix() {
        assert!(!sniff(b"GET / HTTP/1.1\r\n"));
        let mut bad = request(API_FETCH, 1, "c").to_vec();
        bad[0] = 0x7f; // corrupt size
        assert!(!sniff(&bad));
    }
}
