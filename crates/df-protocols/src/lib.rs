//! # df-protocols — application-layer protocol suite
//!
//! Paper §3.3.1, phase 2: "the DeepFlow Agent iterates through the common
//! protocol specifications ... executing a one-time protocol inference for
//! each newly established connection. Then, DeepFlow parses the payload to
//! determine the request/response type of the message."
//!
//! This crate provides, per protocol:
//!
//! * a **wire codec** — builders the mesh's simulated services use to emit
//!   honest byte payloads (so inference works on real bytes, not oracles);
//! * a **sniffer** — does this payload look like protocol X?
//! * a **parser** — message type (request/response), session key (order for
//!   pipelined protocols, embedded id for multiplexed ones), endpoint label,
//!   status, and tracing headers (W3C `traceparent`, Zipkin B3,
//!   `X-Request-ID`).
//!
//! The [`inference`] module drives the per-connection inference loop in the
//! order the paper's protocol list suggests, most-distinctive magic first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amqp;
pub mod dns;
pub mod dubbo;
pub mod http1;
pub mod http2;
pub mod inference;
pub mod kafka;
pub mod mqtt;
pub mod mysql;
pub mod redis;

pub use inference::{infer_protocol, parse_message, InferenceEngine, ParsedMessage};

use df_types::{L7Protocol, MessageType, OtelSpanId, OtelTraceId, SessionKey, XRequestId};

/// Tracing headers recoverable from a message (third-party span integration,
/// paper §3.3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceHeaders {
    /// W3C / B3 trace id.
    pub trace_id: Option<OtelTraceId>,
    /// W3C / B3 span id.
    pub span_id: Option<OtelSpanId>,
    /// W3C / B3 parent span id (B3 only; traceparent carries it as span-id
    /// of the parent context).
    pub parent_span_id: Option<OtelSpanId>,
    /// Proxy-generated X-Request-ID.
    pub x_request_id: Option<XRequestId>,
}

/// Classification helpers shared by the codecs.
pub(crate) fn status_class(code: u16) -> (bool, bool) {
    // (client_error, server_error)
    ((400..500).contains(&code), code >= 500)
}

/// Re-exported for codec implementations.
pub(crate) use df_types::l7::SessionKey as Key;

/// A parsed message's core classification, built by each codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSummary {
    /// Which protocol.
    pub protocol: L7Protocol,
    /// Request / response / one-way.
    pub msg_type: MessageType,
    /// Session aggregation key.
    pub session_key: SessionKey,
    /// Operation label (e.g. `GET /reviews`, `SELECT`, `PUBLISH`).
    pub endpoint: String,
    /// Protocol status code, when the message carries one.
    pub status_code: Option<u16>,
    /// Whether the message indicates a client-side error.
    pub client_error: bool,
    /// Whether the message indicates a server-side error.
    pub server_error: bool,
    /// Tracing headers found in the message.
    pub headers: TraceHeaders,
}

impl MessageSummary {
    /// A summary with no headers and no status.
    pub fn basic(
        protocol: L7Protocol,
        msg_type: MessageType,
        session_key: SessionKey,
        endpoint: impl Into<String>,
    ) -> Self {
        MessageSummary {
            protocol,
            msg_type,
            session_key,
            endpoint: endpoint.into(),
            status_code: None,
            client_error: false,
            server_error: false,
            headers: TraceHeaders::default(),
        }
    }
}
