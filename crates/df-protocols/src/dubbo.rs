//! Dubbo RPC — multiplexed; matched by the 64-bit request id.
//!
//! Header: magic `0xdabb`, flag byte (bit 7 = request), status byte,
//! request id (u64), body length (u32), then a `service/method` string body.

use crate::{Key, MessageSummary};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType};

const MAGIC: [u8; 2] = [0xda, 0xbb];
const FLAG_REQUEST: u8 = 0x80;
/// Dubbo status OK.
pub const STATUS_OK: u8 = 20;
/// Dubbo server-side error status.
pub const STATUS_SERVER_ERROR: u8 = 80;

/// Build a request for `service.method`.
pub fn request(request_id: u64, service: &str, method: &str) -> Bytes {
    let body = format!("{service}/{method}");
    encode(FLAG_REQUEST, 0, request_id, body.as_bytes())
}

/// Build a response.
pub fn response(request_id: u64, status: u8, body: &[u8]) -> Bytes {
    encode(0, status, request_id, body)
}

fn encode(flags: u8, status: u8, request_id: u64, body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(16 + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(flags);
    out.push(status);
    out.extend_from_slice(&request_id.to_be_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Does the payload look like Dubbo?
pub fn sniff(payload: &[u8]) -> bool {
    payload.len() >= 16 && payload[..2] == MAGIC
}

/// Parse a Dubbo message.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if !sniff(payload) {
        return None;
    }
    let is_request = payload[2] & FLAG_REQUEST != 0;
    let status = payload[3];
    let request_id = u64::from_be_bytes(payload[4..12].try_into().ok()?);
    let body_len = u32::from_be_bytes(payload[12..16].try_into().ok()?) as usize;
    let body = payload.get(16..16 + body_len)?;
    if is_request {
        let endpoint = std::str::from_utf8(body).unwrap_or("?").to_string();
        Some(MessageSummary::basic(
            L7Protocol::Dubbo,
            MessageType::Request,
            Key::Multiplexed(request_id),
            endpoint,
        ))
    } else {
        let mut s = MessageSummary::basic(
            L7Protocol::Dubbo,
            MessageType::Response,
            Key::Multiplexed(request_id),
            format!("status-{status}"),
        );
        s.status_code = Some(u16::from(status));
        s.server_error = status >= 70;
        s.client_error = (30..70).contains(&status);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_round_trip() {
        let req = request(555, "com.acme.OrderService", "placeOrder");
        assert!(sniff(&req));
        let p = parse(&req).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.endpoint, "com.acme.OrderService/placeOrder");
        assert_eq!(p.session_key, Key::Multiplexed(555));

        let resp = response(555, STATUS_OK, b"{}");
        let r = parse(&resp).unwrap();
        assert_eq!(r.session_key, Key::Multiplexed(555));
        assert!(!r.server_error);
    }

    #[test]
    fn server_error_status_classified() {
        let r = parse(&response(1, STATUS_SERVER_ERROR, b"boom")).unwrap();
        assert!(r.server_error);
        assert_eq!(r.status_code, Some(80));
    }

    #[test]
    fn sniff_needs_magic() {
        assert!(!sniff(b"GET / HTTP/1.1\r\nxxxxxxxxxxx"));
        assert!(!sniff(&[0xda, 0xbb])); // too short
    }
}
