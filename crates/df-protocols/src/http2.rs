//! HTTP/2 (RFC 7540) — multiplexed; matched by stream identifier.
//!
//! A deliberately small binary framing: the real connection preface
//! (`PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n` on the first request flight) followed
//! by one HEADERS-ish frame per message:
//!
//! ```text
//! [u8 kind(1=req,2=resp)] [u32 stream_id] [u16 status|0] [u16 path_len] [path] [u16 hdr_len] [hdrs]
//! ```
//!
//! The embedded stream id is exactly the "distinguishing attribute" §3.3.1
//! names for parallel-protocol session aggregation.

use crate::{status_class, Key, MessageSummary, TraceHeaders};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType, OtelSpanId, OtelTraceId, XRequestId};

/// The RFC 7540 client connection preface.
pub const PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";
const MAGIC: u8 = 0x68; // 'h' — frame marker after the preface

/// Build a request frame for a stream.
pub fn request(stream_id: u32, method: &str, path: &str, headers: &[(String, String)]) -> Bytes {
    frame(1, stream_id, 0, &format!("{method} {path}"), headers)
}

/// Build a response frame for a stream.
pub fn response(stream_id: u32, status: u16, headers: &[(String, String)]) -> Bytes {
    frame(2, stream_id, status, "", headers)
}

fn frame(kind: u8, stream_id: u32, status: u16, path: &str, headers: &[(String, String)]) -> Bytes {
    let hdrs: String = headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    let mut out = Vec::with_capacity(16 + path.len() + hdrs.len());
    out.push(MAGIC);
    out.push(kind);
    out.extend_from_slice(&stream_id.to_be_bytes());
    out.extend_from_slice(&status.to_be_bytes());
    out.extend_from_slice(&(path.len() as u16).to_be_bytes());
    out.extend_from_slice(path.as_bytes());
    out.extend_from_slice(&(hdrs.len() as u16).to_be_bytes());
    out.extend_from_slice(hdrs.as_bytes());
    Bytes::from(out)
}

/// Prepend the connection preface (first flight of a connection).
pub fn with_preface(frame: Bytes) -> Bytes {
    let mut out = Vec::with_capacity(PREFACE.len() + frame.len());
    out.extend_from_slice(PREFACE);
    out.extend_from_slice(&frame);
    Bytes::from(out)
}

/// Does the payload look like HTTP/2?
pub fn sniff(payload: &[u8]) -> bool {
    payload.starts_with(PREFACE)
        || (payload.len() >= 12 && payload[0] == MAGIC && (payload[1] == 1 || payload[1] == 2))
}

/// Parse an HTTP/2 message.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    let body = if payload.starts_with(PREFACE) {
        &payload[PREFACE.len()..]
    } else {
        payload
    };
    if body.len() < 12 || body[0] != MAGIC {
        return None;
    }
    let kind = body[1];
    let stream_id = u32::from_be_bytes(body[2..6].try_into().ok()?);
    let status = u16::from_be_bytes(body[6..8].try_into().ok()?);
    let plen = u16::from_be_bytes(body[8..10].try_into().ok()?) as usize;
    if body.len() < 10 + plen + 2 {
        return None;
    }
    let path = std::str::from_utf8(&body[10..10 + plen]).ok()?;
    let hlen_off = 10 + plen;
    let hlen = u16::from_be_bytes(body[hlen_off..hlen_off + 2].try_into().ok()?) as usize;
    let hdr_bytes = body.get(hlen_off + 2..hlen_off + 2 + hlen)?;
    let headers = parse_headers(hdr_bytes);
    match kind {
        1 => {
            let mut s = MessageSummary::basic(
                L7Protocol::Http2,
                MessageType::Request,
                Key::Multiplexed(u64::from(stream_id)),
                path,
            );
            s.headers = headers;
            Some(s)
        }
        2 => {
            let (ce, se) = status_class(status);
            let mut s = MessageSummary::basic(
                L7Protocol::Http2,
                MessageType::Response,
                Key::Multiplexed(u64::from(stream_id)),
                format!("{status}"),
            );
            s.status_code = Some(status);
            s.client_error = ce;
            s.server_error = se;
            s.headers = headers;
            Some(s)
        }
        _ => None,
    }
}

fn parse_headers(raw: &[u8]) -> TraceHeaders {
    let mut h = TraceHeaders::default();
    let Ok(text) = std::str::from_utf8(raw) else {
        return h;
    };
    for line in text.lines() {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let k = k.trim().to_ascii_lowercase();
        let v = v.trim();
        match k.as_str() {
            "traceparent" => {
                let parts: Vec<&str> = v.split('-').collect();
                if parts.len() == 4 {
                    h.trace_id = OtelTraceId::from_hex(parts[1]);
                    h.span_id = OtelSpanId::from_hex(parts[2]);
                }
            }
            "x-request-id" => h.x_request_id = XRequestId::from_wire(v),
            _ => {}
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_round_trip_with_stream_id() {
        let req = request(7, "POST", "/grpc.Svc/Call", &[]);
        assert!(sniff(&req));
        let p = parse(&req).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.session_key, Key::Multiplexed(7));
        assert_eq!(p.endpoint, "POST /grpc.Svc/Call");

        let resp = response(7, 200, &[]);
        let p2 = parse(&resp).unwrap();
        assert_eq!(p2.msg_type, MessageType::Response);
        assert_eq!(p2.session_key, Key::Multiplexed(7));
        assert_eq!(p2.status_code, Some(200));
    }

    #[test]
    fn preface_is_recognised_and_skipped() {
        let req = with_preface(request(1, "GET", "/", &[]));
        assert!(sniff(&req));
        let p = parse(&req).unwrap();
        assert_eq!(p.session_key, Key::Multiplexed(1));
    }

    #[test]
    fn interleaved_streams_have_distinct_keys() {
        let a = parse(&request(1, "GET", "/a", &[])).unwrap();
        let b = parse(&request(3, "GET", "/b", &[])).unwrap();
        assert_ne!(a.session_key, b.session_key);
    }

    #[test]
    fn headers_survive_framing() {
        let tid = OtelTraceId(0x42);
        let sid = OtelSpanId(0x43);
        let req = request(
            5,
            "GET",
            "/",
            &[(
                "traceparent".into(),
                format!("00-{}-{}-01", tid.to_hex(), sid.to_hex()),
            )],
        );
        let p = parse(&req).unwrap();
        assert_eq!(p.headers.trace_id, Some(tid));
        assert_eq!(p.headers.span_id, Some(sid));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").is_none());
        assert!(parse(b"\x68\x09aaaaaaaaaaaa").is_none());
        assert!(parse(b"").is_none());
    }
}
