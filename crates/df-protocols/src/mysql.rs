//! MySQL client/server protocol — pipelined (one outstanding command).
//!
//! Packet = 3-byte little-endian length + 1-byte sequence id + body.
//! Commands start with a command byte (COM_QUERY = 0x03); replies are OK
//! (0x00), ERR (0xff) or a result set (column count).

use crate::{Key, MessageSummary};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType};

const COM_QUERY: u8 = 0x03;
const COM_PING: u8 = 0x0e;
const OK_BYTE: u8 = 0x00;
const ERR_BYTE: u8 = 0xff;

fn packet(seq: u8, body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(4 + body.len());
    let len = (body.len() as u32).to_le_bytes();
    out.extend_from_slice(&len[..3]);
    out.push(seq);
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Build a COM_QUERY.
pub fn query(sql: &str) -> Bytes {
    let mut body = vec![COM_QUERY];
    body.extend_from_slice(sql.as_bytes());
    packet(0, &body)
}

/// Build a COM_PING.
pub fn ping() -> Bytes {
    packet(0, &[COM_PING])
}

/// OK reply (affected rows).
pub fn ok(affected: u8) -> Bytes {
    packet(1, &[OK_BYTE, affected, 0, 0, 0])
}

/// ERR reply with a MySQL error code.
pub fn err(code: u16, msg: &str) -> Bytes {
    let mut body = vec![ERR_BYTE];
    body.extend_from_slice(&code.to_le_bytes());
    body.extend_from_slice(b"#HY000");
    body.extend_from_slice(msg.as_bytes());
    packet(1, &body)
}

/// Result-set reply (column count + fake rows marker).
pub fn result_set(columns: u8) -> Bytes {
    packet(1, &[columns, 0xfe])
}

/// Does the payload look like a MySQL packet?
pub fn sniff(payload: &[u8]) -> bool {
    if payload.len() < 5 {
        return false;
    }
    let len = u32::from_le_bytes([payload[0], payload[1], payload[2], 0]) as usize;
    if len == 0 || len + 4 != payload.len() {
        return false;
    }
    let seq = payload[3];
    // Commands use seq 0; replies small seqs.
    if seq > 8 {
        return false;
    }
    let first = payload[4];
    matches!(first, COM_QUERY | COM_PING | OK_BYTE | ERR_BYTE) || first <= 32
}

/// Parse a MySQL message. `from_client` disambiguates OK (0x00) replies from
/// sequence-0 commands when the direction is known; pass `None` to rely on
/// the sequence id.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if !sniff(payload) {
        return None;
    }
    let seq = payload[3];
    let first = payload[4];
    if seq == 0 {
        // Client command.
        let endpoint = match first {
            COM_QUERY => {
                let sql = std::str::from_utf8(&payload[5..]).unwrap_or("?");
                sql.split_whitespace()
                    .next()
                    .unwrap_or("QUERY")
                    .to_ascii_uppercase()
            }
            COM_PING => "PING".to_string(),
            _ => format!("COM_{first:02x}"),
        };
        return Some(MessageSummary::basic(
            L7Protocol::Mysql,
            MessageType::Request,
            Key::Ordered,
            endpoint,
        ));
    }
    // Server reply.
    let mut s = MessageSummary::basic(
        L7Protocol::Mysql,
        MessageType::Response,
        Key::Ordered,
        match first {
            OK_BYTE => "OK".to_string(),
            ERR_BYTE => "ERR".to_string(),
            _ => "RESULT".to_string(),
        },
    );
    if first == ERR_BYTE {
        let code = u16::from_le_bytes([payload[5], payload[6]]);
        s.status_code = Some(code);
        s.server_error = true;
    } else {
        s.status_code = Some(0);
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_and_ok_round_trip() {
        let q = query("SELECT * FROM products WHERE id = 42");
        assert!(sniff(&q));
        let p = parse(&q).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.endpoint, "SELECT");

        let r = parse(&ok(1)).unwrap();
        assert_eq!(r.msg_type, MessageType::Response);
        assert!(!r.server_error);
    }

    #[test]
    fn err_reply_carries_code() {
        let r = parse(&err(1213, "Deadlock found")).unwrap();
        assert!(r.server_error);
        assert_eq!(r.status_code, Some(1213));
    }

    #[test]
    fn result_set_is_response() {
        let r = parse(&result_set(3)).unwrap();
        assert_eq!(r.msg_type, MessageType::Response);
        assert_eq!(r.endpoint, "RESULT");
    }

    #[test]
    fn sniff_checks_length_field() {
        assert!(!sniff(b"GET / HTTP/1.1\r\n"));
        assert!(!sniff(b"\x01\x00\x00")); // truncated
                                          // wrong length prefix
        assert!(!sniff(&[9, 0, 0, 0, 3, b'S']));
    }
}
