//! DNS (RFC 1035) — multiplexed over UDP; matched by transaction id.
//!
//! The paper names DNS ids explicitly as the parallel-protocol
//! distinguishing attribute ("IDs in DNS headers", §3.3.1). We encode a
//! faithful 12-byte header plus a QNAME in standard label form.

use crate::{Key, MessageSummary};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType};

/// DNS response codes we model.
pub const RCODE_OK: u8 = 0;
/// Name does not exist.
pub const RCODE_NXDOMAIN: u8 = 3;
/// Server failure.
pub const RCODE_SERVFAIL: u8 = 2;

/// Build a query for `name` with transaction id `txn`.
pub fn query(txn: u16, name: &str) -> Bytes {
    let mut out = Vec::with_capacity(12 + name.len() + 6);
    out.extend_from_slice(&txn.to_be_bytes());
    out.extend_from_slice(&0x0100u16.to_be_bytes()); // flags: RD
    out.extend_from_slice(&1u16.to_be_bytes()); // qdcount
    out.extend_from_slice(&[0, 0, 0, 0, 0, 0]); // an/ns/ar counts
    write_qname(&mut out, name);
    out.extend_from_slice(&1u16.to_be_bytes()); // qtype A
    out.extend_from_slice(&1u16.to_be_bytes()); // qclass IN
    Bytes::from(out)
}

/// Build a response for the same transaction.
pub fn answer(txn: u16, name: &str, rcode: u8) -> Bytes {
    let mut out = Vec::with_capacity(12 + name.len() + 6);
    out.extend_from_slice(&txn.to_be_bytes());
    let flags: u16 = 0x8180 | u16::from(rcode & 0x0f); // QR + RD + RA + rcode
    out.extend_from_slice(&flags.to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&u16::from(rcode == RCODE_OK).to_be_bytes()); // ancount
    out.extend_from_slice(&[0, 0, 0, 0]);
    write_qname(&mut out, name);
    out.extend_from_slice(&1u16.to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes());
    Bytes::from(out)
}

fn write_qname(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.') {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

fn read_qname(buf: &[u8]) -> Option<String> {
    let mut parts = Vec::new();
    let mut i = 0usize;
    loop {
        let len = *buf.get(i)? as usize;
        if len == 0 {
            break;
        }
        if len > 63 {
            return None;
        }
        let label = buf.get(i + 1..i + 1 + len)?;
        parts.push(std::str::from_utf8(label).ok()?.to_string());
        i += 1 + len;
    }
    Some(parts.join("."))
}

/// Does the payload look like DNS?
pub fn sniff(payload: &[u8]) -> bool {
    if payload.len() < 17 {
        return false;
    }
    let qdcount = u16::from_be_bytes([payload[4], payload[5]]);
    let flags = u16::from_be_bytes([payload[2], payload[3]]);
    let opcode = (flags >> 11) & 0xf;
    qdcount == 1 && opcode == 0 && read_qname(&payload[12..]).is_some()
}

/// Parse a DNS message.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if !sniff(payload) {
        return None;
    }
    let txn = u16::from_be_bytes([payload[0], payload[1]]);
    let flags = u16::from_be_bytes([payload[2], payload[3]]);
    let is_response = flags & 0x8000 != 0;
    let rcode = (flags & 0x000f) as u8;
    let name = read_qname(&payload[12..])?;
    let mut s = MessageSummary::basic(
        L7Protocol::Dns,
        if is_response {
            MessageType::Response
        } else {
            MessageType::Request
        },
        Key::Multiplexed(u64::from(txn)),
        format!("A {name}"),
    );
    if is_response {
        s.status_code = Some(u16::from(rcode));
        s.server_error = rcode == RCODE_SERVFAIL;
        s.client_error = rcode == RCODE_NXDOMAIN;
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_answer_round_trip() {
        let q = query(0x1234, "reviews.default.svc.cluster.local");
        assert!(sniff(&q));
        let pq = parse(&q).unwrap();
        assert_eq!(pq.msg_type, MessageType::Request);
        assert_eq!(pq.session_key, Key::Multiplexed(0x1234));
        assert_eq!(pq.endpoint, "A reviews.default.svc.cluster.local");

        let a = answer(0x1234, "reviews.default.svc.cluster.local", RCODE_OK);
        let pa = parse(&a).unwrap();
        assert_eq!(pa.msg_type, MessageType::Response);
        assert_eq!(pa.session_key, pq.session_key);
        assert!(!pa.server_error);
    }

    #[test]
    fn rcode_errors_classified() {
        let nx = parse(&answer(1, "nope.local", RCODE_NXDOMAIN)).unwrap();
        assert!(nx.client_error);
        let sf = parse(&answer(2, "svc.local", RCODE_SERVFAIL)).unwrap();
        assert!(sf.server_error);
    }

    #[test]
    fn different_txns_do_not_collide() {
        let a = parse(&query(1, "a.local")).unwrap();
        let b = parse(&query(2, "a.local")).unwrap();
        assert_ne!(a.session_key, b.session_key);
    }

    #[test]
    fn sniff_rejects_http_and_garbage() {
        assert!(!sniff(b"GET / HTTP/1.1\r\n\r\n lots of padding"));
        assert!(!sniff(
            b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"
        ));
        assert!(!sniff(b"short"));
    }
}
