//! AMQP 0-9-1-flavoured broker protocol, for the RabbitMQ case study
//! (paper §4.1.3 / Fig. 12: queue backlog → zero windows → TCP resets).
//!
//! Frame: `[u8 type][u16 channel][u32 size][method string][0xCE]`.
//! We model the handful of methods the case needs: `basic.publish` (with a
//! paired `basic.ack` when publisher confirms are on), and
//! `basic.get`/`basic.get-ok`.

use crate::{Key, MessageSummary};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType};

const FRAME_METHOD: u8 = 1;
const FRAME_END: u8 = 0xCE;

fn frame(channel: u16, method: &str, payload: &[u8]) -> Bytes {
    let body_len = method.len() + 1 + payload.len();
    let mut out = Vec::with_capacity(8 + body_len);
    out.push(FRAME_METHOD);
    out.extend_from_slice(&channel.to_be_bytes());
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.extend_from_slice(method.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload);
    out.push(FRAME_END);
    Bytes::from(out)
}

/// `basic.publish` to a queue.
pub fn publish(channel: u16, queue: &str, payload: &[u8]) -> Bytes {
    frame(channel, &format!("basic.publish {queue}"), payload)
}

/// Broker `basic.ack` (publisher confirm).
pub fn ack(channel: u16) -> Bytes {
    frame(channel, "basic.ack", b"")
}

/// `basic.get` from a queue.
pub fn get(channel: u16, queue: &str) -> Bytes {
    frame(channel, &format!("basic.get {queue}"), b"")
}

/// `basic.get-ok` carrying a message.
pub fn get_ok(channel: u16, payload: &[u8]) -> Bytes {
    frame(channel, "basic.get-ok", payload)
}

/// `basic.get-empty` (queue empty).
pub fn get_empty(channel: u16) -> Bytes {
    frame(channel, "basic.get-empty", b"")
}

/// Does the payload look like an AMQP method frame?
pub fn sniff(payload: &[u8]) -> bool {
    payload.len() >= 9 && payload[0] == FRAME_METHOD && payload[payload.len() - 1] == FRAME_END && {
        let size = u32::from_be_bytes([payload[3], payload[4], payload[5], payload[6]]) as usize;
        size + 8 == payload.len() && payload[7..].starts_with(b"basic.")
    }
}

/// Parse an AMQP method frame.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if !sniff(payload) {
        return None;
    }
    let channel = u16::from_be_bytes([payload[1], payload[2]]);
    let body = &payload[7..payload.len() - 1];
    let nl = body.iter().position(|b| *b == b'\n')?;
    let method = std::str::from_utf8(&body[..nl]).ok()?;
    let verb = method.split_whitespace().next().unwrap_or("?");
    let (msg_type, endpoint) = match verb {
        "basic.publish" | "basic.get" => (MessageType::Request, method.to_string()),
        "basic.ack" | "basic.get-ok" | "basic.get-empty" => {
            (MessageType::Response, verb.to_string())
        }
        _ => (MessageType::Unknown, method.to_string()),
    };
    Some(MessageSummary::basic(
        L7Protocol::Amqp,
        msg_type,
        Key::Multiplexed(u64::from(channel)),
        endpoint,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_ack_round_trip() {
        let p = publish(3, "orders", b"{\"id\":1}");
        assert!(sniff(&p));
        let parsed = parse(&p).unwrap();
        assert_eq!(parsed.msg_type, MessageType::Request);
        assert_eq!(parsed.endpoint, "basic.publish orders");
        assert_eq!(parsed.session_key, Key::Multiplexed(3));

        let a = parse(&ack(3)).unwrap();
        assert_eq!(a.msg_type, MessageType::Response);
        assert_eq!(a.session_key, Key::Multiplexed(3));
    }

    #[test]
    fn get_flow() {
        let g = parse(&get(1, "orders")).unwrap();
        assert_eq!(g.msg_type, MessageType::Request);
        let ok = parse(&get_ok(1, b"msg")).unwrap();
        assert_eq!(ok.msg_type, MessageType::Response);
        let empty = parse(&get_empty(1)).unwrap();
        assert_eq!(empty.msg_type, MessageType::Response);
    }

    #[test]
    fn sniff_checks_frame_structure() {
        assert!(!sniff(b"GET / HTTP/1.1\r\n"));
        let mut bad = publish(1, "q", b"x").to_vec();
        let last = bad.len() - 1;
        bad[last] = 0; // break frame end
        assert!(!sniff(&bad));
    }
}
