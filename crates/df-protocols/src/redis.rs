//! Redis RESP — pipelined; request/response matched by order.

use crate::{Key, MessageSummary};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType};

/// Build a command as a RESP array of bulk strings.
pub fn command(args: &[&str]) -> Bytes {
    let mut s = format!("*{}\r\n", args.len());
    for a in args {
        s.push_str(&format!("${}\r\n{a}\r\n", a.len()));
    }
    Bytes::from(s.into_bytes())
}

/// Simple-string reply (`+OK`).
pub fn ok() -> Bytes {
    Bytes::from_static(b"+OK\r\n")
}

/// Bulk-string reply.
pub fn bulk(value: &[u8]) -> Bytes {
    let mut out = format!("${}\r\n", value.len()).into_bytes();
    out.extend_from_slice(value);
    out.extend_from_slice(b"\r\n");
    Bytes::from(out)
}

/// Null reply (cache miss).
pub fn nil() -> Bytes {
    Bytes::from_static(b"$-1\r\n")
}

/// Error reply.
pub fn error(msg: &str) -> Bytes {
    Bytes::from(format!("-ERR {msg}\r\n").into_bytes())
}

/// Does the payload look like RESP?
pub fn sniff(payload: &[u8]) -> bool {
    if payload.len() < 4 {
        return false;
    }
    match payload[0] {
        b'*' | b'$' => payload[1] == b'-' || payload[1].is_ascii_digit(),
        b'+' | b'-' | b':' => payload.ends_with(b"\r\n"),
        _ => false,
    }
}

/// Parse a RESP message. Arrays are requests (commands); everything else is
/// a reply.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if !sniff(payload) {
        return None;
    }
    match payload[0] {
        b'*' => {
            // Command: first bulk string is the verb.
            let text = std::str::from_utf8(payload).ok()?;
            let mut lines = text.split("\r\n");
            lines.next()?; // *N
            lines.next()?; // $len
            let verb = lines.next().unwrap_or("?").to_ascii_uppercase();
            // Key, if present, labels the endpoint (GET product:1 → GET).
            Some(MessageSummary::basic(
                L7Protocol::Redis,
                MessageType::Request,
                Key::Ordered,
                verb,
            ))
        }
        b'-' => {
            let mut s = MessageSummary::basic(
                L7Protocol::Redis,
                MessageType::Response,
                Key::Ordered,
                "ERR",
            );
            s.server_error = true;
            s.status_code = Some(500);
            Some(s)
        }
        _ => {
            let mut s =
                MessageSummary::basic(L7Protocol::Redis, MessageType::Response, Key::Ordered, "OK");
            s.status_code = Some(200);
            Some(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_and_replies_round_trip() {
        let cmd = command(&["GET", "product:42"]);
        assert!(sniff(&cmd));
        let p = parse(&cmd).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.endpoint, "GET");
        assert_eq!(p.session_key, Key::Ordered);

        for reply in [ok(), bulk(b"cached-value"), nil()] {
            let r = parse(&reply).unwrap();
            assert_eq!(r.msg_type, MessageType::Response);
            assert!(!r.server_error);
        }
    }

    #[test]
    fn error_reply_is_server_error() {
        let r = parse(&error("OOM command not allowed")).unwrap();
        assert!(r.server_error);
        assert_eq!(r.msg_type, MessageType::Response);
    }

    #[test]
    fn sniff_rejects_http() {
        assert!(!sniff(b"GET / HTTP/1.1\r\n"));
        assert!(!sniff(b""));
        assert!(!sniff(b"*x\r\n"));
    }
}
