//! HTTP/1.1 (RFC 7231) — pipelined; request/response matched by order.
//!
//! The workhorse protocol of both demo applications (Spring Boot, Bookinfo)
//! and the carrier of every tracing header DeepFlow integrates: W3C
//! `traceparent`, Zipkin B3 (`X-B3-TraceId`/`X-B3-SpanId`/
//! `X-B3-ParentSpanId`) and proxy `X-Request-ID`.

use crate::{status_class, Key, MessageSummary, TraceHeaders};
use bytes::Bytes;
use df_types::{L7Protocol, MessageType, OtelSpanId, OtelTraceId, XRequestId};

const METHODS: [&str; 7] = ["GET", "POST", "PUT", "DELETE", "HEAD", "PATCH", "OPTIONS"];

/// Build a request payload.
pub fn request(method: &str, path: &str, headers: &[(String, String)], body: &[u8]) -> Bytes {
    let mut s = format!("{method} {path} HTTP/1.1\r\nhost: svc\r\n");
    for (k, v) in headers {
        s.push_str(&format!("{k}: {v}\r\n"));
    }
    s.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut out = s.into_bytes();
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Build a response payload.
pub fn response(status: u16, headers: &[(String, String)], body: &[u8]) -> Bytes {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    };
    let mut s = format!("HTTP/1.1 {status} {reason}\r\n");
    for (k, v) in headers {
        s.push_str(&format!("{k}: {v}\r\n"));
    }
    s.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut out = s.into_bytes();
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Does the payload look like HTTP/1.x?
pub fn sniff(payload: &[u8]) -> bool {
    if payload.starts_with(b"HTTP/1.") {
        return true;
    }
    METHODS.iter().any(|m| {
        payload.len() > m.len() && payload.starts_with(m.as_bytes()) && payload[m.len()] == b' '
    })
}

/// Extract a header value (case-insensitive key match) from the head section.
pub fn header_value<'a>(payload: &'a [u8], key: &str) -> Option<&'a str> {
    let text = std::str::from_utf8(payload).ok()?;
    let head = text.split("\r\n\r\n").next()?;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case(key) {
                return Some(v.trim());
            }
        }
    }
    None
}

/// Pull the tracing headers out of an HTTP/1.1 head section.
pub fn trace_headers(payload: &[u8]) -> TraceHeaders {
    let mut h = TraceHeaders::default();
    // W3C traceparent: version-traceid-spanid-flags
    if let Some(tp) = header_value(payload, "traceparent") {
        let parts: Vec<&str> = tp.split('-').collect();
        if parts.len() == 4 {
            h.trace_id = OtelTraceId::from_hex(parts[1]);
            h.span_id = OtelSpanId::from_hex(parts[2]);
        }
    }
    // Zipkin B3 single header: traceid-spanid-sampled-parentspanid
    if h.trace_id.is_none() {
        if let Some(b3) = header_value(payload, "b3") {
            let parts: Vec<&str> = b3.split('-').collect();
            if parts.len() >= 2 {
                h.trace_id = OtelTraceId::from_hex(parts[0]);
                h.span_id = OtelSpanId::from_hex(parts[1]);
                if parts.len() >= 4 {
                    h.parent_span_id = OtelSpanId::from_hex(parts[3]);
                }
            }
        }
    }
    // Zipkin B3 multi headers.
    if h.trace_id.is_none() {
        if let Some(t) = header_value(payload, "x-b3-traceid") {
            h.trace_id = OtelTraceId::from_hex(t);
            h.span_id = header_value(payload, "x-b3-spanid").and_then(OtelSpanId::from_hex);
            h.parent_span_id =
                header_value(payload, "x-b3-parentspanid").and_then(OtelSpanId::from_hex);
        }
    }
    if let Some(x) = header_value(payload, "x-request-id") {
        h.x_request_id = XRequestId::from_wire(x);
    }
    h
}

/// Parse an HTTP/1.1 message.
pub fn parse(payload: &[u8]) -> Option<MessageSummary> {
    if payload.starts_with(b"HTTP/1.") {
        // Response: HTTP/1.1 <code> <reason>
        let text = std::str::from_utf8(payload.get(..payload.len().min(64))?).ok()?;
        let code: u16 = text.split_whitespace().nth(1)?.parse().ok()?;
        let (ce, se) = status_class(code);
        let mut s = MessageSummary::basic(
            L7Protocol::Http1,
            MessageType::Response,
            Key::Ordered,
            format!("{code}"),
        );
        s.status_code = Some(code);
        s.client_error = ce;
        s.server_error = se;
        s.headers = trace_headers(payload);
        return Some(s);
    }
    if sniff(payload) {
        let text = std::str::from_utf8(payload).ok()?;
        let mut first = text.lines().next()?.split_whitespace();
        let method = first.next()?;
        let path = first.next().unwrap_or("/");
        let mut s = MessageSummary::basic(
            L7Protocol::Http1,
            MessageType::Request,
            Key::Ordered,
            format!("{method} {path}"),
        );
        s.headers = trace_headers(payload);
        return Some(s);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = request("GET", "/api/v1/products", &[], b"");
        assert!(sniff(&req));
        let p = parse(&req).unwrap();
        assert_eq!(p.msg_type, MessageType::Request);
        assert_eq!(p.endpoint, "GET /api/v1/products");
        assert_eq!(p.session_key, Key::Ordered);
        assert!(p.status_code.is_none());
    }

    #[test]
    fn response_parsing_classifies_errors() {
        for (code, ce, se) in [
            (200u16, false, false),
            (404, true, false),
            (503, false, true),
        ] {
            let resp = response(code, &[], b"body");
            let p = parse(&resp).unwrap();
            assert_eq!(p.msg_type, MessageType::Response);
            assert_eq!(p.status_code, Some(code));
            assert_eq!(p.client_error, ce, "{code}");
            assert_eq!(p.server_error, se, "{code}");
        }
    }

    #[test]
    fn traceparent_extraction() {
        let tid = OtelTraceId(0xabcd_0000_0000_0000_0000_0000_0000_1234);
        let sid = OtelSpanId(0x1111_2222_3333_4444);
        let req = request(
            "GET",
            "/",
            &[(
                "traceparent".into(),
                format!("00-{}-{}-01", tid.to_hex(), sid.to_hex()),
            )],
            b"",
        );
        let h = trace_headers(&req);
        assert_eq!(h.trace_id, Some(tid));
        assert_eq!(h.span_id, Some(sid));
    }

    #[test]
    fn b3_single_and_multi_extraction() {
        let tid = OtelTraceId(7);
        let sid = OtelSpanId(8);
        let pid = OtelSpanId(9);
        let single = request(
            "GET",
            "/",
            &[(
                "b3".into(),
                format!("{}-{}-1-{}", tid.to_hex(), sid.to_hex(), pid.to_hex()),
            )],
            b"",
        );
        let h = trace_headers(&single);
        assert_eq!(h.trace_id, Some(tid));
        assert_eq!(h.parent_span_id, Some(pid));

        let multi = request(
            "GET",
            "/",
            &[
                ("X-B3-TraceId".into(), tid.to_hex()),
                ("X-B3-SpanId".into(), sid.to_hex()),
                ("X-B3-ParentSpanId".into(), pid.to_hex()),
            ],
            b"",
        );
        let h2 = trace_headers(&multi);
        assert_eq!(h2.trace_id, Some(tid));
        assert_eq!(h2.span_id, Some(sid));
        assert_eq!(h2.parent_span_id, Some(pid));
    }

    #[test]
    fn x_request_id_extraction() {
        let xid = XRequestId(0xdead_beef_dead_beef_dead_beef_dead_beef);
        let resp = response(200, &[("X-Request-ID".into(), xid.to_wire())], b"");
        assert_eq!(trace_headers(&resp).x_request_id, Some(xid));
    }

    #[test]
    fn sniff_rejects_non_http() {
        assert!(!sniff(b"\x00\x01\x02\x03"));
        assert!(!sniff(b"*1\r\n$4\r\nPING\r\n"));
        assert!(!sniff(b"GETX /"));
        assert!(!sniff(b""));
    }

    #[test]
    fn header_value_is_case_insensitive() {
        let req = request("GET", "/", &[("X-Custom".into(), "42".into())], b"");
        assert_eq!(header_value(&req, "x-custom"), Some("42"));
        assert_eq!(header_value(&req, "missing"), None);
    }
}
