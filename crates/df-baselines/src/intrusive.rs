//! The intrusive tracer implementation.

use df_mesh::tracer::{AppTracer, CallToken, ServerToken};
use df_protocols::TraceHeaders;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::{
    AgentId, DurationNs, FiveTuple, FlowId, L7Protocol, NodeId, OtelSpanId, OtelTraceId, SpanId,
    TimeNs,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

/// Which header convention the SDK speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderStyle {
    /// W3C `traceparent` (the Jaeger-like tracer).
    TraceparentW3c,
    /// Zipkin B3 single header (the Zipkin-like tracer).
    B3,
}

/// Collects app spans from every instrumented service of one deployment.
pub type SharedReporter = Arc<Mutex<Vec<Span>>>;

/// Create a fresh reporter.
pub fn reporter() -> SharedReporter {
    Arc::new(Mutex::new(Vec::new()))
}

#[derive(Debug, Clone)]
struct OpenSpan {
    trace_id: OtelTraceId,
    span_id: OtelSpanId,
    parent: Option<OtelSpanId>,
    start: TimeNs,
    service: String,
    endpoint: String,
}

/// An explicit-context-propagation tracing SDK.
pub struct IntrusiveTracer {
    name: String,
    style: HeaderStyle,
    overhead: DurationNs,
    reporter: SharedReporter,
    servers: HashMap<ServerToken, OpenSpan>,
    calls: HashMap<CallToken, OpenSpan>,
    next_token: u64,
    rng: SmallRng,
    /// Spans started.
    pub started: u64,
}

impl IntrusiveTracer {
    /// A Jaeger-like tracer (W3C headers).
    pub fn jaeger_like(reporter: SharedReporter, seed: u64) -> Self {
        IntrusiveTracer::new("jaeger-like", HeaderStyle::TraceparentW3c, reporter, seed)
    }

    /// A Zipkin-like tracer (B3 headers).
    pub fn zipkin_like(reporter: SharedReporter, seed: u64) -> Self {
        IntrusiveTracer::new("zipkin-like", HeaderStyle::B3, reporter, seed)
    }

    /// Custom tracer.
    pub fn new(name: &str, style: HeaderStyle, reporter: SharedReporter, seed: u64) -> Self {
        IntrusiveTracer {
            name: name.to_string(),
            style,
            // Calibrated so instrumented services pay a few microseconds per
            // request — the few-percent throughput hit of Fig. 16.
            overhead: DurationNs::from_micros(4),
            reporter,
            servers: HashMap::new(),
            calls: HashMap::new(),
            next_token: 1,
            rng: SmallRng::seed_from_u64(seed),
            started: 0,
        }
    }

    /// Override the per-operation overhead (sensitivity sweeps).
    pub fn with_overhead(mut self, o: DurationNs) -> Self {
        self.overhead = o;
        self
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn emit(&self, open: OpenSpan, end: TimeNs, ok: bool, server_side: bool) {
        let span = Span {
            span_id: SpanId(0),
            kind: SpanKind::App,
            capture: CapturePoint {
                node: NodeId(0),
                tap_side: if server_side {
                    TapSide::ServerApp
                } else {
                    TapSide::ClientApp
                },
                interface: None,
            },
            agent: AgentId(0),
            flow_id: FlowId(0),
            five_tuple: FiveTuple::tcp(Ipv4Addr::UNSPECIFIED, 0, Ipv4Addr::UNSPECIFIED, 0),
            l7_protocol: L7Protocol::Http1,
            endpoint: format!("{}: {}", open.service, open.endpoint),
            req_time: open.start,
            resp_time: end,
            status: if ok {
                SpanStatus::Ok
            } else {
                SpanStatus::ServerError
            },
            status_code: None,
            req_bytes: 0,
            resp_bytes: 0,
            pid: None,
            tid: None,
            process_name: Some(open.service.clone()),
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: Some(open.trace_id),
            otel_span_id: Some(open.span_id),
            otel_parent_span_id: open.parent,
            tags: TagSet::default(),
            flow_metrics: None,
        };
        self.reporter.lock().expect("reporter").push(span);
    }
}

impl AppTracer for IntrusiveTracer {
    fn on_request(
        &mut self,
        service: &str,
        endpoint: &str,
        incoming: &TraceHeaders,
        now: TimeNs,
    ) -> ServerToken {
        self.started += 1;
        let (trace_id, parent) = match incoming.trace_id {
            Some(t) => (t, incoming.span_id),
            None => (OtelTraceId(self.rng.gen()), None),
        };
        let token = self.token();
        self.servers.insert(
            token,
            OpenSpan {
                trace_id,
                span_id: OtelSpanId(self.rng.gen()),
                parent,
                start: now,
                service: service.to_string(),
                endpoint: endpoint.to_string(),
            },
        );
        token
    }

    fn on_call(
        &mut self,
        server: ServerToken,
        target: &str,
        now: TimeNs,
    ) -> (CallToken, Vec<(String, String)>) {
        let Some(parent) = self.servers.get(&server).cloned() else {
            return (0, Vec::new());
        };
        self.started += 1;
        let span_id = OtelSpanId(self.rng.gen());
        let token = self.token();
        self.calls.insert(
            token,
            OpenSpan {
                trace_id: parent.trace_id,
                span_id,
                parent: Some(parent.span_id),
                start: now,
                service: parent.service.clone(),
                endpoint: format!("call {target}"),
            },
        );
        let headers = match self.style {
            HeaderStyle::TraceparentW3c => vec![(
                "traceparent".to_string(),
                format!("00-{}-{}-01", parent.trace_id.to_hex(), span_id.to_hex()),
            )],
            HeaderStyle::B3 => vec![(
                "b3".to_string(),
                format!(
                    "{}-{}-1-{}",
                    parent.trace_id.to_hex(),
                    span_id.to_hex(),
                    parent.span_id.to_hex()
                ),
            )],
        };
        (token, headers)
    }

    fn on_call_done(&mut self, call: CallToken, now: TimeNs, ok: bool) {
        if let Some(open) = self.calls.remove(&call) {
            self.emit(open, now, ok, false);
        }
    }

    fn on_response(&mut self, server: ServerToken, now: TimeNs, ok: bool) {
        if let Some(open) = self.servers.remove(&server) {
            self.emit(open, now, ok, true);
        }
    }

    fn overhead_per_op(&self) -> DurationNs {
        self.overhead
    }

    fn drain_spans(&mut self) -> Vec<Span> {
        std::mem::take(&mut *self.reporter.lock().expect("reporter"))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_and_call_spans_link_by_explicit_ids() {
        let rep = reporter();
        let mut t = IntrusiveTracer::jaeger_like(rep.clone(), 7);
        let st = t.on_request(
            "productpage",
            "GET /productpage",
            &TraceHeaders::default(),
            TimeNs(0),
        );
        let (ct, headers) = t.on_call(st, "reviews", TimeNs(10));
        assert_eq!(headers[0].0, "traceparent");
        t.on_call_done(ct, TimeNs(50), true);
        t.on_response(st, TimeNs(100), true);
        let spans = t.drain_spans();
        assert_eq!(spans.len(), 2);
        let call = spans
            .iter()
            .find(|s| s.capture.tap_side == TapSide::ClientApp)
            .unwrap();
        let server = spans
            .iter()
            .find(|s| s.capture.tap_side == TapSide::ServerApp)
            .unwrap();
        assert_eq!(call.otel_trace_id, server.otel_trace_id);
        assert_eq!(call.otel_parent_span_id, server.otel_span_id);
        assert_eq!(server.otel_parent_span_id, None, "root span");
    }

    #[test]
    fn incoming_context_continues_the_trace() {
        let rep = reporter();
        let mut upstream = IntrusiveTracer::jaeger_like(rep.clone(), 1);
        let st = upstream.on_request("a", "GET /", &TraceHeaders::default(), TimeNs(0));
        let (_, headers) = upstream.on_call(st, "b", TimeNs(1));
        // Parse the injected header the way the receiving service would.
        let req = df_protocols::http1::request("GET", "/", &headers, b"");
        let parsed_headers = df_protocols::http1::trace_headers(&req);
        let mut downstream = IntrusiveTracer::jaeger_like(rep.clone(), 2);
        let st2 = downstream.on_request("b", "GET /", &parsed_headers, TimeNs(5));
        downstream.on_response(st2, TimeNs(9), true);
        let spans = downstream.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].otel_trace_id, parsed_headers.trace_id);
        assert_eq!(spans[0].otel_parent_span_id, parsed_headers.span_id);
    }

    #[test]
    fn b3_style_injects_b3_headers() {
        let rep = reporter();
        let mut t = IntrusiveTracer::zipkin_like(rep, 3);
        let st = t.on_request("svc", "GET /", &TraceHeaders::default(), TimeNs(0));
        let (_, headers) = t.on_call(st, "x", TimeNs(1));
        assert_eq!(headers[0].0, "b3");
        let req = df_protocols::http1::request("GET", "/", &headers, b"");
        let h = df_protocols::http1::trace_headers(&req);
        assert!(h.trace_id.is_some());
        assert!(h.parent_span_id.is_some());
    }

    #[test]
    fn shared_reporter_collects_across_tracers() {
        let rep = reporter();
        let mut a = IntrusiveTracer::jaeger_like(rep.clone(), 1);
        let mut b = IntrusiveTracer::jaeger_like(rep.clone(), 2);
        let sa = a.on_request("a", "x", &TraceHeaders::default(), TimeNs(0));
        a.on_response(sa, TimeNs(1), true);
        let sb = b.on_request("b", "y", &TraceHeaders::default(), TimeNs(0));
        b.on_response(sb, TimeNs(1), false);
        let spans = a.drain_spans(); // drains the shared reporter
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.status == SpanStatus::ServerError));
    }

    #[test]
    fn overhead_is_nonzero_and_overridable() {
        let rep = reporter();
        let t = IntrusiveTracer::jaeger_like(rep.clone(), 1);
        assert!(t.overhead_per_op() > DurationNs::ZERO);
        let t2 = IntrusiveTracer::jaeger_like(rep, 1).with_overhead(DurationNs::from_micros(50));
        assert_eq!(t2.overhead_per_op(), DurationNs::from_micros(50));
    }

    #[test]
    fn call_on_unknown_server_token_is_harmless() {
        let rep = reporter();
        let mut t = IntrusiveTracer::jaeger_like(rep, 1);
        let (tok, headers) = t.on_call(999, "x", TimeNs(0));
        assert_eq!(tok, 0);
        assert!(headers.is_empty());
        t.on_call_done(0, TimeNs(1), true); // no panic
    }
}
