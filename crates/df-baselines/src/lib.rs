//! # df-baselines — intrusive distributed-tracing baselines
//!
//! The Fig. 16 comparators: tracing SDKs "instrumented into" mesh services,
//! doing **explicit context propagation** — generating trace/span ids,
//! injecting them into request headers (W3C `traceparent` for the
//! Jaeger-like tracer, Zipkin B3 for the Zipkin-like one) and emitting app
//! spans (`SpanKind::App`). Everything the paper says is wrong with the
//! approach is faithfully present:
//!
//! * only *instrumented* services produce spans — closed-source components
//!   (the MySQL pod, the Envoy sidecars) and the network are blind spots;
//! * context only propagates over protocols with header support — a call
//!   over MySQL/Redis wire protocol drops the trace;
//! * every operation costs SDK overhead on the service's critical path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod intrusive;

pub use intrusive::{HeaderStyle, IntrusiveTracer, SharedReporter};
