//! The server facade: ingest spans, answer queries.
//!
//! Since the sharding PR the server stores spans in a
//! [`ShardedSpanStore`] (routing per [`df_storage::ShardPolicy`]) and
//! serves trace queries through the incremental [`TraceCache`] — see
//! [`crate::sharded`] and [`crate::trace_cache`] for the corpus layout and
//! the cache's staleness contract.
//!
//! ## Stats coherence
//!
//! All counters live in one [`ServerStats`] struct behind a single mutex,
//! and every operation updates *all* of its counters under **one** lock
//! acquisition. [`Server::stats`] therefore returns a coherent snapshot:
//! derived invariants (e.g. `trace_queries == cache_hits + cache_misses +
//! cache_invalidations`) hold in every snapshot, never just eventually.
//! (The previous implementation used independent atomic cells; a reader
//! could observe the trace-query counter incremented but not yet the
//! cache counter — an incoherent state no single execution ever was in.)

use crate::assemble::AssembleConfig;
use crate::dictionary::TagDictionary;
use crate::sharded::{assemble_trace_sharded, ShardedSpanStore};
use crate::trace_cache::{CacheOutcome, TraceCache};
use df_check::sync::Mutex;
use df_storage::{ShardPolicy, SpanQuery};
use df_types::tags::ResourceInventory;
use df_types::trace::Trace;
use df_types::wire::{self, WireDecodeError};
use df_types::{Span, SpanId, TimeNs};

/// Re-aggregation matching key: the capture point + flow + protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ReaggKey {
    agent: df_types::AgentId,
    tap_side: df_types::TapSide,
    flow: df_types::FlowId,
    protocol: df_types::L7Protocol,
}

/// Server counters. [`Server::stats`] returns a coherent point-in-time
/// snapshot (see the module docs): in every snapshot
/// `trace_queries == cache_hits + cache_stale_hits + cache_misses +
/// cache_invalidations`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Spans ingested.
    pub ingested: u64,
    /// Spans whose tags were phase-2 enriched.
    pub enriched: u64,
    /// Trace queries served.
    pub trace_queries: u64,
    /// Span-list queries served.
    pub list_queries: u64,
    /// Sessions reunited by server-side re-aggregation.
    pub re_aggregated: u64,
    /// Trace queries answered from the cache (valid entry).
    pub cache_hits: u64,
    /// Trace queries answered from the cache within a bounded-staleness
    /// window under ingest load (only the concurrent store serves these;
    /// the single-threaded [`Server`] always validates strictly, so here
    /// it stays 0). Disjoint from `cache_hits`.
    pub cache_stale_hits: u64,
    /// Trace queries with no cached entry (assembled fresh).
    pub cache_misses: u64,
    /// Trace queries whose cached entry had gone stale — a mutation in the
    /// trace's time envelope — and was re-assembled. Disjoint from
    /// `cache_misses`.
    pub cache_invalidations: u64,
}

/// The DeepFlow Server.
pub struct Server {
    store: ShardedSpanStore,
    dict: TagDictionary,
    assemble_cfg: AssembleConfig,
    /// Single-lock stats: each operation updates all its counters under
    /// one acquisition, keeping snapshots coherent (module docs).
    stats: Mutex<ServerStats>,
    /// Assembled-trace cache; behind a lock so read-path queries go
    /// through `&self`.
    cache: Mutex<TraceCache>,
}

impl Server {
    /// Server over a resource inventory (Fig. 8 ①–③ already collected),
    /// with the default sharding policy.
    pub fn new(inventory: &ResourceInventory) -> Self {
        Self::with_policy(inventory, ShardPolicy::default())
    }

    /// Server with an explicit sharding policy (shard count, routing-table
    /// bucket width, tombstone-eviction threshold).
    pub fn with_policy(inventory: &ResourceInventory, policy: ShardPolicy) -> Self {
        Server {
            store: ShardedSpanStore::new(policy),
            dict: TagDictionary::build(inventory),
            assemble_cfg: AssembleConfig::default(),
            stats: Mutex::new(ServerStats::default()),
            cache: Mutex::new(TraceCache::new()),
        }
    }

    /// Override assembly tunables (the Alg. 1 iteration-cap ablation).
    pub fn set_assemble_config(&mut self, cfg: AssembleConfig) {
        self.assemble_cfg = cfg;
    }

    /// The tag dictionary (display lookups).
    pub fn dictionary(&self) -> &TagDictionary {
        &self.dict
    }

    /// A coherent snapshot of the counters (module docs).
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock().expect("stats lock poisoned")
    }

    /// Spans stored.
    pub fn span_count(&self) -> usize {
        self.store.len()
    }

    /// Spans per shard (operator-facing balance check).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.store.shard_sizes()
    }

    /// Direct store access (benches, diagnostics).
    pub fn store(&self) -> &ShardedSpanStore {
        &self.store
    }

    /// Ingest one span: smart-encoding phase 2 (Fig. 8 ⑦) then insert.
    pub fn ingest(&mut self, mut span: Span) -> SpanId {
        self.dict.enrich(&mut span.tags.resource);
        let enriched = span.tags.resource.is_enriched();
        {
            let mut st = self.stats.lock().expect("stats lock poisoned");
            st.ingested += 1;
            if enriched {
                st.enriched += 1;
            }
        }
        self.store.insert(span)
    }

    /// Ingest a batch (what an agent ships per flush): enrich every span,
    /// then insert through the store's batched path, which routes each
    /// span to its shard and defers time-index ordering to the next query.
    pub fn ingest_batch(&mut self, mut spans: Vec<Span>) -> Vec<SpanId> {
        let mut enriched = 0u64;
        for span in &mut spans {
            self.dict.enrich(&mut span.tags.resource);
            if span.tags.resource.is_enriched() {
                enriched += 1;
            }
        }
        {
            let mut st = self.stats.lock().expect("stats lock poisoned");
            st.ingested += spans.len() as u64;
            st.enriched += enriched;
        }
        self.store.insert_batch(spans)
    }

    /// Ingest a DFW1-encoded span batch as shipped on the wire (see
    /// [`df_types::wire`]): decode the whole frame first — a malformed
    /// batch is rejected with the store and stats untouched — then take
    /// the normal [`Self::ingest_batch`] enrich + insert path.
    pub fn ingest_wire(&mut self, batch: &[u8]) -> Result<Vec<SpanId>, WireDecodeError> {
        let spans = wire::decode_batch(batch)?;
        Ok(self.ingest_batch(spans))
    }

    /// Span-list query (Fig. 15's "span list"), with phase-3 label join
    /// (Fig. 8 ⑧) applied to the results.
    pub fn span_list(&self, query: &SpanQuery) -> Vec<Span> {
        self.stats.lock().expect("stats lock poisoned").list_queries += 1;
        let dict = &self.dict;
        let results: Vec<Span> = self
            .store
            .query(query)
            .into_iter()
            .map(std::borrow::Cow::into_owned)
            .map(|mut s| {
                join_labels(dict, &mut s);
                s
            })
            .collect();
        results
    }

    /// Trace query: Algorithm 1 from a user-chosen span (Fig. 15's
    /// "trace"), answered through the incremental trace cache, with
    /// phase-3 label join on every span. The cache stores the *unlabeled*
    /// assembly output; labels are joined per query so dictionary updates
    /// are always reflected.
    pub fn trace(&self, start: SpanId) -> Trace {
        let outcome = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .lookup(start, &self.store);
        let (arc, outcome_kind) = match outcome {
            CacheOutcome::Hit(t) => (t, CacheKind::Hit),
            other => {
                let fresh = assemble_trace_sharded(&self.store, start, &self.assemble_cfg);
                let arc = self.cache.lock().expect("cache lock poisoned").store(
                    start,
                    fresh,
                    &self.store,
                );
                match other {
                    CacheOutcome::Invalidated => (arc, CacheKind::Invalidated),
                    _ => (arc, CacheKind::Miss),
                }
            }
        };
        {
            // One acquisition for all counters of this query → coherent.
            let mut st = self.stats.lock().expect("stats lock poisoned");
            st.trace_queries += 1;
            match outcome_kind {
                CacheKind::Hit => st.cache_hits += 1,
                CacheKind::Miss => st.cache_misses += 1,
                CacheKind::Invalidated => st.cache_invalidations += 1,
            }
        }
        let mut trace = (*arc).clone();
        for s in &mut trace.spans {
            join_labels(&self.dict, &mut s.span);
        }
        trace
    }

    /// Convenience: the slowest span in a window — the typical "start
    /// point" a troubleshooting user picks ("users can select spans that
    /// they are interested in, such as time-consuming invocations").
    pub fn slowest_span(&self, from: TimeNs, to: TimeNs) -> Option<SpanId> {
        let q = SpanQuery::window(from, to);
        self.stats.lock().expect("stats lock poisoned").list_queries += 1;
        self.store
            .query(&q)
            .into_iter()
            .max_by_key(|s| s.duration())
            .map(|s| s.span_id)
    }

    /// Server-side re-aggregation (§3.3.1): pair Incomplete spans (requests
    /// whose responses missed the agent's time window) with the
    /// ResponseOnly fragments agents shipped later. Matching mirrors the
    /// agent's own technique — same capture point, same flow, FIFO order —
    /// and consumed fragments are tombstoned. The pass finishes by
    /// compacting tombstoned rows out of every shard's indexes
    /// ([`ShardedSpanStore::evict_tombstoned`]). Returns how many sessions
    /// were reunited.
    pub fn re_aggregate(&mut self) -> usize {
        use df_types::span::SpanStatus;
        use std::collections::HashMap;
        // Collect candidates (ids only; the store stays borrowable).
        let mut incomplete: HashMap<ReaggKey, Vec<(df_types::TimeNs, SpanId)>> = HashMap::new();
        let mut fragments: HashMap<ReaggKey, Vec<(df_types::TimeNs, SpanId)>> = HashMap::new();
        for span in self.store.iter() {
            if self.store.is_tombstoned(span.span_id) {
                continue;
            }
            let key = ReaggKey {
                agent: span.agent,
                tap_side: span.capture.tap_side,
                flow: span.flow_id,
                protocol: span.l7_protocol,
            };
            match span.status {
                SpanStatus::Incomplete => incomplete
                    .entry(key)
                    .or_default()
                    .push((span.req_time, span.span_id)),
                SpanStatus::ResponseOnly => fragments
                    .entry(key)
                    .or_default()
                    .push((span.resp_time, span.span_id)),
                _ => {}
            }
        }
        let mut merged = 0usize;
        for (key, mut reqs) in incomplete {
            let Some(mut resps) = fragments.remove(&key) else {
                continue;
            };
            reqs.sort_unstable();
            resps.sort_unstable();
            let mut ri = 0usize;
            for (req_ts, req_id) in reqs {
                // FIFO: the earliest fragment at or after the request.
                while ri < resps.len() && resps[ri].0 < req_ts {
                    ri += 1;
                }
                if ri >= resps.len() {
                    break;
                }
                let (_, frag_id) = resps[ri];
                ri += 1;
                let frag = self
                    .store
                    .get(frag_id)
                    .expect("fragment exists")
                    .into_owned();
                if self.store.complete_span(req_id, &frag) {
                    self.store.tombstone(frag_id);
                    merged += 1;
                }
            }
        }
        // Re-aggregation tombstones in bulk: compact immediately rather
        // than waiting for the per-shard threshold.
        self.store.evict_tombstoned();
        self.stats
            .lock()
            .expect("stats lock poisoned")
            .re_aggregated += merged as u64;
        merged
    }

    /// Convenience: error spans in a window.
    pub fn error_spans(&self, from: TimeNs, to: TimeNs) -> Vec<Span> {
        let q = SpanQuery {
            errors_only: true,
            ..SpanQuery::window(from, to)
        };
        self.span_list(&q)
    }
}

/// Which way a trace query was served (stat accounting only).
enum CacheKind {
    Hit,
    Miss,
    Invalidated,
}

fn join_labels(dict: &TagDictionary, span: &mut Span) {
    if let Some(ip) = span.tags.resource.ip {
        for (k, v) in dict.labels_for_ip(ip) {
            if span.tags.label(k).is_none() {
                span.tags.custom.push((k.clone(), v.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::ids::*;
    use df_types::l7::L7Protocol;
    use df_types::net::FiveTuple;
    use df_types::span::{CapturePoint, SpanKind, SpanStatus, TapSide};
    use df_types::tags::{NodeResource, PodResource, TagSet};
    use std::net::Ipv4Addr;

    fn inventory() -> ResourceInventory {
        ResourceInventory {
            pods: vec![PodResource {
                name: "web-0".into(),
                ip: u32::from(Ipv4Addr::new(10, 1, 0, 1)),
                node: "node-1".into(),
                namespace: "default".into(),
                workload: "web".into(),
                service: "web-svc".into(),
                labels: vec![("version".into(), "v3".into())],
            }],
            nodes: vec![NodeResource {
                name: "node-1".into(),
                ip: u32::from(Ipv4Addr::new(192, 168, 0, 1)),
                region: "r1".into(),
                az: "az1".into(),
                vpc: "vpc1".into(),
                subnet: "s1".into(),
                cluster: "c1".into(),
            }],
        }
    }

    fn span(req_ns: u64, duration: u64) -> Span {
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: TapSide::ClientProcess,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 1, 0, 1),
                40000,
                Ipv4Addr::new(10, 1, 1, 1),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".to_string(),
            req_time: TimeNs(req_ns),
            resp_time: TimeNs(req_ns + duration),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 1,
            resp_bytes: 1,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: Some(1),
            tcp_seq_resp: Some(2),
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet {
                resource: df_types::tags::ResourceTags {
                    vpc_id: Some(1),
                    ip: Some(u32::from(Ipv4Addr::new(10, 1, 0, 1))),
                    ..Default::default()
                },
                custom: vec![],
            },
            flow_metrics: None,
        }
    }

    #[test]
    fn ingest_enriches_phase2_tags() {
        let mut srv = Server::new(&inventory());
        let id = srv.ingest(span(100, 50));
        let stored = srv.store().get(id).unwrap();
        assert!(stored.tags.resource.is_enriched());
        assert_eq!(
            srv.dictionary()
                .pod_name(stored.tags.resource.pod_id.unwrap()),
            Some("web-0")
        );
        assert_eq!(srv.stats().enriched, 1);
        // Labels are NOT materialised at ingest (phase 3 is query-time).
        assert!(stored.tags.custom.is_empty());
    }

    #[test]
    fn span_list_joins_labels_at_query_time() {
        let mut srv = Server::new(&inventory());
        srv.ingest(span(100, 50));
        let got = srv.span_list(&SpanQuery::window(TimeNs(0), TimeNs(1000)));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tags.label("version"), Some("v3"));
    }

    #[test]
    fn slowest_span_and_errors() {
        let mut srv = Server::new(&inventory());
        srv.ingest(span(100, 50));
        let slow = srv.ingest(span(200, 5000));
        let mut err = span(300, 10);
        err.status = SpanStatus::ServerError;
        srv.ingest(err);
        assert_eq!(srv.slowest_span(TimeNs(0), TimeNs(10_000)), Some(slow));
        let errors = srv.error_spans(TimeNs(0), TimeNs(10_000));
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].status, SpanStatus::ServerError);
    }

    #[test]
    fn trace_query_assembles_and_labels() {
        let mut srv = Server::new(&inventory());
        let a = srv.ingest(span(100, 500)); // seq 1
        let mut child = span(150, 100);
        child.capture.tap_side = TapSide::ClientNodeNic;
        child.kind = SpanKind::Net;
        srv.ingest(child); // same seq → same exchange
        let trace = srv.trace(a);
        assert_eq!(trace.len(), 2);
        assert!(trace.is_well_formed());
        assert!(trace
            .spans
            .iter()
            .all(|s| s.span.tags.label("version") == Some("v3")));
        assert_eq!(srv.stats().trace_queries, 1);
    }

    #[test]
    fn ingest_batch_counts() {
        let mut srv = Server::new(&inventory());
        let ids = srv.ingest_batch(vec![span(1, 1), span(2, 1), span(3, 1)]);
        assert_eq!(ids.len(), 3);
        assert_eq!(srv.span_count(), 3);
        assert_eq!(srv.stats().ingested, 3);
        assert_eq!(srv.shard_sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn trace_cache_counters_track_hit_miss_invalidation() {
        let mut srv = Server::new(&inventory());
        let a = srv.ingest(span(100, 500));
        srv.ingest(span(150, 100));
        let cold = srv.trace(a);
        let warm = srv.trace(a);
        assert_eq!(cold, warm, "cache returns the same labeled trace");
        let mut late = span(200, 100);
        late.capture.tap_side = TapSide::ServerProcess;
        srv.ingest(late); // lands in the trace's time envelope
        let refreshed = srv.trace(a);
        assert_eq!(refreshed.len(), 3);
        let st = srv.stats();
        assert_eq!(
            (st.cache_misses, st.cache_hits, st.cache_invalidations),
            (1, 1, 1)
        );
        assert_eq!(
            st.trace_queries,
            st.cache_hits + st.cache_misses + st.cache_invalidations,
            "snapshot invariant (module docs)"
        );
    }

    #[test]
    fn stats_snapshot_is_coherent_mid_workload() {
        let mut srv = Server::new(&inventory());
        let a = srv.ingest(span(100, 500));
        for _ in 0..7 {
            srv.trace(a);
            let st = srv.stats();
            assert_eq!(
                st.trace_queries,
                st.cache_hits + st.cache_misses + st.cache_invalidations
            );
        }
    }

    #[test]
    fn re_aggregation_reunites_and_compacts() {
        let mut srv = Server::new(&inventory());
        let mut req = span(100, 0);
        req.status = SpanStatus::Incomplete;
        req.tcp_seq_resp = None;
        let req_id = srv.ingest(req);
        let mut frag = span(100, 900);
        frag.status = SpanStatus::ResponseOnly;
        frag.resp_time = TimeNs(1_000);
        let frag_id = srv.ingest(frag);

        assert_eq!(srv.re_aggregate(), 1);
        assert_eq!(srv.stats().re_aggregated, 1);
        let merged = srv.store().get(req_id).unwrap();
        assert_eq!(merged.status, SpanStatus::Ok);
        assert!(srv.store().is_tombstoned(frag_id));
        assert_eq!(
            srv.store().pending_evictions(),
            0,
            "re-aggregation pass compacts eagerly"
        );
    }
}
