//! The server facade: ingest spans, answer queries.

use crate::assemble::{assemble_trace, AssembleConfig};
use crate::dictionary::TagDictionary;
use df_storage::{SpanQuery, SpanStore};
use df_types::tags::ResourceInventory;
use df_types::trace::Trace;
use df_types::{Span, SpanId, TimeNs};
use std::sync::atomic::{AtomicU64, Ordering};

/// Re-aggregation matching key: the capture point + flow + protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ReaggKey {
    agent: df_types::AgentId,
    tap_side: df_types::TapSide,
    flow: df_types::FlowId,
    protocol: df_types::L7Protocol,
}

/// Server counters (a point-in-time snapshot of the atomic cells).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Spans ingested.
    pub ingested: u64,
    /// Spans whose tags were phase-2 enriched.
    pub enriched: u64,
    /// Trace queries served.
    pub trace_queries: u64,
    /// Span-list queries served.
    pub list_queries: u64,
    /// Sessions reunited by server-side re-aggregation.
    pub re_aggregated: u64,
}

/// Internal counters as atomics, so query paths (`span_list`, `trace`,
/// `slowest_span`) can count through `&self`.
#[derive(Debug, Default)]
struct StatsCells {
    ingested: AtomicU64,
    enriched: AtomicU64,
    trace_queries: AtomicU64,
    list_queries: AtomicU64,
    re_aggregated: AtomicU64,
}

/// The DeepFlow Server.
pub struct Server {
    store: SpanStore,
    dict: TagDictionary,
    assemble_cfg: AssembleConfig,
    stats: StatsCells,
}

impl Server {
    /// Server over a resource inventory (Fig. 8 ①–③ already collected).
    pub fn new(inventory: &ResourceInventory) -> Self {
        Server {
            store: SpanStore::new(),
            dict: TagDictionary::build(inventory),
            assemble_cfg: AssembleConfig::default(),
            stats: StatsCells::default(),
        }
    }

    /// Override assembly tunables (the Alg. 1 iteration-cap ablation).
    pub fn set_assemble_config(&mut self, cfg: AssembleConfig) {
        self.assemble_cfg = cfg;
    }

    /// The tag dictionary (display lookups).
    pub fn dictionary(&self) -> &TagDictionary {
        &self.dict
    }

    /// Counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            ingested: self.stats.ingested.load(Ordering::Relaxed),
            enriched: self.stats.enriched.load(Ordering::Relaxed),
            trace_queries: self.stats.trace_queries.load(Ordering::Relaxed),
            list_queries: self.stats.list_queries.load(Ordering::Relaxed),
            re_aggregated: self.stats.re_aggregated.load(Ordering::Relaxed),
        }
    }

    /// Spans stored.
    pub fn span_count(&self) -> usize {
        self.store.len()
    }

    /// Direct store access (benches).
    pub fn store(&self) -> &SpanStore {
        &self.store
    }

    /// Ingest one span: smart-encoding phase 2 (Fig. 8 ⑦) then insert.
    pub fn ingest(&mut self, mut span: Span) -> SpanId {
        self.dict.enrich(&mut span.tags.resource);
        if span.tags.resource.is_enriched() {
            self.stats.enriched.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.ingested.fetch_add(1, Ordering::Relaxed);
        self.store.insert(span)
    }

    /// Ingest a batch (what an agent ships per flush): enrich every span,
    /// then insert through the store's batched path, which defers
    /// time-index ordering to the next query.
    pub fn ingest_batch(&mut self, mut spans: Vec<Span>) -> Vec<SpanId> {
        for span in &mut spans {
            self.dict.enrich(&mut span.tags.resource);
            if span.tags.resource.is_enriched() {
                self.stats.enriched.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stats
            .ingested
            .fetch_add(spans.len() as u64, Ordering::Relaxed);
        self.store.insert_batch(spans)
    }

    /// Span-list query (Fig. 15's "span list"), with phase-3 label join
    /// (Fig. 8 ⑧) applied to the results.
    pub fn span_list(&self, query: &SpanQuery) -> Vec<Span> {
        self.stats.list_queries.fetch_add(1, Ordering::Relaxed);
        let dict = &self.dict;
        let results: Vec<Span> = self
            .store
            .query(query)
            .into_iter()
            .cloned()
            .map(|mut s| {
                join_labels(dict, &mut s);
                s
            })
            .collect();
        results
    }

    /// Trace query: Algorithm 1 from a user-chosen span (Fig. 15's
    /// "trace"), with phase-3 label join on every span.
    pub fn trace(&self, start: SpanId) -> Trace {
        self.stats.trace_queries.fetch_add(1, Ordering::Relaxed);
        let mut trace = assemble_trace(&self.store, start, &self.assemble_cfg);
        for s in &mut trace.spans {
            join_labels(&self.dict, &mut s.span);
        }
        trace
    }

    /// Convenience: the slowest span in a window — the typical "start
    /// point" a troubleshooting user picks ("users can select spans that
    /// they are interested in, such as time-consuming invocations").
    pub fn slowest_span(&self, from: TimeNs, to: TimeNs) -> Option<SpanId> {
        let q = SpanQuery::window(from, to);
        self.stats.list_queries.fetch_add(1, Ordering::Relaxed);
        self.store
            .query(&q)
            .into_iter()
            .max_by_key(|s| s.duration())
            .map(|s| s.span_id)
    }

    /// Server-side re-aggregation (§3.3.1): pair Incomplete spans (requests
    /// whose responses missed the agent's time window) with the
    /// ResponseOnly fragments agents shipped later. Matching mirrors the
    /// agent's own technique — same capture point, same flow, FIFO order —
    /// and consumed fragments are tombstoned. Returns how many sessions
    /// were reunited.
    pub fn re_aggregate(&mut self) -> usize {
        use df_types::span::SpanStatus;
        use std::collections::HashMap;
        // Collect candidates (ids only; the store stays borrowable).
        let mut incomplete: HashMap<ReaggKey, Vec<(df_types::TimeNs, SpanId)>> = HashMap::new();
        let mut fragments: HashMap<ReaggKey, Vec<(df_types::TimeNs, SpanId)>> = HashMap::new();
        for span in self.store.iter() {
            if self.store.is_tombstoned(span.span_id) {
                continue;
            }
            let key = ReaggKey {
                agent: span.agent,
                tap_side: span.capture.tap_side,
                flow: span.flow_id,
                protocol: span.l7_protocol,
            };
            match span.status {
                SpanStatus::Incomplete => incomplete
                    .entry(key)
                    .or_default()
                    .push((span.req_time, span.span_id)),
                SpanStatus::ResponseOnly => fragments
                    .entry(key)
                    .or_default()
                    .push((span.resp_time, span.span_id)),
                _ => {}
            }
        }
        let mut merged = 0usize;
        for (key, mut reqs) in incomplete {
            let Some(mut resps) = fragments.remove(&key) else {
                continue;
            };
            reqs.sort_unstable();
            resps.sort_unstable();
            let mut ri = 0usize;
            for (req_ts, req_id) in reqs {
                // FIFO: the earliest fragment at or after the request.
                while ri < resps.len() && resps[ri].0 < req_ts {
                    ri += 1;
                }
                if ri >= resps.len() {
                    break;
                }
                let (_, frag_id) = resps[ri];
                ri += 1;
                let frag = self.store.get(frag_id).cloned().expect("fragment exists");
                if self.store.complete_span(req_id, &frag) {
                    self.store.tombstone(frag_id);
                    merged += 1;
                }
            }
        }
        self.stats
            .re_aggregated
            .fetch_add(merged as u64, Ordering::Relaxed);
        merged
    }

    /// Convenience: error spans in a window.
    pub fn error_spans(&self, from: TimeNs, to: TimeNs) -> Vec<Span> {
        let q = SpanQuery {
            errors_only: true,
            ..SpanQuery::window(from, to)
        };
        self.span_list(&q)
    }
}

fn join_labels(dict: &TagDictionary, span: &mut Span) {
    if let Some(ip) = span.tags.resource.ip {
        for (k, v) in dict.labels_for_ip(ip) {
            if span.tags.label(k).is_none() {
                span.tags.custom.push((k.clone(), v.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::ids::*;
    use df_types::l7::L7Protocol;
    use df_types::net::FiveTuple;
    use df_types::span::{CapturePoint, SpanKind, SpanStatus, TapSide};
    use df_types::tags::{NodeResource, PodResource, TagSet};
    use std::net::Ipv4Addr;

    fn inventory() -> ResourceInventory {
        ResourceInventory {
            pods: vec![PodResource {
                name: "web-0".into(),
                ip: u32::from(Ipv4Addr::new(10, 1, 0, 1)),
                node: "node-1".into(),
                namespace: "default".into(),
                workload: "web".into(),
                service: "web-svc".into(),
                labels: vec![("version".into(), "v3".into())],
            }],
            nodes: vec![NodeResource {
                name: "node-1".into(),
                ip: u32::from(Ipv4Addr::new(192, 168, 0, 1)),
                region: "r1".into(),
                az: "az1".into(),
                vpc: "vpc1".into(),
                subnet: "s1".into(),
                cluster: "c1".into(),
            }],
        }
    }

    fn span(req_ns: u64, duration: u64) -> Span {
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: TapSide::ClientProcess,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 1, 0, 1),
                40000,
                Ipv4Addr::new(10, 1, 1, 1),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".to_string(),
            req_time: TimeNs(req_ns),
            resp_time: TimeNs(req_ns + duration),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 1,
            resp_bytes: 1,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: Some(1),
            tcp_seq_resp: Some(2),
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet {
                resource: df_types::tags::ResourceTags {
                    vpc_id: Some(1),
                    ip: Some(u32::from(Ipv4Addr::new(10, 1, 0, 1))),
                    ..Default::default()
                },
                custom: vec![],
            },
            flow_metrics: None,
        }
    }

    #[test]
    fn ingest_enriches_phase2_tags() {
        let mut srv = Server::new(&inventory());
        let id = srv.ingest(span(100, 50));
        let stored = srv.store().get(id).unwrap();
        assert!(stored.tags.resource.is_enriched());
        assert_eq!(
            srv.dictionary()
                .pod_name(stored.tags.resource.pod_id.unwrap()),
            Some("web-0")
        );
        assert_eq!(srv.stats().enriched, 1);
        // Labels are NOT materialised at ingest (phase 3 is query-time).
        assert!(stored.tags.custom.is_empty());
    }

    #[test]
    fn span_list_joins_labels_at_query_time() {
        let mut srv = Server::new(&inventory());
        srv.ingest(span(100, 50));
        let got = srv.span_list(&SpanQuery::window(TimeNs(0), TimeNs(1000)));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tags.label("version"), Some("v3"));
    }

    #[test]
    fn slowest_span_and_errors() {
        let mut srv = Server::new(&inventory());
        srv.ingest(span(100, 50));
        let slow = srv.ingest(span(200, 5000));
        let mut err = span(300, 10);
        err.status = SpanStatus::ServerError;
        srv.ingest(err);
        assert_eq!(srv.slowest_span(TimeNs(0), TimeNs(10_000)), Some(slow));
        let errors = srv.error_spans(TimeNs(0), TimeNs(10_000));
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].status, SpanStatus::ServerError);
    }

    #[test]
    fn trace_query_assembles_and_labels() {
        let mut srv = Server::new(&inventory());
        let a = srv.ingest(span(100, 500)); // seq 1
        let mut child = span(150, 100);
        child.capture.tap_side = TapSide::ClientNodeNic;
        child.kind = SpanKind::Net;
        srv.ingest(child); // same seq → same exchange
        let trace = srv.trace(a);
        assert_eq!(trace.len(), 2);
        assert!(trace.is_well_formed());
        assert!(trace
            .spans
            .iter()
            .all(|s| s.span.tags.label("version") == Some("v3")));
        assert_eq!(srv.stats().trace_queries, 1);
    }

    #[test]
    fn ingest_batch_counts() {
        let mut srv = Server::new(&inventory());
        let ids = srv.ingest_batch(vec![span(1, 1), span(2, 1), span(3, 1)]);
        assert_eq!(ids.len(), 3);
        assert_eq!(srv.span_count(), 3);
        assert_eq!(srv.stats().ingested, 3);
    }
}
