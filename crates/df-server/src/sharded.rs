//! [`ShardedSpanStore`] — the span corpus partitioned across shards, with
//! cross-shard trace assembly.
//!
//! PR 1 made Algorithm 1 frontier-based and index-driven, but assembly
//! still ran against one in-memory [`SpanStore`]. This module takes the
//! next scale step (ROADMAP "assembly at scale"): the corpus is split into
//! [`ShardPolicy::shards`] shards, each a plain [`SpanStore`], and
//! [`assemble_trace_sharded`] runs Phase 1's frontier expansion *across*
//! the shards — each index key is still expanded at most once globally,
//! but an expansion probes every shard's `find_by_*` index and merges the
//! candidate rows. Phases 2 and 3 are byte-for-byte the single-store
//! implementations (the member set, once materialised, no longer cares
//! where spans were stored), so the differential oracle
//! [`assemble_trace_reference`](crate::assemble::assemble_trace_reference)
//! keeps holding against the sharded path at any shard count — the
//! property tests assert it for 1, 4 and 16 shards.
//!
//! ## Id regime
//!
//! The sharded store owns id assignment: ids are global, sequential in
//! insertion order (`1, 2, 3, …` — exactly what a single [`SpanStore`]
//! would have assigned for the same insertion sequence, which is what
//! makes differential testing possible). A routing table maps each id to
//! its `(shard, row)` location; shards store spans via the row-addressed
//! [`SpanStore::insert_routed`] regime and are never asked to translate
//! ids themselves.
//!
//! ## Routing table and bucket generations
//!
//! Per [`ShardPolicy::bucket_of`] time bucket the store tracks which
//! shards hold spans in that bucket (so time-windowed queries skip shards
//! with nothing in the window) and a monotonically increasing
//! **generation**, bumped by any mutation whose spans fall in the bucket
//! (insert, tombstone, re-aggregation completing a span). The incremental
//! trace cache ([`crate::trace_cache::TraceCache`]) snapshots the
//! generations of the buckets a trace touches and re-validates them on
//! lookup — see that module for the staleness contract.
//!
//! ## Tombstones
//!
//! Tombstoning routes to the owning shard's
//! [`SpanStore::tombstone_row`], and once a shard accumulates
//! [`ShardPolicy::evict_threshold`] pending tombstones its association
//! indexes are compacted ([`SpanStore::evict_tombstoned`]) so probes stop
//! paying for rows every reader filters. The server also compacts
//! unconditionally after each re-aggregation pass.

use crate::assemble::{assemble_members, AssembleConfig};
use df_check::sync::Arc;
use df_storage::{
    BufferPool, ShardPolicy, SpanQuery, SpanStore, SpillStats, StoreStats, TierConfig,
};
use df_types::rpc::CandidateKeys;
use df_types::trace::Trace;
use df_types::{Span, SpanId, TimeNs};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::io;

/// Location of a span inside the sharded corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Loc {
    pub(crate) shard: u16,
    pub(crate) row: u32,
}

/// Tiering state shared by every shard: one buffer pool (one frame
/// budget, one background disk scheduler) and the spill directory.
#[derive(Debug)]
pub(crate) struct TierState {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) cfg: TierConfig,
}

impl TierState {
    pub(crate) fn new(cfg: TierConfig) -> Self {
        TierState {
            pool: Arc::new(BufferPool::new(cfg.pool)),
            cfg,
        }
    }
}

/// Per-time-bucket routing-table entry.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Bucket {
    /// Bumped on every mutation touching the bucket (trace-cache epoch).
    pub(crate) gen: u64,
    /// Bit `i` set ⇔ shard `i` holds at least one span in this bucket.
    pub(crate) shards: u64,
}

/// A span corpus partitioned across [`SpanStore`] shards.
///
/// # Examples
///
/// ```
/// use df_server::sharded::{assemble_trace_sharded, ShardedSpanStore};
/// use df_server::AssembleConfig;
/// use df_storage::ShardPolicy;
/// use df_types::span::TapSide;
/// use df_types::Span;
///
/// let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
/// // Two capture points of one exchange: same TCP sequence number.
/// let mut client = Span::synthetic(TapSide::ClientProcess, 100, 900);
/// client.tcp_seq_req = Some(7);
/// let mut server = Span::synthetic(TapSide::ServerProcess, 200, 800);
/// server.tcp_seq_req = Some(7);
/// let ids = store.insert_batch(vec![client, server]);
///
/// let trace = assemble_trace_sharded(&store, ids[0], &AssembleConfig::default());
/// assert_eq!(trace.len(), 2);
/// assert!(trace.is_well_formed());
/// ```
#[derive(Debug)]
pub struct ShardedSpanStore {
    policy: ShardPolicy,
    shards: Vec<SpanStore>,
    /// Global id − 1 → location. Ids are assigned sequentially here.
    route: Vec<Loc>,
    buckets: HashMap<u64, Bucket>,
    /// Spans routed away from their preferred shard because it was at
    /// [`ShardPolicy::max_shard_rows`] (see [`ShardedSpanStore::routing_clamped`]).
    routing_clamped: u64,
    /// Hot/cold tiering, if enabled (see [`ShardedSpanStore::enable_tiering`]).
    tier: Option<TierState>,
}

impl ShardedSpanStore {
    /// Empty store under `policy`. Shard counts above 64 are clamped (the
    /// routing table tracks per-bucket occupancy as a 64-bit mask).
    pub fn new(mut policy: ShardPolicy) -> Self {
        policy.shards = policy.shards.clamp(1, 64);
        ShardedSpanStore {
            shards: (0..policy.shards).map(|_| SpanStore::new()).collect(),
            policy,
            route: Vec::new(),
            buckets: HashMap::new(),
            routing_clamped: 0,
            tier: None,
        }
    }

    /// Enable hot/cold tiering: one [`BufferPool`] (one frame budget, one
    /// background disk scheduler) shared by every shard. Idempotent per
    /// store; returns the pool so callers can inspect
    /// [`BufferPool::stats`].
    pub fn enable_tiering(&mut self, cfg: TierConfig) -> Arc<BufferPool> {
        let state = TierState::new(cfg);
        let pool = Arc::clone(&state.pool);
        for shard in &mut self.shards {
            shard.set_cold_reader(Arc::clone(&pool));
        }
        self.tier = Some(state);
        pool
    }

    /// Whether tiering is enabled.
    pub fn tiering_enabled(&self) -> bool {
        self.tier.is_some()
    }

    /// The shared buffer pool, if tiering is enabled.
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.tier.as_ref().map(|t| &t.pool)
    }

    /// Spill every completed span older than `watermark` to the cold
    /// tier, one segment per (shard, time bucket). Spill is
    /// content-neutral — no bucket generation is bumped, because probes,
    /// queries and assembly see the identical corpus afterwards (cached
    /// traces stay valid; the tiering tests pin this down).
    ///
    /// Errors if tiering was never enabled or a segment write fails (in
    /// which case no row of the failing shard flips cold).
    pub fn spill_before(&mut self, watermark: TimeNs) -> io::Result<SpillStats> {
        let Some(tier) = &self.tier else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "tiering not enabled on this store",
            ));
        };
        let mut total = SpillStats::default();
        for (si, shard) in self.shards.iter_mut().enumerate() {
            total.merge(shard.spill_before(
                &self.policy,
                watermark,
                &tier.pool,
                &tier.cfg.dir,
                si as u16,
            )?);
        }
        Ok(total)
    }

    /// Spill by the configured horizon: everything older than the newest
    /// [`TierConfig::hot_buckets`] time buckets goes cold. No-op on an
    /// empty corpus or when the corpus spans fewer buckets than the
    /// horizon.
    pub fn spill_auto(&mut self) -> io::Result<SpillStats> {
        let Some(tier) = &self.tier else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "tiering not enabled on this store",
            ));
        };
        let Some(&newest) = self.buckets.keys().max() else {
            return Ok(SpillStats::default());
        };
        let hot = tier.cfg.hot_buckets.max(1);
        let Some(first_hot) = (newest + 1).checked_sub(hot) else {
            return Ok(SpillStats::default());
        };
        let watermark = TimeNs(first_hot.saturating_mul(self.policy.time_bucket.as_nanos()));
        self.spill_before(watermark)
    }

    /// Rows currently resident (hot) vs spilled (cold), across shards.
    pub fn tier_occupancy(&self) -> (usize, usize) {
        self.shards
            .iter()
            .fold((0, 0), |(h, c), s| (h + s.hot_rows(), c + s.cold_rows()))
    }

    /// The routing policy this store was built with.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Spans per shard, in shard order (the server's shard-size stats).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(SpanStore::len).collect()
    }

    /// Per-shard store statistics.
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(SpanStore::stats).collect()
    }

    /// Total spans stored (across all shards).
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// Whether the store holds no spans.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }

    /// Insert one span: assign the next global id, route it to its shard,
    /// bump its time bucket's generation. Returns the id.
    ///
    /// This path never panics on routing-table pressure: when the preferred
    /// shard is already at [`ShardPolicy::max_shard_rows`] the span is
    /// *clamped* to the least-loaded shard instead (counted by
    /// [`ShardedSpanStore::routing_clamped`]). The cap is soft — if every
    /// shard is full the least-loaded one still accepts the span — so
    /// ingest degrades by rebalancing rather than by erroring.
    pub fn insert(&mut self, mut span: Span) -> SpanId {
        let id = SpanId(self.route.len() as u64 + 1);
        span.span_id = id;
        let shard = self.pick_shard(self.policy.route(&span));
        self.touch_bucket(self.policy.bucket_of(span.req_time), shard);
        let row = self.shards[shard as usize].insert_routed(span);
        self.route.push(Loc { shard, row });
        id
    }

    /// The preferred shard, unless it is at the policy's row cap — then the
    /// least-loaded shard, with the clamp counted.
    fn pick_shard(&mut self, preferred: usize) -> u16 {
        if self.shards[preferred].len() < self.policy.max_shard_rows {
            return preferred as u16;
        }
        self.routing_clamped += 1;
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.len())
            .map(|(i, _)| i as u16)
            .unwrap_or(preferred as u16)
    }

    /// How many spans were routed away from their preferred shard because
    /// it had reached [`ShardPolicy::max_shard_rows`]. A nonzero value
    /// means flow locality is degraded (cross-shard probes do the work) but
    /// no span was refused or lost.
    pub fn routing_clamped(&self) -> u64 {
        self.routing_clamped
    }

    /// Insert a batch (what an agent ships per flush): each span is routed
    /// independently; ids are assigned in batch order.
    pub fn insert_batch(&mut self, spans: Vec<Span>) -> Vec<SpanId> {
        self.route.reserve(spans.len());
        spans.into_iter().map(|s| self.insert(s)).collect()
    }

    /// Fetch by global id (tier-aware: a cold span pages in and is
    /// returned owned; hot spans stay borrowed).
    pub fn get(&self, id: SpanId) -> Option<Cow<'_, Span>> {
        let loc = self.loc(id)?;
        self.shards[loc.shard as usize].span_at(loc.row)
    }

    /// Whether a span is tombstoned (consumed by re-aggregation).
    pub fn is_tombstoned(&self, id: SpanId) -> bool {
        self.loc(id)
            .map(|l| self.shards[l.shard as usize].is_tombstoned(id))
            .unwrap_or(false)
    }

    /// Hide a span from queries. Bumps the span's bucket generation (a
    /// cached trace containing it must re-assemble) and compacts the
    /// owning shard's indexes once its pending-eviction count crosses
    /// [`ShardPolicy::evict_threshold`].
    pub fn tombstone(&mut self, id: SpanId) {
        let Some(loc) = self.loc(id) else {
            return;
        };
        let bucket = self.shards[loc.shard as usize]
            .req_time_at(loc.row)
            .map(|t| self.policy.bucket_of(t));
        self.shards[loc.shard as usize].tombstone_row(loc.row);
        if let Some(b) = bucket {
            self.touch_bucket(b, loc.shard);
        }
        if self.shards[loc.shard as usize].pending_evictions() >= self.policy.evict_threshold {
            self.shards[loc.shard as usize].evict_tombstoned();
        }
    }

    /// Merge a late response into an Incomplete span (server-side
    /// re-aggregation, §3.3.1), routed to the owning shard. Bumps the
    /// span's bucket generation on success.
    pub fn complete_span(&mut self, id: SpanId, resp: &Span) -> bool {
        let Some(loc) = self.loc(id) else {
            return false;
        };
        let done = self.shards[loc.shard as usize].complete_span_row(loc.row, resp);
        if done {
            let bucket = self.shards[loc.shard as usize]
                .req_time_at(loc.row)
                .map(|t| self.policy.bucket_of(t));
            if let Some(b) = bucket {
                self.touch_bucket(b, loc.shard);
            }
        }
        done
    }

    /// Compact tombstoned rows out of every shard's indexes (see
    /// [`SpanStore::evict_tombstoned`]). Returns total entries removed.
    pub fn evict_tombstoned(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(SpanStore::evict_tombstoned)
            .sum()
    }

    /// Tombstoned rows across all shards still awaiting compaction.
    pub fn pending_evictions(&self) -> usize {
        self.shards.iter().map(SpanStore::pending_evictions).sum()
    }

    /// Span-list query: each candidate shard answers locally, results are
    /// merged by `(req_time, span_id)` — the same order a single store
    /// yields for the same corpus — and re-capped at `limit`. Shards with
    /// no spans in the query's time window (per the routing table) are
    /// skipped entirely.
    pub fn query(&self, q: &SpanQuery) -> Vec<Cow<'_, Span>> {
        let mask = self.shards_for_window(q.from, q.to);
        let mut merged: Vec<Cow<'_, Span>> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if mask & (1u64 << i) == 0 {
                continue;
            }
            merged.extend(shard.query(q));
        }
        merged.sort_by_key(|s| (s.req_time, s.span_id));
        merged.truncate(q.limit);
        merged
    }

    /// Iterate all spans in global-id order (diagnostics, re-aggregation).
    /// Tier-aware: cold spans page in as the iterator reaches them.
    pub fn iter(&self) -> impl Iterator<Item = Cow<'_, Span>> + '_ {
        self.route.iter().map(move |loc| {
            self.shards[loc.shard as usize]
                .span_at(loc.row)
                .expect("routed row exists")
        })
    }

    /// The generation of a routing-table time bucket: 0 if the bucket has
    /// never been touched, otherwise bumped by every mutation (insert /
    /// tombstone / completion) whose span lies in the bucket. The trace
    /// cache's validity check.
    pub fn bucket_gen(&self, bucket: u64) -> u64 {
        self.buckets.get(&bucket).map(|b| b.gen).unwrap_or(0)
    }

    /// The time bucket containing `t` (delegates to the policy).
    pub fn bucket_of(&self, t: TimeNs) -> u64 {
        self.policy.bucket_of(t)
    }

    /// Internal: the shards (index-aligned) for the assembly hot loop.
    pub(crate) fn shards(&self) -> &[SpanStore] {
        &self.shards
    }

    fn loc(&self, id: SpanId) -> Option<Loc> {
        let idx = id.raw().checked_sub(1)? as usize;
        self.route.get(idx).copied()
    }

    fn touch_bucket(&mut self, bucket: u64, shard: u16) {
        let b = self.buckets.entry(bucket).or_default();
        b.gen += 1;
        b.shards |= 1u64 << u64::from(shard);
    }

    /// Bitmask of shards holding spans in `[from, to)` per the routing
    /// table; all-ones when the window is unbounded.
    fn shards_for_window(&self, from: Option<TimeNs>, to: Option<TimeNs>) -> u64 {
        let (Some(from), Some(to)) = (from, to) else {
            return u64::MAX;
        };
        if to.as_nanos() == 0 {
            return 0;
        }
        let lo = self.policy.bucket_of(from);
        let hi = self.policy.bucket_of(TimeNs(to.as_nanos() - 1));
        self.buckets
            .iter()
            .filter(|(b, _)| (lo..=hi).contains(*b))
            .fold(0u64, |m, (_, b)| m | b.shards)
    }
}

/// The per-index sets of keys already expanded during one assembly (each
/// key is expanded — probed against every shard — at most once globally).
/// The frontier round's *new* keys accumulate into a
/// [`CandidateKeys`] batch — the exact payload a
/// [`CandidateRequest`](df_types::rpc::RpcBody::CandidateRequest) RPC
/// carries to a remote shard owner, so local scoped-thread probing and
/// cross-node probing share one batching discipline.
#[derive(Debug, Default)]
pub struct ExpandedKeys {
    systrace: HashSet<u64>,
    pseudo_thread: HashSet<u64>,
    x_request: HashSet<u128>,
    tcp_seq: HashSet<u32>,
    otel_trace: HashSet<u128>,
}

impl ExpandedKeys {
    /// Collect `span`'s not-yet-expanded association keys into `batch`,
    /// marking them expanded. Key order within the batch is discovery
    /// order, which every consumer (local probe, remote RPC) preserves.
    pub fn collect(&mut self, batch: &mut CandidateKeys, span: &Span) {
        for v in [span.systrace_id_req, span.systrace_id_resp]
            .into_iter()
            .flatten()
        {
            if self.systrace.insert(v.raw()) {
                batch.systrace.push(v.raw());
            }
        }
        if let Some(p) = span.pseudo_thread_id {
            if self.pseudo_thread.insert(p.raw()) {
                batch.pseudo_thread.push(p.raw());
            }
        }
        for v in [span.x_request_id_req, span.x_request_id_resp]
            .into_iter()
            .flatten()
        {
            if self.x_request.insert(v.0) {
                batch.x_request.push(v.0);
            }
        }
        for v in [span.tcp_seq_req, span.tcp_seq_resp].into_iter().flatten() {
            if self.tcp_seq.insert(v) {
                batch.tcp_seq.push(v);
            }
        }
        if let Some(t) = span.otel_trace_id {
            if self.otel_trace.insert(t.0) {
                batch.otel_trace.push(t.0);
            }
        }
    }
}

/// Probe one shard with a whole round's key batch. Returns the shard's
/// *new* candidate rows: rows already in the global visited set are
/// skipped, rows matched by several keys are returned once, tombstoned
/// rows are filtered. Takes only shared references, so the per-shard
/// probes of one round can run on scoped threads concurrently — and a
/// remote shard owner answers a
/// [`CandidateRequest`](df_types::rpc::RpcBody::CandidateRequest) by
/// calling exactly this with an empty `seen` set (the coordinator filters
/// against its own visited set when merging).
pub fn probe_shard(
    si: u16,
    shard: &SpanStore,
    batch: &CandidateKeys,
    seen: &HashSet<(u16, u32)>,
) -> Vec<u32> {
    let mut local: HashSet<u32> = HashSet::new();
    let mut out: Vec<u32> = Vec::new();
    {
        let mut grow = |rows: &[u32]| {
            for &r in rows {
                if seen.contains(&(si, r)) || !local.insert(r) {
                    continue;
                }
                // The id is resident even for cold rows, so the tombstone
                // filter never pages in — probing stays IO-free.
                let id = shard.stored_id(r).expect("indexed row exists");
                if shard.is_tombstoned(id) {
                    continue; // consumed by re-aggregation
                }
                out.push(r);
            }
        };
        for &k in &batch.systrace {
            grow(shard.find_by_systrace(k));
        }
        for &k in &batch.pseudo_thread {
            grow(shard.find_by_pseudo_thread(k));
        }
        for &k in &batch.x_request {
            grow(shard.find_by_x_request(k));
        }
        for &k in &batch.tcp_seq {
            grow(shard.find_by_tcp_seq(k));
        }
        for &k in &batch.otel_trace {
            grow(shard.find_by_otel_trace(k));
        }
    }
    out
}

/// Minimum keys in a round's batch before the parallel path fans probes
/// out to scoped threads. Below it the spawn cost dominates the probe
/// cost, so small rounds (deep chains expand ~2 keys per round) stay
/// inline even in the parallel assembly.
pub const PARALLEL_MIN_KEYS: usize = 16;

/// Phase 1 over an explicit shard list: frontier rounds in which each
/// round batches the frontier's newly seen keys ([`CandidateKeys`]) and
/// probes the batch against every shard, merging per-shard candidate sets
/// into the global visited set. With `parallel_min_keys = Some(t)`, any
/// round whose batch holds ≥ `t` keys probes the shards concurrently via
/// [`std::thread::scope`]; shards and the visited set are only read during
/// a round, so the fan-out is safe by construction and the merged member
/// set is *identical* to the sequential walk (per-shard results are merged
/// in shard order either way). The distributed cluster reproduces this
/// exact member order by probing remote shards with the same per-round
/// [`CandidateKeys`] batch and merging responses in ascending global
/// shard order — the differential tests lean on that equality.
pub fn phase1_members(
    shards: &[&SpanStore],
    start: (u16, u32),
    cfg: &AssembleConfig,
    parallel_min_keys: Option<usize>,
) -> Vec<(u16, u32)> {
    let mut seen: HashSet<(u16, u32)> = HashSet::new();
    seen.insert(start);
    let mut members: Vec<(u16, u32)> = vec![start];
    let mut frontier: Vec<(u16, u32)> = vec![start];
    let mut keys = ExpandedKeys::default();
    for _iter in 0..cfg.iterations {
        if members.len() >= cfg.max_spans {
            break; // cap crossed; truncated by the caller
        }
        let mut batch = CandidateKeys::default();
        for &(si, row) in &frontier {
            // Key expansion needs the span's association attributes, so a
            // cold frontier member pages in here — this is the Phase 1
            // page-in path the tiered differential tests exercise.
            let span = shards[si as usize]
                .span_at(row)
                .expect("frontier rows exist");
            keys.collect(&mut batch, &span);
        }
        if batch.is_empty() {
            break; // fixed point: no new keys to expand
        }
        let fan_out = shards.len() > 1 && parallel_min_keys.is_some_and(|min| batch.len() >= min);
        let per_shard: Vec<Vec<u32>> = if fan_out {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .enumerate()
                    .map(|(si, shard)| {
                        let (batch, seen) = (&batch, &seen);
                        scope.spawn(move || probe_shard(si as u16, shard, batch, seen))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard probe thread panicked"))
                    .collect()
            })
        } else {
            shards
                .iter()
                .enumerate()
                .map(|(si, shard)| probe_shard(si as u16, shard, &batch, &seen))
                .collect()
        };
        let mut next: Vec<(u16, u32)> = Vec::new();
        for (si, rows) in per_shard.into_iter().enumerate() {
            for r in rows {
                if seen.insert((si as u16, r)) {
                    next.push((si as u16, r));
                }
            }
        }
        if next.is_empty() {
            break; // fixed point: keys expanded, nothing new matched
        }
        members.extend_from_slice(&next);
        frontier = next;
    }
    members
}

/// Shared epilogue: materialise the member locations, then run Phases 2
/// and 3 exactly as the single-store path does (via
/// [`assemble_members`]).
pub fn finish_assembly(
    shards: &[&SpanStore],
    members: &[(u16, u32)],
    start: SpanId,
    cfg: &AssembleConfig,
) -> Trace {
    let spans: Vec<Span> = members
        .iter()
        .map(|&(si, row)| {
            shards[si as usize]
                .span_at(row)
                .expect("member rows exist")
                .into_owned()
        })
        .collect();
    assemble_members(spans, start, cfg)
}

fn assemble_sharded_inner(
    store: &ShardedSpanStore,
    start: SpanId,
    cfg: &AssembleConfig,
    parallel_min_keys: Option<usize>,
) -> Trace {
    let Some(start_loc) = store.loc(start) else {
        return Trace::default();
    };
    if store.is_tombstoned(start) {
        return Trace::default();
    }
    let shard_refs: Vec<&SpanStore> = store.shards().iter().collect();
    let members = phase1_members(
        &shard_refs,
        (start_loc.shard, start_loc.row),
        cfg,
        parallel_min_keys,
    );
    finish_assembly(&shard_refs, &members, start, cfg)
}

/// Algorithm 1 over a sharded corpus. Phase 1 is the same frontier search
/// as [`assemble_trace`](crate::assemble::assemble_trace) — each index
/// *key* expanded at most once — but an expansion probes the key against
/// **every** shard's association index and merges the candidate sets;
/// visited-row memoization is per `(shard, row)`. Phases 2 and 3 reuse the
/// single-store implementations verbatim on the merged member set, so the
/// assembled trace is identical at any shard count (property-tested
/// against the reference oracle for 1, 4 and 16 shards).
pub fn assemble_trace_sharded(
    store: &ShardedSpanStore,
    start: SpanId,
    cfg: &AssembleConfig,
) -> Trace {
    assemble_sharded_inner(store, start, cfg, None)
}

/// [`assemble_trace_sharded`] with Phase 1's per-shard probes fanned out
/// across scoped threads: each frontier round ships the accumulated
/// probe batch to every shard concurrently and merges the candidate
/// sets back into the global visited set. Rounds with fewer than
/// `PARALLEL_MIN_KEYS` new keys stay inline (thread spawn would dominate
/// the probe cost). The member set — and therefore the assembled trace —
/// is identical to the sequential walk by construction; the property tests
/// assert it.
pub fn assemble_trace_sharded_parallel(
    store: &ShardedSpanStore,
    start: SpanId,
    cfg: &AssembleConfig,
) -> Trace {
    assemble_sharded_inner(store, start, cfg, Some(PARALLEL_MIN_KEYS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble_trace_reference;
    use df_types::ids::SysTraceId;
    use df_types::net::FiveTuple;
    use df_types::span::TapSide;
    use std::net::Ipv4Addr;

    /// A small corpus of three linked exchanges over distinct flows (so
    /// routing actually spreads them) plus one unrelated span.
    fn corpus() -> Vec<Span> {
        let mut spans = Vec::new();
        for hop in 0..3u64 {
            let tuple = FiveTuple::tcp(
                Ipv4Addr::new(10, 0, hop as u8, 1),
                40_000,
                Ipv4Addr::new(10, 0, hop as u8 + 1, 1),
                80,
            );
            let mut server = Span::synthetic(TapSide::ServerProcess, hop * 100, hop * 100 + 500);
            server.five_tuple = tuple;
            server.tcp_seq_req = Some(100 + hop as u32);
            server.systrace_id_req = Some(SysTraceId(hop + 1));
            spans.push(server);
            let mut client =
                Span::synthetic(TapSide::ClientProcess, hop * 100 + 10, hop * 100 + 490);
            client.five_tuple = tuple.reversed();
            client.tcp_seq_req = Some(101 + hop as u32); // next exchange
            client.systrace_id_req = Some(SysTraceId(hop + 1));
            spans.push(client);
        }
        let mut noise = Span::synthetic(TapSide::ServerProcess, 10_000, 10_500);
        noise.tcp_seq_req = Some(999);
        spans.push(noise);
        spans
    }

    fn edges(t: &Trace) -> Vec<(SpanId, Option<SpanId>)> {
        let mut e: Vec<_> = t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
        e.sort_unstable();
        e
    }

    #[test]
    fn ids_are_global_and_sequential_regardless_of_shards() {
        for shards in [1, 4, 16] {
            let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(shards));
            let ids = st.insert_batch(corpus());
            assert_eq!(
                ids,
                (1..=7).map(SpanId).collect::<Vec<_>>(),
                "{shards} shards"
            );
            for &id in &ids {
                let span = st
                    .get(id)
                    .unwrap_or_else(|| panic!("{shards}-shard store lost routed span {id:?}"));
                assert_eq!(span.span_id, id);
            }
            assert_eq!(st.len(), 7);
            assert_eq!(st.shard_sizes().iter().sum::<usize>(), 7);
        }
    }

    #[test]
    fn sharded_assembly_matches_single_store_reference() {
        // The reference oracle runs on a classic single store; the sharded
        // path must produce identical traces at every shard count.
        let mut single = SpanStore::new();
        for s in corpus() {
            single.insert(s);
        }
        for shards in [1, 2, 4, 16] {
            let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(shards));
            st.insert_batch(corpus());
            for start in 1..=7u64 {
                let sharded =
                    assemble_trace_sharded(&st, SpanId(start), &AssembleConfig::default());
                let oracle =
                    assemble_trace_reference(&single, SpanId(start), &AssembleConfig::default());
                assert_eq!(
                    edges(&sharded),
                    edges(&oracle),
                    "{shards} shards, start {start}"
                );
            }
        }
    }

    #[test]
    fn tombstones_route_and_hide_across_shards() {
        let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let ids = st.insert_batch(corpus());
        let victim = ids[2];
        st.tombstone(victim);
        assert!(st.is_tombstoned(victim));
        let t = assemble_trace_sharded(&st, ids[0], &AssembleConfig::default());
        assert!(t.spans.iter().all(|s| s.span.span_id != victim));
        // A tombstoned start yields an empty trace.
        assert!(assemble_trace_sharded(&st, victim, &AssembleConfig::default()).is_empty());
        // Eviction keeps the assembled trace identical.
        let before = assemble_trace_sharded(&st, ids[0], &AssembleConfig::default());
        assert!(st.evict_tombstoned() > 0);
        let after = assemble_trace_sharded(&st, ids[0], &AssembleConfig::default());
        assert_eq!(edges(&before), edges(&after));
    }

    #[test]
    fn query_merges_shards_in_time_order_and_caps() {
        let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        st.insert_batch(corpus());
        let q = SpanQuery::window(TimeNs(0), TimeNs(1_000));
        let got = st.query(&q);
        let times: Vec<u64> = got.iter().map(|s| s.req_time.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "merged in time order");
        assert_eq!(got.len(), 6, "noise span at 10µs excluded by window");
        let capped = st.query(&SpanQuery {
            limit: 2,
            ..SpanQuery::window(TimeNs(0), TimeNs(1_000))
        });
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[0].req_time, TimeNs(0));
    }

    #[test]
    fn parallel_phase1_matches_sequential_assembly() {
        for shards in [1, 2, 4, 16] {
            let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(shards));
            let ids = st.insert_batch(corpus());
            st.tombstone(ids[3]);
            for &start in &ids {
                let seq = assemble_trace_sharded(&st, start, &AssembleConfig::default());
                let par = assemble_trace_sharded_parallel(&st, start, &AssembleConfig::default());
                assert_eq!(
                    edges(&seq),
                    edges(&par),
                    "{shards} shards, start {start:?}: parallel Phase 1 diverged"
                );
            }
        }
    }

    #[test]
    fn full_preferred_shard_clamps_to_least_loaded_without_panicking() {
        let mut policy = ShardPolicy::with_shards(2);
        policy.max_shard_rows = 2;
        let mut st = ShardedSpanStore::new(policy);
        // Six spans on one flow: all prefer the same shard; the cap is 2.
        for i in 0..6u32 {
            let mut s = Span::synthetic(TapSide::ServerProcess, u64::from(i) * 100, 1_000);
            s.tcp_seq_req = Some(100 + i);
            let id = st.insert(s);
            assert_eq!(id, SpanId(u64::from(i) + 1), "ids stay sequential");
        }
        assert_eq!(st.len(), 6, "no span refused or lost");
        assert!(
            st.routing_clamped() >= 2,
            "overflowing the preferred shard is counted: {}",
            st.routing_clamped()
        );
        let sizes = st.shard_sizes();
        assert!(
            sizes.iter().all(|&s| s >= 2),
            "clamp rebalances to the least-loaded shard: {sizes:?}"
        );
        // Every span remains reachable through the routing table.
        for id in 1..=6u64 {
            let span = st
                .get(SpanId(id))
                .unwrap_or_else(|| panic!("clamped span {id} lost from routing table"));
            assert_eq!(span.span_id, SpanId(id));
        }
    }

    #[test]
    fn bucket_generations_advance_on_mutation() {
        let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let mut s = Span::synthetic(TapSide::ServerProcess, 100, 500);
        s.tcp_seq_req = Some(1);
        let bucket = st.bucket_of(TimeNs(100));
        assert_eq!(st.bucket_gen(bucket), 0);
        let id = st.insert(s);
        let g1 = st.bucket_gen(bucket);
        assert!(g1 > 0);
        st.tombstone(id);
        assert!(st.bucket_gen(bucket) > g1, "tombstone bumps the bucket");
    }

    #[test]
    fn threshold_crossing_triggers_shard_compaction() {
        let mut policy = ShardPolicy::with_shards(1);
        policy.evict_threshold = 3;
        let mut st = ShardedSpanStore::new(policy);
        let mut ids = Vec::new();
        for i in 0..4u32 {
            let mut s = Span::synthetic(TapSide::ServerProcess, u64::from(i) * 100, 1_000);
            s.tcp_seq_req = Some(i);
            ids.push(st.insert(s));
        }
        st.tombstone(ids[0]);
        st.tombstone(ids[1]);
        assert_eq!(st.pending_evictions(), 2, "below threshold: deferred");
        st.tombstone(ids[2]);
        assert_eq!(st.pending_evictions(), 0, "threshold crossed: compacted");
    }
}
