//! The resource-tag dictionary (paper §3.4, Figure 8).
//!
//! Built once from the orchestrator/cloud inventory; every tag family gets
//! its own integer id space (an interner). Phase 2 of smart-encoding looks
//! up a span's agent-written IP and fills in the remaining resource ints;
//! phase 3 joins free-form labels only when a query returns.

use df_types::tags::{ResourceInventory, ResourceTags};
use std::collections::HashMap;

/// A string interner: one per tag family.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// Intern a name, returning its stable id (ids start at 1; 0 = unset).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = self.names.len() as u32 + 1;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Resolve an id back to the name.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names
            .get(id.checked_sub(1)? as usize)
            .map(String::as_str)
    }

    /// Look up an existing name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
struct IpEntry {
    pod_id: Option<u32>,
    namespace_id: Option<u32>,
    workload_id: Option<u32>,
    service_id: Option<u32>,
    k8s_node_id: Option<u32>,
    host_id: Option<u32>,
    region_id: Option<u32>,
    az_id: Option<u32>,
    vpc_id: Option<u32>,
    subnet_id: Option<u32>,
    cluster_id: Option<u32>,
    labels: Vec<(String, String)>,
}

/// The dictionary.
#[derive(Debug, Default)]
pub struct TagDictionary {
    /// Per-family interners (public for display/query tooling).
    pub regions: Interner,
    /// Availability zones.
    pub azs: Interner,
    /// VPCs.
    pub vpcs: Interner,
    /// Subnets.
    pub subnets: Interner,
    /// Hosts.
    pub hosts: Interner,
    /// Clusters.
    pub clusters: Interner,
    /// K8s nodes.
    pub k8s_nodes: Interner,
    /// Namespaces.
    pub namespaces: Interner,
    /// Workloads.
    pub workloads: Interner,
    /// Services.
    pub services: Interner,
    /// Pods.
    pub pods: Interner,
    by_ip: HashMap<u32, IpEntry>,
}

impl TagDictionary {
    /// Build from the inventory (Fig. 8 ①–③).
    pub fn build(inventory: &ResourceInventory) -> Self {
        let mut d = TagDictionary::default();
        // Nodes first: pods reference their node's locality.
        let mut node_locality: HashMap<String, IpEntry> = HashMap::new();
        for n in &inventory.nodes {
            let entry = IpEntry {
                k8s_node_id: Some(d.k8s_nodes.intern(&n.name)),
                host_id: Some(d.hosts.intern(&n.name)),
                region_id: Some(d.regions.intern(&n.region)),
                az_id: Some(d.azs.intern(&n.az)),
                vpc_id: Some(d.vpcs.intern(&n.vpc)),
                subnet_id: Some(d.subnets.intern(&n.subnet)),
                cluster_id: Some(d.clusters.intern(&n.cluster)),
                ..Default::default()
            };
            node_locality.insert(n.name.clone(), entry.clone());
            d.by_ip.insert(n.ip, entry);
        }
        for p in &inventory.pods {
            let mut entry = node_locality.get(&p.node).cloned().unwrap_or_default();
            entry.pod_id = Some(d.pods.intern(&p.name));
            entry.namespace_id = Some(d.namespaces.intern(&p.namespace));
            entry.workload_id = Some(d.workloads.intern(&p.workload));
            entry.service_id = Some(d.services.intern(&p.service));
            entry.labels = p.labels.clone();
            d.by_ip.insert(p.ip, entry);
        }
        d
    }

    /// Phase 2 (Fig. 8 ⑦): resolve resource ints from the agent-written IP.
    /// Unknown IPs are left untouched (bare-metal externals).
    pub fn enrich(&self, tags: &mut ResourceTags) {
        let Some(ip) = tags.ip else { return };
        let Some(e) = self.by_ip.get(&ip) else { return };
        tags.pod_id = e.pod_id;
        tags.namespace_id = e.namespace_id;
        tags.workload_id = e.workload_id;
        tags.service_id = e.service_id;
        tags.k8s_node_id = e.k8s_node_id;
        tags.host_id = e.host_id;
        tags.region_id = e.region_id;
        tags.az_id = e.az_id;
        tags.subnet_id = e.subnet_id;
        tags.cluster_id = e.cluster_id;
        if tags.vpc_id.is_none() {
            tags.vpc_id = e.vpc_id;
        }
    }

    /// Phase 3 (Fig. 8 ⑧): self-defined labels for an IP, joined only at
    /// query time.
    pub fn labels_for_ip(&self, ip: u32) -> &[(String, String)] {
        self.by_ip
            .get(&ip)
            .map(|e| e.labels.as_slice())
            .unwrap_or(&[])
    }

    /// Pod name for a smart-encoded pod id (display).
    pub fn pod_name(&self, pod_id: u32) -> Option<&str> {
        self.pods.name(pod_id)
    }

    /// Pod id for a name (query filters like "only pod X").
    pub fn pod_id(&self, name: &str) -> Option<u32> {
        self.pods.get(name)
    }

    /// IPs known to the dictionary.
    pub fn known_ips(&self) -> usize {
        self.by_ip.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::tags::{NodeResource, PodResource};

    fn inventory() -> ResourceInventory {
        ResourceInventory {
            pods: vec![
                PodResource {
                    name: "productpage-v1-abc".into(),
                    ip: 0x0a010001,
                    node: "node-1".into(),
                    namespace: "default".into(),
                    workload: "productpage-v1".into(),
                    service: "productpage".into(),
                    labels: vec![("version".into(), "v1".into())],
                },
                PodResource {
                    name: "reviews-v2-def".into(),
                    ip: 0x0a010002,
                    node: "node-2".into(),
                    namespace: "default".into(),
                    workload: "reviews-v2".into(),
                    service: "reviews".into(),
                    labels: vec![],
                },
            ],
            nodes: vec![
                NodeResource {
                    name: "node-1".into(),
                    ip: 0xc0a80001,
                    region: "cn-north".into(),
                    az: "az-1".into(),
                    vpc: "vpc-prod".into(),
                    subnet: "subnet-a".into(),
                    cluster: "k8s-prod".into(),
                },
                NodeResource {
                    name: "node-2".into(),
                    ip: 0xc0a80002,
                    region: "cn-north".into(),
                    az: "az-2".into(),
                    vpc: "vpc-prod".into(),
                    subnet: "subnet-b".into(),
                    cluster: "k8s-prod".into(),
                },
            ],
        }
    }

    #[test]
    fn interner_is_stable_and_reversible() {
        let mut i = Interner::default();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.name(a), Some("alpha"));
        assert_eq!(i.get("beta"), Some(b));
        assert_eq!(i.name(0), None, "0 means unset");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn pod_ip_enrichment_fills_all_families() {
        let d = TagDictionary::build(&inventory());
        let mut tags = ResourceTags {
            vpc_id: Some(7), // agent-written, preserved
            ip: Some(0x0a010001),
            ..Default::default()
        };
        d.enrich(&mut tags);
        assert!(tags.is_enriched());
        assert_eq!(d.pod_name(tags.pod_id.unwrap()), Some("productpage-v1-abc"));
        assert_eq!(
            d.namespaces.name(tags.namespace_id.unwrap()),
            Some("default")
        );
        assert_eq!(
            d.services.name(tags.service_id.unwrap()),
            Some("productpage")
        );
        // Locality inherited from the hosting node.
        assert_eq!(d.regions.name(tags.region_id.unwrap()), Some("cn-north"));
        assert_eq!(d.azs.name(tags.az_id.unwrap()), Some("az-1"));
        assert_eq!(tags.vpc_id, Some(7), "agent-written vpc kept");
    }

    #[test]
    fn node_ip_enrichment_has_no_pod_tags() {
        let d = TagDictionary::build(&inventory());
        let mut tags = ResourceTags {
            ip: Some(0xc0a80002),
            ..Default::default()
        };
        d.enrich(&mut tags);
        assert!(tags.pod_id.is_none());
        assert_eq!(d.azs.name(tags.az_id.unwrap()), Some("az-2"));
        assert_eq!(d.vpcs.name(tags.vpc_id.unwrap()), Some("vpc-prod"));
    }

    #[test]
    fn unknown_ip_is_left_untouched() {
        let d = TagDictionary::build(&inventory());
        let mut tags = ResourceTags {
            ip: Some(0x08080808),
            ..Default::default()
        };
        d.enrich(&mut tags);
        assert!(!tags.is_enriched());
    }

    #[test]
    fn labels_join_at_query_time_only() {
        let d = TagDictionary::build(&inventory());
        assert_eq!(
            d.labels_for_ip(0x0a010001),
            &[("version".to_string(), "v1".to_string())]
        );
        assert!(d.labels_for_ip(0x0a010002).is_empty());
        assert!(d.labels_for_ip(0x01020304).is_empty());
    }

    #[test]
    fn shared_names_share_dictionary_ids() {
        let d = TagDictionary::build(&inventory());
        // Both pods are in namespace "default": one interned id.
        assert_eq!(d.namespaces.len(), 1);
        assert_eq!(d.clusters.len(), 1);
        assert_eq!(d.regions.len(), 1);
        assert_eq!(d.azs.len(), 2);
        assert_eq!(d.pods.len(), 2);
        assert_eq!(d.pod_id("reviews-v2-def"), Some(2));
    }
}
