//! # df-server — the DeepFlow Server
//!
//! Cluster-level process (paper Fig. 4): "responsible for storing spans in
//! the database and assembling them into traces when users query". Five
//! pieces:
//!
//! * [`dictionary`] — the resource-tag dictionary built from the
//!   orchestrator inventory (Fig. 8 ①–③). Implements smart-encoding
//!   **phase 2**: resolving each span's agent-written `(vpc, ip)` ints into
//!   the full integer resource-tag block (step ⑦), and **phase 3**: joining
//!   self-defined string labels at query time (step ⑧);
//! * [`assemble`] — **Algorithm 1**: iterative span search over the store's
//!   implicit-context indexes, then parent assignment under the 16 rules,
//!   then time/parent sorting;
//! * [`sharded`] — the span corpus partitioned into
//!   [`SpanStore`](df_storage::SpanStore) shards per
//!   [`ShardPolicy`](df_storage::ShardPolicy), with
//!   [`assemble_trace_sharded`] running Algorithm 1's frontier search
//!   *across* the shards;
//! * [`trace_cache`] — incremental assembled-trace cache memoized by start
//!   span, invalidated through the sharded store's time-bucket
//!   generations;
//! * [`concurrent`] — the shard boundary taken across threads: one ingest
//!   worker per shard behind bounded queues, scoped-thread fan-out for
//!   Algorithm 1's cross-shard probes, and a bounded-staleness mode for
//!   the trace cache under ingest load;
//! * [`server`] — the facade: ingest (phase-2 enrichment + routed store
//!   insert), span-list queries, cached trace queries, coherent stats.
//!
//! ## Assembling a trace (sharded, end-to-end)
//!
//! ```
//! use df_server::{assemble_trace_sharded, AssembleConfig, ShardedSpanStore};
//! use df_storage::ShardPolicy;
//! use df_types::span::TapSide;
//! use df_types::Span;
//!
//! let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
//! // One exchange seen at two capture points: linked by TCP sequence.
//! let mut client = Span::synthetic(TapSide::ClientProcess, 1_000, 9_000);
//! client.tcp_seq_req = Some(42);
//! let mut server = Span::synthetic(TapSide::ServerProcess, 2_000, 8_000);
//! server.tcp_seq_req = Some(42);
//! let ids = store.insert_batch(vec![client, server]);
//!
//! let trace = assemble_trace_sharded(&store, ids[1], &AssembleConfig::default());
//! assert_eq!(trace.len(), 2);
//! // The client-side capture parents the server-side one (rules 1–8).
//! assert_eq!(trace.spans[0].span.span_id, ids[0]);
//! assert_eq!(trace.spans[1].parent, Some(ids[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod concurrent;
pub mod dictionary;
pub mod server;
pub mod sharded;
pub mod trace_cache;

pub use assemble::{assemble_members, assemble_trace, AssembleConfig};
pub use concurrent::{ConcurrentConfig, ConcurrentShardedStore, WireIngestError, WorkerPanic};
pub use dictionary::TagDictionary;
pub use server::{Server, ServerStats};
pub use sharded::{
    assemble_trace_sharded, assemble_trace_sharded_parallel, phase1_members, probe_shard,
    ExpandedKeys, ShardedSpanStore,
};
pub use trace_cache::{BucketGens, CacheOutcome, TraceCache};
