//! # df-server — the DeepFlow Server
//!
//! Cluster-level process (paper Fig. 4): "responsible for storing spans in
//! the database and assembling them into traces when users query". Three
//! pieces:
//!
//! * [`dictionary`] — the resource-tag dictionary built from the
//!   orchestrator inventory (Fig. 8 ①–③). Implements smart-encoding
//!   **phase 2**: resolving each span's agent-written `(vpc, ip)` ints into
//!   the full integer resource-tag block (step ⑦), and **phase 3**: joining
//!   self-defined string labels at query time (step ⑧);
//! * [`assemble`] — **Algorithm 1**: iterative span search over the store's
//!   implicit-context indexes, then parent assignment under the 16 rules,
//!   then time/parent sorting;
//! * [`server`] — the facade: ingest (phase-2 enrichment + store insert),
//!   span-list queries, trace queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod dictionary;
pub mod server;

pub use assemble::{assemble_trace, AssembleConfig};
pub use dictionary::TagDictionary;
pub use server::{Server, ServerStats};
