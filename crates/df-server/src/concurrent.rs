//! [`ConcurrentShardedStore`] — the shard boundary taken across threads.
//!
//! PR 2 partitioned the corpus into [`SpanStore`] shards behind one
//! `&mut self`; every ingest and every assembly still serialised on the
//! owning thread. This module makes each shard an independently locked
//! unit owned by a **per-shard ingest worker thread**, so ingest
//! parallelises across shards while queries run concurrently against a
//! consistent snapshot — the ROADMAP's "take the shard boundary across
//! threads" step, mirroring how the paper's collector keeps absorbing
//! agent traffic while Algorithm 1 assembles on demand (§5).
//!
//! ## Topology
//!
//! ```text
//!  producers (any thread, &self)        per-shard workers (owned threads)
//!  ───────────────────────────          ───────────────────────────────
//!  insert_batch ─┬─ route/ids ──► bounded MPSC ──► worker 0 ──► SpanStore 0 (RwLock)
//!                ├───────────────► bounded MPSC ──► worker 1 ──► SpanStore 1 (RwLock)
//!                └───────────────► …
//! ```
//!
//! * **Routing front-end** (`route` mutex): assigns global sequential span
//!   ids and `(shard, row)` locations — identical to what the
//!   single-threaded [`ShardedSpanStore`](crate::sharded::ShardedSpanStore)
//!   would assign for the same call order, which is what makes the
//!   differential determinism tests possible. Held only for cheap work;
//!   channel sends happen outside it.
//! * **Bounded channels**: each shard's queue holds at most
//!   [`ConcurrentConfig::queue_depth`] messages; a full queue blocks the
//!   producer (backpressure) instead of growing without bound.
//! * **Workers**: each worker owns the `&mut` side of its shard behind an
//!   `RwLock`, applying batches with the amortised
//!   [`SpanStore::insert_routed_batch`]. Because sends happen outside the
//!   routing lock, two producers' batches can arrive out of row order; the
//!   worker stashes early batches and applies strictly in row order, so
//!   shard contents are independent of arrival races.
//! * **Flush barrier**: [`ConcurrentShardedStore::flush`] returns only
//!   once every message enqueued before it has been applied — tests and
//!   benches get read-your-writes visibility on demand.
//!
//! ## Generation-bump ordering (the staleness-correctness invariant)
//!
//! Bucket generations drive trace-cache invalidation. A worker bumps a
//! bucket's generation **while still holding its shard's write lock**, and
//! an assembling reader holds *all* shard read locks from Phase 1 through
//! reading the generations it records in the cache entry. Rows-visible and
//! generation-bumped are therefore atomic from any reader's point of view:
//! no interleaving exists in which a cached trace misses an applied span
//! yet records its post-apply generation (which would never invalidate —
//! a permanently stale entry). The exhaustive two-thread schedule
//! enumeration in this module's tests checks exactly this, including that
//! both fine-grained orderings *would* exhibit the bug without the lock
//! discipline.
//!
//! ## Bounded staleness under ingest load
//!
//! [`ConcurrentShardedStore::query_trace`] measures ingest pressure as the
//! spans enqueued-but-unapplied across all shards. Above
//! [`ConcurrentConfig::stale_pending_threshold`], a cached trace whose
//! bucket generations drifted by at most
//! [`ConcurrentConfig::stale_window`] is served as-is
//! ([`CacheOutcome::Stale`]) instead of re-assembling synchronously behind
//! the queue — the paper's dashboards prefer a milliseconds-old trace over
//! a trace query that stalls the collector. Served-stale queries are
//! counted separately ([`ServerStats::cache_stale_hits`]).

use crate::assemble::AssembleConfig;
use crate::server::ServerStats;
use crate::sharded::{finish_assembly, phase1_members, Bucket, Loc, PARALLEL_MIN_KEYS};
use crate::trace_cache::{BucketGens, CacheOutcome, TraceCache};
use df_check::sync::atomic::{AtomicUsize, Ordering};
use df_check::sync::mpsc::{sync_channel, Receiver, SyncSender};
use df_check::sync::{Arc, Condvar, Mutex, Once, RwLock};
use df_storage::{BufferPool, ShardPolicy, SpanQuery, SpanStore, SpillStats, TierConfig};
use df_types::trace::Trace;
use df_types::wire::{self, WireDecodeError};
use df_types::{Span, SpanId, TimeNs};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::thread;

/// Tunables of the concurrent store (queue depths, staleness policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentConfig {
    /// Messages a shard's ingest queue holds before `insert_batch` blocks
    /// on that shard (backpressure).
    pub queue_depth: usize,
    /// Pending (enqueued-but-unapplied) span count above which
    /// [`ConcurrentShardedStore::query_trace`] switches the trace cache to
    /// bounded-staleness mode.
    pub stale_pending_threshold: usize,
    /// Maximum bucket-generation drift a cached trace may have and still
    /// be served under ingest load (see the module docs).
    pub stale_window: u64,
    /// Fan Phase 1's per-shard probes out across scoped threads when a
    /// frontier round's key batch is large enough.
    pub parallel_phase1: bool,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            queue_depth: 64,
            stale_pending_threshold: 4096,
            stale_window: 8,
            parallel_phase1: true,
        }
    }
}

/// A row-addressed mutation routed through a shard's ingest queue so it
/// applies in order with the inserts it races against.
#[derive(Debug)]
enum RowOp {
    /// Hide the row (re-aggregation consumed it).
    Tombstone,
    /// Merge a late response into the row's Incomplete span.
    Complete(Box<Span>),
}

/// One message on a shard's ingest queue.
#[derive(Debug)]
enum ShardMsg {
    /// A routed batch whose rows start at `start_row` (contiguous).
    Batch { start_row: u32, spans: Vec<Span> },
    /// A row-addressed mutation (applies once the row exists).
    Op { row: u32, op: RowOp },
    /// Flush barrier: acknowledged once everything before it is applied —
    /// or failed, if the worker dies with the token still queued.
    Flush(FlushToken),
    /// Test hook ([`ConcurrentShardedStore::inject_worker_panic`]): the
    /// worker panics on receipt, simulating a crashed ingest op.
    Panic,
}

/// A shard worker crashed: the panic message, and which shard lost it.
/// Returned by [`ConcurrentShardedStore::try_flush`] /
/// [`ConcurrentShardedStore::try_insert_batch`] once the worker is gone
/// (spans already queued to that shard at crash time are lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the shard whose ingest worker died.
    pub shard: usize,
    /// The worker's panic message (best-effort; `"worker disconnected"`
    /// if the worker vanished without recording one).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} ingest worker panicked: {}",
            self.shard, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Error from the wire ingest path
/// ([`ConcurrentShardedStore::ingest_wire`]): either the DFW1 batch was
/// malformed (rejected before any routing state changed — no ids were
/// assigned) or a shard worker had crashed.
#[derive(Debug)]
pub enum WireIngestError {
    /// The batch bytes failed DFW1 decoding; the store is untouched.
    Decode(WireDecodeError),
    /// The batch decoded but a shard ingest worker was dead; ids were
    /// assigned and healthy shards received their sub-batches.
    Worker(WorkerPanic),
}

impl std::fmt::Display for WireIngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireIngestError::Decode(e) => write!(f, "wire batch rejected: {e}"),
            WireIngestError::Worker(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireIngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireIngestError::Decode(e) => Some(e),
            WireIngestError::Worker(e) => Some(e),
        }
    }
}

/// Countdown the flusher waits on; each worker arrives once its queue has
/// fully drained past the barrier message. A dead worker's parties arrive
/// *failed* (via [`FlushToken`]'s drop guard or the worker's unwind path),
/// so [`FlushGate::wait`] returns an error instead of hanging forever.
#[derive(Debug)]
struct FlushGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug)]
struct GateState {
    remaining: usize,
    failed: Option<WorkerPanic>,
}

impl FlushGate {
    fn new(parties: usize) -> Arc<Self> {
        Arc::new(FlushGate {
            state: Mutex::new(GateState {
                remaining: parties,
                failed: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn arrive(&self) {
        let mut s = self.state.lock().expect("flush gate poisoned");
        s.remaining = s.remaining.saturating_sub(1);
        if s.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn arrive_failed(&self, shard: usize, message: &str) {
        let mut s = self.state.lock().expect("flush gate poisoned");
        if s.failed.is_none() {
            s.failed = Some(WorkerPanic {
                shard,
                message: message.to_string(),
            });
        }
        s.remaining = s.remaining.saturating_sub(1);
        if s.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<(), WorkerPanic> {
        let mut s = self.state.lock().expect("flush gate poisoned");
        while s.remaining > 0 {
            s = self.cv.wait(s).expect("flush gate poisoned");
        }
        match &s.failed {
            None => Ok(()),
            Some(e) => Err(e.clone()),
        }
    }
}

/// Flush-barrier payload with a drop guard: if the message is dropped
/// still armed — the send failed, or the dead worker's receiver discarded
/// its queue — the gate is arrived *failed*, waking the flusher with an
/// error. The worker disarms it by [`FlushToken::accept`]ing the gate.
#[derive(Debug)]
struct FlushToken {
    shard: usize,
    gate: Option<Arc<FlushGate>>,
}

impl FlushToken {
    fn accept(mut self) -> Arc<FlushGate> {
        self.gate.take().expect("flush token accepted once")
    }
}

impl Drop for FlushToken {
    fn drop(&mut self) {
        if let Some(gate) = self.gate.take() {
            gate.arrive_failed(
                self.shard,
                "shard worker died before acknowledging the flush barrier",
            );
        }
    }
}

/// One shard: the store behind its lock plus the pending-mutation gauge.
#[derive(Debug)]
struct ShardSlot {
    store: RwLock<SpanStore>,
    /// Spans and row ops enqueued to this shard but not yet applied.
    pending: AtomicUsize,
    /// The worker's panic message, recorded before its receiver drops so
    /// that producers observing the disconnect can report the cause.
    failed: Mutex<Option<String>>,
}

/// The routing front-end state: id assignment and id → location mapping.
#[derive(Debug, Default)]
struct RouteState {
    /// Global id − 1 → location (ids are assigned sequentially here).
    route: Vec<Loc>,
    /// Next row per shard.
    shard_rows: Vec<u32>,
    /// Spans routed away from a full preferred shard (soft-cap clamp).
    clamped: u64,
}

impl RouteState {
    fn loc(&self, id: SpanId) -> Option<Loc> {
        let idx = id.raw().checked_sub(1)? as usize;
        self.route.get(idx).copied()
    }

    /// The preferred shard unless it is at the policy's row cap — then the
    /// least-loaded shard, with the clamp counted (never panics).
    fn pick_shard(&mut self, preferred: usize, policy: &ShardPolicy) -> u16 {
        if (self.shard_rows[preferred] as usize) < policy.max_shard_rows {
            return preferred as u16;
        }
        self.clamped += 1;
        self.shard_rows
            .iter()
            .enumerate()
            .min_by_key(|(_, &rows)| rows)
            .map(|(i, _)| i as u16)
            .unwrap_or(preferred as u16)
    }
}

/// The time-bucket generation table, shared between workers (bumping) and
/// readers (validating cache entries, windowing queries).
#[derive(Debug, Default)]
struct GenTable {
    buckets: HashMap<u64, Bucket>,
}

impl GenTable {
    fn touch(&mut self, bucket: u64, shard: usize) {
        let b = self.buckets.entry(bucket).or_default();
        b.gen += 1;
        b.shards |= 1u64 << shard;
    }

    fn gen(&self, bucket: u64) -> u64 {
        self.buckets.get(&bucket).map(|b| b.gen).unwrap_or(0)
    }

    /// Bitmask of shards holding applied spans in `[from, to)`; all-ones
    /// when the window is unbounded.
    fn window_mask(&self, policy: &ShardPolicy, from: Option<TimeNs>, to: Option<TimeNs>) -> u64 {
        let (Some(from), Some(to)) = (from, to) else {
            return u64::MAX;
        };
        if to.as_nanos() == 0 {
            return 0;
        }
        let lo = policy.bucket_of(from);
        let hi = policy.bucket_of(TimeNs(to.as_nanos() - 1));
        self.buckets
            .iter()
            .filter(|(b, _)| (lo..=hi).contains(*b))
            .fold(0u64, |m, (_, b)| m | b.shards)
    }
}

/// [`BucketGens`] view over the concurrent store's locked generation
/// table, so the [`TraceCache`] stays store-agnostic.
struct GenView<'a> {
    gens: &'a Mutex<GenTable>,
    policy: &'a ShardPolicy,
}

impl BucketGens for GenView<'_> {
    fn bucket_gen(&self, bucket: u64) -> u64 {
        self.gens.lock().expect("gen table poisoned").gen(bucket)
    }
    fn bucket_of(&self, t: TimeNs) -> u64 {
        self.policy.bucket_of(t)
    }
}

/// Per-worker reorder state: batches and ops that arrived before the rows
/// they target (sends happen outside the routing lock, so two producers'
/// messages can arrive out of row order).
#[derive(Debug, Default)]
struct WorkerState {
    /// Early batches, keyed by their start row.
    batches: BTreeMap<u32, Vec<Span>>,
    /// Early row ops, keyed by target row (arrival order kept per row).
    ops: BTreeMap<u32, Vec<RowOp>>,
    /// Flush gates deferred until the reorder buffers drain.
    flushes: Vec<Arc<FlushGate>>,
}

/// A span corpus partitioned across per-worker-owned [`SpanStore`] shards,
/// ingesting through bounded per-shard queues. See the module docs for the
/// channel topology, the flush barrier and the staleness contract.
///
/// # Examples
///
/// ```
/// use df_server::concurrent::ConcurrentShardedStore;
/// use df_storage::ShardPolicy;
/// use df_types::span::TapSide;
/// use df_types::Span;
///
/// let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
/// let mut client = Span::synthetic(TapSide::ClientProcess, 100, 900);
/// client.tcp_seq_req = Some(7);
/// let mut server = Span::synthetic(TapSide::ServerProcess, 200, 800);
/// server.tcp_seq_req = Some(7);
/// let ids = store.insert_batch(vec![client, server]);
/// store.flush(); // barrier: both spans applied and visible
///
/// let trace = store.query_trace(ids[0]);
/// assert_eq!(trace.len(), 2);
/// assert!(trace.is_well_formed());
/// ```
#[derive(Debug)]
pub struct ConcurrentShardedStore {
    policy: ShardPolicy,
    cfg: ConcurrentConfig,
    assemble_cfg: AssembleConfig,
    slots: Vec<Arc<ShardSlot>>,
    gens: Arc<Mutex<GenTable>>,
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<thread::JoinHandle<()>>,
    route: Mutex<RouteState>,
    cache: Mutex<TraceCache>,
    stats: Mutex<ServerStats>,
    /// Hot/cold tiering: the shared buffer pool and spill directory, if
    /// enabled via [`ConcurrentShardedStore::with_tiering`].
    tier: Option<(Arc<BufferPool>, TierConfig)>,
    /// One-shot spill-directory setup, run by whichever spill call gets
    /// there first (spills may race from maintenance threads).
    tier_init: Once,
}

impl ConcurrentShardedStore {
    /// Store under `policy` with default [`ConcurrentConfig`], spawning one
    /// ingest worker per shard. Shard counts above 64 are clamped exactly
    /// as in the single-threaded store.
    pub fn new(policy: ShardPolicy) -> Self {
        Self::with_config(policy, ConcurrentConfig::default())
    }

    /// Store with explicit concurrency tunables.
    pub fn with_config(mut policy: ShardPolicy, cfg: ConcurrentConfig) -> Self {
        policy.shards = policy.shards.clamp(1, 64);
        let gens = Arc::new(Mutex::new(GenTable::default()));
        let mut slots = Vec::with_capacity(policy.shards);
        let mut senders = Vec::with_capacity(policy.shards);
        let mut workers = Vec::with_capacity(policy.shards);
        for si in 0..policy.shards {
            let slot = Arc::new(ShardSlot {
                store: RwLock::new(SpanStore::new()),
                pending: AtomicUsize::new(0),
                failed: Mutex::new(None),
            });
            let (tx, rx) = sync_channel::<ShardMsg>(cfg.queue_depth.max(1));
            let worker_slot = Arc::clone(&slot);
            let worker_gens = Arc::clone(&gens);
            let handle = thread::Builder::new()
                .name(format!("df-shard-{si}"))
                .spawn(move || worker_loop(si, worker_slot, worker_gens, policy, rx))
                .expect("spawn shard worker");
            slots.push(slot);
            senders.push(tx);
            workers.push(handle);
        }
        ConcurrentShardedStore {
            route: Mutex::new(RouteState {
                route: Vec::new(),
                shard_rows: vec![0; policy.shards],
                clamped: 0,
            }),
            policy,
            cfg,
            assemble_cfg: AssembleConfig::default(),
            slots,
            gens,
            senders,
            workers,
            cache: Mutex::new(TraceCache::new()),
            stats: Mutex::new(ServerStats::default()),
            tier: None,
            tier_init: Once::new(),
        }
    }

    /// Store with hot/cold tiering enabled: one [`BufferPool`] (one frame
    /// budget, one background disk scheduler) shared by every shard.
    pub fn with_tiering(policy: ShardPolicy, cfg: ConcurrentConfig, tier: TierConfig) -> Self {
        let mut store = Self::with_config(policy, cfg);
        let pool = Arc::new(BufferPool::new(tier.pool));
        for slot in &store.slots {
            slot.store
                .write()
                .expect("shard lock poisoned")
                .set_cold_reader(Arc::clone(&pool));
        }
        store.tier = Some((pool, tier));
        store
    }

    /// The shared buffer pool, if tiering is enabled.
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.tier.as_ref().map(|(pool, _)| pool)
    }

    /// Spill every applied, completed span older than `watermark` to the
    /// cold tier (one segment per shard × time bucket), taking each
    /// shard's write lock in turn — exactly the locking discipline
    /// [`ConcurrentShardedStore::evict_tombstoned`] uses. Queued-but-
    /// unapplied spans are untouched (they spill on a later pass once
    /// applied). Spill is content-neutral: **no bucket generation is
    /// bumped**, so cached traces remain valid — the tiering tests assert
    /// a cached trace survives a spill of its own buckets.
    pub fn spill_before(&self, watermark: TimeNs) -> io::Result<SpillStats> {
        let Some((pool, tier)) = &self.tier else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "tiering not enabled on this store",
            ));
        };
        // First spill through this store creates the spill directory; the
        // `Once` makes racing spill calls agree on exactly one creator. A
        // failure here is not cached — the disk scheduler re-creates
        // parent directories per write, so a transient error surfaces
        // again (with the write's context) instead of wedging the store.
        let mut init_err = None;
        self.tier_init.call_once(|| {
            if let Err(e) = df_storage::persist::ensure_dir(&tier.dir) {
                init_err = Some(e);
            }
        });
        if let Some(e) = init_err {
            return Err(e);
        }
        let mut total = SpillStats::default();
        for (si, slot) in self.slots.iter().enumerate() {
            total.merge(
                slot.store
                    .write()
                    .expect("shard lock poisoned")
                    .spill_before(&self.policy, watermark, pool, &tier.dir, si as u16)?,
            );
        }
        Ok(total)
    }

    /// Rows currently resident (hot) vs spilled (cold), across shards.
    pub fn tier_occupancy(&self) -> (usize, usize) {
        self.slots.iter().fold((0, 0), |(h, c), slot| {
            let store = slot.store.read().expect("shard lock poisoned");
            (h + store.hot_rows(), c + store.cold_rows())
        })
    }

    /// The routing policy this store was built with.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// Override assembly tunables (construction-time; the store is shared
    /// immutably afterwards).
    pub fn set_assemble_config(&mut self, cfg: AssembleConfig) {
        self.assemble_cfg = cfg;
    }

    /// Number of shards (== ingest workers).
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Spans routed (ids assigned), including spans still in queues.
    pub fn len(&self) -> usize {
        self.route.lock().expect("route lock poisoned").route.len()
    }

    /// Whether no span has been routed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans and row ops enqueued but not yet applied — the ingest-load
    /// gauge the bounded-staleness mode keys off.
    pub fn pending(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.pending.load(Ordering::Acquire))
            .sum()
    }

    /// Applied spans per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.slots
            .iter()
            .map(|s| s.store.read().expect("shard lock poisoned").len())
            .collect()
    }

    /// Spans routed away from their preferred shard because it was at
    /// [`ShardPolicy::max_shard_rows`] (soft-cap clamp; nothing is lost).
    pub fn routing_clamped(&self) -> u64 {
        self.route.lock().expect("route lock poisoned").clamped
    }

    /// A coherent snapshot of the counters: every snapshot satisfies
    /// `trace_queries == cache_hits + cache_stale_hits + cache_misses +
    /// cache_invalidations` (all counters of one query move under one lock
    /// acquisition).
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock().expect("stats lock poisoned")
    }

    /// Insert one span. Equivalent to a one-span [`Self::insert_batch`]
    /// (the unbatched ingest path the benches compare against).
    pub fn insert(&self, span: Span) -> SpanId {
        self.insert_batch(vec![span])[0]
    }

    /// Insert a batch (what an agent ships per flush): ids and `(shard,
    /// row)` locations are assigned under the routing lock — globally
    /// sequential, identical to the single-threaded store for the same
    /// call order — then each shard's sub-batch is enqueued to its worker.
    /// Blocks only when a target shard's queue is full (backpressure).
    /// Spans become query-visible when their worker applies them; call
    /// [`Self::flush`] for a visibility barrier.
    pub fn insert_batch(&self, spans: Vec<Span>) -> Vec<SpanId> {
        self.try_insert_batch(spans)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::insert_batch`] that reports a crashed shard worker as an
    /// error instead of panicking. Sub-batches bound for healthy shards
    /// are still enqueued; spans bound for the dead shard are dropped
    /// (their ids stay assigned but will never become visible).
    pub fn try_insert_batch(&self, spans: Vec<Span>) -> Result<Vec<SpanId>, WorkerPanic> {
        if spans.is_empty() {
            return Ok(Vec::new());
        }
        let mut ids = Vec::with_capacity(spans.len());
        let mut per_shard: Vec<Option<(u32, Vec<Span>)>> = vec![None; self.slots.len()];
        {
            let mut rt = self.route.lock().expect("route lock poisoned");
            rt.route.reserve(spans.len());
            for mut span in spans {
                let id = SpanId(rt.route.len() as u64 + 1);
                span.span_id = id;
                let shard = rt.pick_shard(self.policy.route(&span), &self.policy);
                let row = rt.shard_rows[shard as usize];
                rt.shard_rows[shard as usize] += 1;
                rt.route.push(Loc { shard, row });
                per_shard[shard as usize]
                    .get_or_insert_with(|| (row, Vec::new()))
                    .1
                    .push(span);
                ids.push(id);
            }
        } // routing lock released before potentially-blocking sends
        let mut enqueued = 0u64;
        let mut first_err: Option<WorkerPanic> = None;
        for (si, sub) in per_shard.into_iter().enumerate() {
            let Some((start_row, spans)) = sub else {
                continue;
            };
            let n = spans.len();
            self.slots[si].pending.fetch_add(n, Ordering::AcqRel);
            if self.senders[si]
                .send(ShardMsg::Batch { start_row, spans })
                .is_err()
            {
                // The worker is gone: undo the gauge and report the cause.
                self.slots[si].pending.fetch_sub(n, Ordering::AcqRel);
                if first_err.is_none() {
                    first_err = Some(self.worker_panic(si));
                }
                continue;
            }
            enqueued += n as u64;
        }
        self.stats.lock().expect("stats lock poisoned").ingested += enqueued;
        match first_err {
            None => Ok(ids),
            Some(e) => Err(e),
        }
    }

    /// Ingest a DFW1-encoded span batch (see [`df_types::wire`]): the
    /// whole frame is decoded *before* any routing state is touched, so a
    /// malformed batch is rejected without assigning ids — shard state
    /// after a failed call is byte-identical to never having called it.
    /// Decoded spans then take the normal [`Self::try_insert_batch`] path.
    pub fn ingest_wire(&self, batch: &[u8]) -> Result<Vec<SpanId>, WireIngestError> {
        let spans = wire::decode_batch(batch).map_err(WireIngestError::Decode)?;
        self.try_insert_batch(spans)
            .map_err(WireIngestError::Worker)
    }

    /// [`Self::insert_batch`] over DFW1 bytes: decode errors are returned
    /// (the store untouched), worker panics panic exactly like
    /// [`Self::insert_batch`].
    pub fn insert_batch_wire(&self, batch: &[u8]) -> Result<Vec<SpanId>, WireDecodeError> {
        let spans = wire::decode_batch(batch)?;
        Ok(self.insert_batch(spans))
    }

    /// The error for a shard whose worker disconnected, preferring the
    /// panic message the worker recorded before dropping its receiver.
    fn worker_panic(&self, shard: usize) -> WorkerPanic {
        let message = self.slots[shard]
            .failed
            .lock()
            .expect("failed flag poisoned")
            .clone()
            .unwrap_or_else(|| "worker disconnected".to_string());
        WorkerPanic { shard, message }
    }

    /// Hide a span from queries. The tombstone is routed through the
    /// owning shard's ingest queue so it is ordered after the insert it
    /// races against; eviction compaction triggers in the worker once the
    /// shard crosses [`ShardPolicy::evict_threshold`].
    pub fn tombstone(&self, id: SpanId) {
        let loc = self.route.lock().expect("route lock poisoned").loc(id);
        let Some(loc) = loc else {
            return;
        };
        self.slots[loc.shard as usize]
            .pending
            .fetch_add(1, Ordering::AcqRel);
        if self.senders[loc.shard as usize]
            .send(ShardMsg::Op {
                row: loc.row,
                op: RowOp::Tombstone,
            })
            .is_err()
        {
            self.slots[loc.shard as usize]
                .pending
                .fetch_sub(1, Ordering::AcqRel);
            panic!("{}", self.worker_panic(loc.shard as usize));
        }
    }

    /// Merge a late response into an Incomplete span (server-side
    /// re-aggregation), routed through the owning shard's queue. The
    /// outcome is observable after [`Self::flush`] via [`Self::get`].
    pub fn complete_span(&self, id: SpanId, resp: Span) {
        let loc = self.route.lock().expect("route lock poisoned").loc(id);
        let Some(loc) = loc else {
            return;
        };
        self.slots[loc.shard as usize]
            .pending
            .fetch_add(1, Ordering::AcqRel);
        if self.senders[loc.shard as usize]
            .send(ShardMsg::Op {
                row: loc.row,
                op: RowOp::Complete(Box::new(resp)),
            })
            .is_err()
        {
            self.slots[loc.shard as usize]
                .pending
                .fetch_sub(1, Ordering::AcqRel);
            panic!("{}", self.worker_panic(loc.shard as usize));
        }
    }

    /// Barrier: returns once every message enqueued before the call has
    /// been applied to its shard. After `flush`, every earlier
    /// `insert_batch` / `tombstone` / `complete_span` is visible to
    /// queries and assembly.
    pub fn flush(&self) {
        self.try_flush().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::flush`] that reports a crashed shard worker as an error
    /// instead of panicking (or, before this existed, hanging forever on
    /// the barrier). Healthy shards are still flushed to the barrier; the
    /// first dead shard encountered is returned.
    pub fn try_flush(&self) -> Result<(), WorkerPanic> {
        let gate = FlushGate::new(self.senders.len());
        for (si, tx) in self.senders.iter().enumerate() {
            let token = FlushToken {
                shard: si,
                gate: Some(Arc::clone(&gate)),
            };
            // A failed send returns the token, whose drop arrives the
            // gate as failed — no party is ever silently lost.
            let _ = tx.send(ShardMsg::Flush(token));
        }
        gate.wait().map_err(|e| {
            // Prefer the panic message the worker recorded over the
            // token's generic "died before acknowledging" note.
            let recorded = self.slots[e.shard]
                .failed
                .lock()
                .expect("failed flag poisoned")
                .clone();
            match recorded {
                Some(message) => WorkerPanic {
                    shard: e.shard,
                    message,
                },
                None => e,
            }
        })
    }

    /// Test hook: make shard `shard`'s ingest worker panic on its next
    /// message, simulating a crashed ingest op. Hidden from docs; used by
    /// the worker-crash regression tests.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self, shard: usize) {
        let _ = self.senders[shard].send(ShardMsg::Panic);
    }

    /// Fetch an *applied* span by global id (spans still in a queue return
    /// `None` until flushed).
    pub fn get(&self, id: SpanId) -> Option<Span> {
        let loc = self.route.lock().expect("route lock poisoned").loc(id)?;
        self.slots[loc.shard as usize]
            .store
            .read()
            .expect("shard lock poisoned")
            .span_at(loc.row)
            .map(Cow::into_owned)
    }

    /// Whether an applied span is tombstoned.
    pub fn is_tombstoned(&self, id: SpanId) -> bool {
        let Some(loc) = self.route.lock().expect("route lock poisoned").loc(id) else {
            return false;
        };
        self.slots[loc.shard as usize]
            .store
            .read()
            .expect("shard lock poisoned")
            .is_tombstoned(id)
    }

    /// Compact tombstoned rows out of every shard's indexes immediately
    /// (the workers also compact on their own once past the policy's
    /// threshold). Returns total index entries removed.
    pub fn evict_tombstoned(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                s.store
                    .write()
                    .expect("shard lock poisoned")
                    .evict_tombstoned()
            })
            .sum()
    }

    /// Span-list query over applied spans: candidate shards (per the
    /// routing table's bucket occupancy) answer under their read locks;
    /// results merge by `(req_time, span_id)` and re-cap at `limit`.
    pub fn query(&self, q: &SpanQuery) -> Vec<Span> {
        let mask =
            self.gens
                .lock()
                .expect("gen table poisoned")
                .window_mask(&self.policy, q.from, q.to);
        self.stats.lock().expect("stats lock poisoned").list_queries += 1;
        let mut merged: Vec<Span> = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if mask & (1u64 << i) == 0 {
                continue;
            }
            let shard = slot.store.read().expect("shard lock poisoned");
            merged.extend(shard.query(q).into_iter().map(Cow::into_owned));
        }
        merged.sort_by_key(|s| (s.req_time, s.span_id));
        merged.truncate(q.limit);
        merged
    }

    /// Trace query through the cache. Under ingest load (pending queue
    /// depth above [`ConcurrentConfig::stale_pending_threshold`]) a cached
    /// trace stale by at most [`ConcurrentConfig::stale_window`] bucket
    /// generations is served instead of re-assembling synchronously; the
    /// stats count hit / stale-hit / miss / invalidation disjointly.
    pub fn query_trace(&self, start: SpanId) -> Arc<Trace> {
        let window = if self.pending() > self.cfg.stale_pending_threshold {
            self.cfg.stale_window
        } else {
            0
        };
        self.query_trace_bounded(start, window)
    }

    /// [`Self::query_trace`] with an explicit staleness tolerance: a cached
    /// trace whose bucket generations drifted by at most `window` is served
    /// without re-assembly (a dashboard refreshing every second can afford
    /// a generation or two of drift; an incident drill-down passes 0).
    pub fn query_trace_bounded(&self, start: SpanId, window: u64) -> Arc<Trace> {
        let view = GenView {
            gens: &self.gens,
            policy: &self.policy,
        };
        let outcome = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .lookup_bounded(start, &view, window);
        enum Kind {
            Hit,
            Stale,
            Miss,
            Invalidated,
        }
        let (arc, kind) = match outcome {
            CacheOutcome::Hit(t) => (t, Kind::Hit),
            CacheOutcome::Stale(t) => (t, Kind::Stale),
            other => {
                let arc = self.assemble_and_cache(start);
                let kind = match other {
                    CacheOutcome::Invalidated => Kind::Invalidated,
                    _ => Kind::Miss,
                };
                (arc, kind)
            }
        };
        {
            // One acquisition for all counters of this query → coherent.
            let mut st = self.stats.lock().expect("stats lock poisoned");
            st.trace_queries += 1;
            match kind {
                Kind::Hit => st.cache_hits += 1,
                Kind::Stale => st.cache_stale_hits += 1,
                Kind::Miss => st.cache_misses += 1,
                Kind::Invalidated => st.cache_invalidations += 1,
            }
        }
        arc
    }

    /// Assemble (Algorithm 1) from `start` against a consistent snapshot:
    /// all shard read locks are held from Phase 1 through the cache store,
    /// so the recorded generations exactly match the assembled span set
    /// (module docs: the staleness-correctness invariant).
    fn assemble_and_cache(&self, start: SpanId) -> Arc<Trace> {
        let loc = self.route.lock().expect("route lock poisoned").loc(start);
        let Some(loc) = loc else {
            return Arc::new(Trace::default());
        };
        let guards: Vec<_> = self
            .slots
            .iter()
            .map(|s| s.store.read().expect("shard lock poisoned"))
            .collect();
        let refs: Vec<&SpanStore> = guards.iter().map(|g| &**g).collect();
        // The start span may still sit in its shard's queue (not applied):
        // assemble nothing rather than panic; the empty trace is not
        // cached, so a post-flush retry assembles for real.
        if refs[loc.shard as usize].len() as u32 <= loc.row
            || refs[loc.shard as usize].is_tombstoned(start)
        {
            return Arc::new(Trace::default());
        }
        let parallel = if self.cfg.parallel_phase1 {
            Some(PARALLEL_MIN_KEYS)
        } else {
            None
        };
        let members = phase1_members(&refs, (loc.shard, loc.row), &self.assemble_cfg, parallel);
        let trace = finish_assembly(&refs, &members, start, &self.assemble_cfg);
        let view = GenView {
            gens: &self.gens,
            policy: &self.policy,
        };
        // Cache while the guards are held: generations cannot move between
        // assembly and the dependency snapshot.
        self.cache
            .lock()
            .expect("cache lock poisoned")
            .store(start, trace, &view)
    }
}

impl Drop for ConcurrentShardedStore {
    fn drop(&mut self) {
        // Disconnect the queues; workers drain what they hold and exit.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The per-shard ingest worker: applies batches strictly in row order
/// (stashing early arrivals), applies row ops once their row exists, bumps
/// bucket generations *inside* the shard write lock (module docs), and
/// acknowledges flush barriers once its reorder buffers are empty.
///
/// A panic anywhere in the message loop is caught so the worker can die
/// loudly instead of silently: the panic message is recorded on the slot
/// *before* the receiver drops (so producers that observe the disconnect
/// can report the cause), stashed flush gates arrive failed, and queued
/// flush tokens arrive failed via their drop guards when the receiver's
/// remaining queue is discarded.
fn worker_loop(
    si: usize,
    slot: Arc<ShardSlot>,
    gens: Arc<Mutex<GenTable>>,
    policy: ShardPolicy,
    rx: Receiver<ShardMsg>,
) {
    let mut state = WorkerState::default();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Batch { start_row, spans } => {
                    state.batches.insert(start_row, spans);
                }
                ShardMsg::Op { row, op } => {
                    state.ops.entry(row).or_default().push(op);
                }
                ShardMsg::Flush(token) => {
                    state.flushes.push(token.accept());
                }
                ShardMsg::Panic => panic!("injected worker panic (test hook)"),
            }
            drain(si, &slot, &gens, &policy, &mut state);
        }
    }));
    match outcome {
        Ok(()) => {
            // Teardown: the store dropped its senders. Apply anything
            // applicable and release any flushers (only reachable if the
            // store is dropped mid-flush, which the &self API prevents —
            // belt and braces).
            drain(si, &slot, &gens, &policy, &mut state);
            for gate in state.flushes.drain(..) {
                gate.arrive();
            }
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            // Record the cause before `rx` drops: a producer unblocked by
            // the disconnect must be able to read why.
            *slot.failed.lock().expect("failed flag poisoned") = Some(message.clone());
            for gate in state.flushes.drain(..) {
                gate.arrive_failed(si, &message);
            }
            // Returning drops `rx`: senders blocked on a full queue wake
            // with an error, and undelivered flush tokens fail their gates.
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Apply every ready message: contiguous batches (in row order), then row
/// ops whose rows exist. Generation bumps happen while the shard write
/// lock is held, making rows-visible + generation-bumped atomic for any
/// reader holding the read lock (the staleness-correctness invariant).
fn drain(
    si: usize,
    slot: &ShardSlot,
    gens: &Mutex<GenTable>,
    policy: &ShardPolicy,
    state: &mut WorkerState,
) {
    loop {
        let mut progressed = false;
        {
            let mut store = slot.store.write().expect("shard lock poisoned");
            // Batches: apply while the next stashed batch is contiguous
            // with the rows already applied.
            while let Some(entry) = state.batches.first_entry() {
                if *entry.key() != store.len() as u32 {
                    break; // gap: an earlier batch is still in flight
                }
                let spans = entry.remove();
                let applied = spans.len();
                let touched: Vec<u64> =
                    spans.iter().map(|s| policy.bucket_of(s.req_time)).collect();
                store.insert_routed_batch(spans);
                {
                    let mut g = gens.lock().expect("gen table poisoned");
                    for b in touched {
                        g.touch(b, si);
                    }
                }
                slot.pending.fetch_sub(applied, Ordering::AcqRel);
                progressed = true;
            }
            // Row ops: apply any whose target row has been applied.
            let applied_rows = store.len() as u32;
            let ready: Vec<u32> = state
                .ops
                .range(..applied_rows)
                .map(|(&row, _)| row)
                .collect();
            for row in ready {
                let ops = state.ops.remove(&row).expect("ready row present");
                for op in ops {
                    // `req_time_at` stays resident for cold rows, so op
                    // bucket accounting never pages in on the worker.
                    let bucket = store.req_time_at(row).map(|t| policy.bucket_of(t));
                    let mutated = match op {
                        RowOp::Tombstone => {
                            store.tombstone_row(row);
                            if store.pending_evictions() >= policy.evict_threshold {
                                store.evict_tombstoned();
                            }
                            true
                        }
                        RowOp::Complete(resp) => store.complete_span_row(row, &resp),
                    };
                    if mutated {
                        if let Some(b) = bucket {
                            gens.lock().expect("gen table poisoned").touch(b, si);
                        }
                    }
                    slot.pending.fetch_sub(1, Ordering::AcqRel);
                }
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    if state.batches.is_empty() && state.ops.is_empty() {
        for gate in state.flushes.drain(..) {
            gate.arrive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::span::{SpanStatus, TapSide};

    fn linked_pair(seq: u32, base_ns: u64) -> Vec<Span> {
        let mut a = Span::synthetic(TapSide::ClientProcess, base_ns, base_ns + 500);
        a.tcp_seq_req = Some(seq);
        let mut b = Span::synthetic(TapSide::ServerProcess, base_ns + 10, base_ns + 490);
        b.tcp_seq_req = Some(seq);
        vec![a, b]
    }

    #[test]
    fn flush_is_a_visibility_barrier() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        store.flush();
        assert_eq!(store.pending(), 0, "flush drains every queue");
        assert_eq!(store.len(), 2);
        for &id in &ids {
            let got = store.get(id).expect("applied after flush");
            assert_eq!(got.span_id, id);
        }
        let trace = store.query_trace(ids[0]);
        assert_eq!(trace.len(), 2);
        assert!(trace.is_well_formed());
    }

    #[test]
    fn ids_are_globally_sequential_in_enqueue_order() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let mut ids = store.insert_batch(linked_pair(1, 1_000));
        ids.extend(store.insert_batch(linked_pair(2, 2_000)));
        ids.push(store.insert(linked_pair(3, 3_000).remove(0)));
        assert_eq!(
            ids.iter().map(|i| i.raw()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn tombstone_and_complete_apply_in_order_with_racing_insert() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let mut req = Span::synthetic(TapSide::ClientProcess, 1_000, 1_000);
        req.status = SpanStatus::Incomplete;
        let mut resp = Span::synthetic(TapSide::ClientProcess, 1_000, 1_900);
        resp.status = SpanStatus::ResponseOnly;
        let ids = store.insert_batch(vec![req]);
        // No flush in between: the completion chases the insert through the
        // same shard queue and must apply after it.
        store.complete_span(ids[0], resp);
        let other = store.insert_batch(linked_pair(9, 5_000));
        store.tombstone(other[1]);
        store.flush();
        assert_eq!(
            store.get(ids[0]).expect("applied").status,
            SpanStatus::Ok,
            "completion applied after its insert"
        );
        assert!(store.is_tombstoned(other[1]));
        assert!(!store.is_tombstoned(other[0]));
        assert_eq!(store.pending(), 0);
    }

    #[test]
    fn query_merges_shards_in_time_id_order() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        for i in 0..8u32 {
            store.insert_batch(linked_pair(i + 1, 1_000 + u64::from(i) * 10));
        }
        store.flush();
        let q = SpanQuery::window(TimeNs(0), TimeNs(1_000_000));
        let got = store.query(&q);
        assert_eq!(got.len(), 16);
        let mut keys: Vec<_> = got.iter().map(|s| (s.req_time, s.span_id)).collect();
        let sorted = {
            let mut k = keys.clone();
            k.sort();
            k
        };
        assert_eq!(keys, sorted, "merged results ordered by (req_time, id)");
        keys.dedup();
        assert_eq!(keys.len(), 16, "no duplicates across shards");
    }

    #[test]
    fn stale_window_serves_cached_trace_and_counts_it() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        store.flush();
        let cold = store.query_trace(ids[0]);
        assert_eq!(cold.len(), 2);
        let warm = store.query_trace(ids[0]);
        assert!(Arc::ptr_eq(&cold, &warm), "warm hit is the cached Arc");

        // One mutation inside the envelope: drift 1.
        let mut c = Span::synthetic(TapSide::ServerPodNic, 1_005, 1_495);
        c.tcp_seq_req = Some(7);
        store.insert_batch(vec![c]);
        store.flush();

        let stale = store.query_trace_bounded(ids[0], 2);
        assert!(
            Arc::ptr_eq(&stale, &cold),
            "drift 1 ≤ window 2 serves the cached trace without re-assembly"
        );
        let strict = store.query_trace(ids[0]);
        assert_eq!(
            strict.len(),
            3,
            "strict query re-assembles with the new span"
        );

        let st = store.stats();
        assert_eq!(st.cache_stale_hits, 1);
        assert_eq!(
            st.trace_queries,
            st.cache_hits + st.cache_stale_hits + st.cache_misses + st.cache_invalidations,
            "stats snapshot invariant"
        );
    }

    #[test]
    fn unapplied_start_span_yields_empty_uncached_trace() {
        // Deterministic version of the race "query a span still in the
        // ingest queue": the routing table knows the id, the shard does not
        // hold the row yet. With the default deep queue and an immediate
        // query there is no guarantee the worker has applied the batch, so
        // an empty result must be legal — and must NOT be cached.
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(2));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let _ = store.query_trace(ids[0]); // may be empty or full, must not panic
        store.flush();
        let trace = store.query_trace(ids[0]);
        assert_eq!(trace.len(), 2, "post-flush query sees the applied spans");
    }

    #[test]
    fn routing_clamp_rebalances_instead_of_panicking() {
        let policy = ShardPolicy {
            shards: 2,
            max_shard_rows: 2,
            ..ShardPolicy::default()
        };
        let store = ConcurrentShardedStore::new(policy);
        // Six spans of one flow all prefer the same shard; the cap forces
        // the overflow onto the other shard.
        let spans: Vec<Span> = (0..3)
            .flat_map(|i| linked_pair(7, 1_000 + i * 10))
            .collect();
        let ids = store.insert_batch(spans);
        store.flush();
        assert_eq!(ids.len(), 6);
        assert!(store.routing_clamped() >= 2);
        let sizes = store.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 6, "no span lost to the cap");
        assert!(
            sizes.iter().all(|&s| s >= 2),
            "overflow rebalanced: {sizes:?}"
        );
        for &id in &ids {
            assert!(store.get(id).is_some(), "{id:?} reachable after clamping");
        }
    }

    #[test]
    fn drop_joins_workers_without_flush() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        store.insert_batch(linked_pair(7, 1_000));
        drop(store); // must not hang or panic with messages still queued
    }

    // The exhaustive generation-bump interleaving checks that used to
    // live here (a hand-rolled Step enum + schedule enumerator) are now
    // df-check model tests: see `tests/df_check_models.rs`, which explores
    // the same invariant with real Mutex/RwLock shims, preemption
    // bounding, and replayable counterexamples.

    #[test]
    fn worker_panic_fails_flush_and_inserts_instead_of_hanging() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(2));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        store.flush();
        store.inject_worker_panic(0);
        // The barrier must report the dead shard, not wait forever.
        let err = store.try_flush().expect_err("flush must fail, not hang");
        assert_eq!(err.shard, 0);
        assert!(
            err.message.contains("injected worker panic"),
            "flush error carries the panic message: {err}"
        );
        // Spans already applied stay readable on the healthy path.
        assert!(store.get(ids[0]).is_some());
        // Producers eventually hit the dead shard and get an error rather
        // than blocking; enough spans guarantees both shards are targeted.
        let spans: Vec<Span> = (0..64)
            .flat_map(|i| linked_pair(100 + i, 10_000 + u64::from(i) * 1_000))
            .collect();
        let err = store
            .try_insert_batch(spans)
            .expect_err("a sub-batch for the dead shard must error");
        assert_eq!(err.shard, 0);
        assert!(err.message.contains("injected worker panic"), "{err}");
        // The panicking wrapper surfaces the same message.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.flush()))
            .expect_err("flush() panics once the worker is dead");
        assert!(panic_message(panicked.as_ref()).contains("shard 0 ingest worker panicked"));
    }

    #[test]
    fn producer_blocked_on_full_queue_wakes_when_worker_dies() {
        // Single shard, minimal queue: after the injected panic the worker
        // stops receiving, so producers may block on a full queue — the
        // receiver dropping during unwind must wake them with an error
        // (this used to deadlock the producer forever).
        let store = ConcurrentShardedStore::with_config(
            ShardPolicy::with_shards(1),
            ConcurrentConfig {
                queue_depth: 1,
                ..ConcurrentConfig::default()
            },
        );
        store.inject_worker_panic(0);
        let err = loop {
            match store.try_insert_batch(linked_pair(1, 1_000)) {
                // Raced ahead of the worker's death: the send landed in
                // the (possibly full) queue. Retry; once the receiver is
                // gone every send errors.
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.shard, 0);
        assert!(err.message.contains("injected worker panic"), "{err}");
        assert!(
            store.try_flush().is_err(),
            "flush must also report the dead worker"
        );
    }
}
