//! [`ConcurrentShardedStore`] — the shard boundary taken across threads.
//!
//! PR 2 partitioned the corpus into [`SpanStore`] shards behind one
//! `&mut self`; every ingest and every assembly still serialised on the
//! owning thread. This module makes each shard an independently locked
//! unit owned by a **per-shard ingest worker thread**, so ingest
//! parallelises across shards while queries run concurrently against a
//! consistent snapshot — the ROADMAP's "take the shard boundary across
//! threads" step, mirroring how the paper's collector keeps absorbing
//! agent traffic while Algorithm 1 assembles on demand (§5).
//!
//! ## Topology
//!
//! ```text
//!  producers (any thread, &self)        per-shard workers (owned threads)
//!  ───────────────────────────          ───────────────────────────────
//!  insert_batch ─┬─ route/ids ──► bounded MPSC ──► worker 0 ──► SpanStore 0 (RwLock)
//!                ├───────────────► bounded MPSC ──► worker 1 ──► SpanStore 1 (RwLock)
//!                └───────────────► …
//! ```
//!
//! * **Routing front-end** (`route` mutex): assigns global sequential span
//!   ids and `(shard, row)` locations — identical to what the
//!   single-threaded [`ShardedSpanStore`](crate::sharded::ShardedSpanStore)
//!   would assign for the same call order, which is what makes the
//!   differential determinism tests possible. Held only for cheap work;
//!   channel sends happen outside it.
//! * **Bounded channels**: each shard's queue holds at most
//!   [`ConcurrentConfig::queue_depth`] messages; a full queue blocks the
//!   producer (backpressure) instead of growing without bound.
//! * **Workers**: each worker owns the `&mut` side of its shard behind an
//!   `RwLock`, applying batches with the amortised
//!   [`SpanStore::insert_routed_batch`]. Because sends happen outside the
//!   routing lock, two producers' batches can arrive out of row order; the
//!   worker stashes early batches and applies strictly in row order, so
//!   shard contents are independent of arrival races.
//! * **Flush barrier**: [`ConcurrentShardedStore::flush`] returns only
//!   once every message enqueued before it has been applied — tests and
//!   benches get read-your-writes visibility on demand.
//!
//! ## Generation-bump ordering (the staleness-correctness invariant)
//!
//! Bucket generations drive trace-cache invalidation. A worker bumps a
//! bucket's generation **while still holding its shard's write lock**, and
//! an assembling reader holds *all* shard read locks from Phase 1 through
//! reading the generations it records in the cache entry. Rows-visible and
//! generation-bumped are therefore atomic from any reader's point of view:
//! no interleaving exists in which a cached trace misses an applied span
//! yet records its post-apply generation (which would never invalidate —
//! a permanently stale entry). The exhaustive two-thread schedule
//! enumeration in this module's tests checks exactly this, including that
//! both fine-grained orderings *would* exhibit the bug without the lock
//! discipline.
//!
//! ## Bounded staleness under ingest load
//!
//! [`ConcurrentShardedStore::query_trace`] measures ingest pressure as the
//! spans enqueued-but-unapplied across all shards. Above
//! [`ConcurrentConfig::stale_pending_threshold`], a cached trace whose
//! bucket generations drifted by at most
//! [`ConcurrentConfig::stale_window`] is served as-is
//! ([`CacheOutcome::Stale`]) instead of re-assembling synchronously behind
//! the queue — the paper's dashboards prefer a milliseconds-old trace over
//! a trace query that stalls the collector. Served-stale queries are
//! counted separately ([`ServerStats::cache_stale_hits`]).

use crate::assemble::AssembleConfig;
use crate::server::ServerStats;
use crate::sharded::{finish_assembly, phase1_members, Bucket, Loc, PARALLEL_MIN_KEYS};
use crate::trace_cache::{BucketGens, CacheOutcome, TraceCache};
use df_storage::{ShardPolicy, SpanQuery, SpanStore};
use df_types::trace::Trace;
use df_types::{Span, SpanId, TimeNs};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;

/// Tunables of the concurrent store (queue depths, staleness policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentConfig {
    /// Messages a shard's ingest queue holds before `insert_batch` blocks
    /// on that shard (backpressure).
    pub queue_depth: usize,
    /// Pending (enqueued-but-unapplied) span count above which
    /// [`ConcurrentShardedStore::query_trace`] switches the trace cache to
    /// bounded-staleness mode.
    pub stale_pending_threshold: usize,
    /// Maximum bucket-generation drift a cached trace may have and still
    /// be served under ingest load (see the module docs).
    pub stale_window: u64,
    /// Fan Phase 1's per-shard probes out across scoped threads when a
    /// frontier round's key batch is large enough.
    pub parallel_phase1: bool,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            queue_depth: 64,
            stale_pending_threshold: 4096,
            stale_window: 8,
            parallel_phase1: true,
        }
    }
}

/// A row-addressed mutation routed through a shard's ingest queue so it
/// applies in order with the inserts it races against.
#[derive(Debug)]
enum RowOp {
    /// Hide the row (re-aggregation consumed it).
    Tombstone,
    /// Merge a late response into the row's Incomplete span.
    Complete(Box<Span>),
}

/// One message on a shard's ingest queue.
#[derive(Debug)]
enum ShardMsg {
    /// A routed batch whose rows start at `start_row` (contiguous).
    Batch { start_row: u32, spans: Vec<Span> },
    /// A row-addressed mutation (applies once the row exists).
    Op { row: u32, op: RowOp },
    /// Flush barrier: acknowledged once everything before it is applied.
    Flush(Arc<FlushGate>),
}

/// Countdown the flusher waits on; each worker arrives once its queue has
/// fully drained past the barrier message.
#[derive(Debug)]
struct FlushGate {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl FlushGate {
    fn new(parties: usize) -> Arc<Self> {
        Arc::new(FlushGate {
            remaining: Mutex::new(parties),
            cv: Condvar::new(),
        })
    }

    fn arrive(&self) {
        let mut r = self.remaining.lock().expect("flush gate poisoned");
        *r = r.saturating_sub(1);
        if *r == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().expect("flush gate poisoned");
        while *r > 0 {
            r = self.cv.wait(r).expect("flush gate poisoned");
        }
    }
}

/// One shard: the store behind its lock plus the pending-mutation gauge.
#[derive(Debug)]
struct ShardSlot {
    store: RwLock<SpanStore>,
    /// Spans and row ops enqueued to this shard but not yet applied.
    pending: AtomicUsize,
}

/// The routing front-end state: id assignment and id → location mapping.
#[derive(Debug, Default)]
struct RouteState {
    /// Global id − 1 → location (ids are assigned sequentially here).
    route: Vec<Loc>,
    /// Next row per shard.
    shard_rows: Vec<u32>,
    /// Spans routed away from a full preferred shard (soft-cap clamp).
    clamped: u64,
}

impl RouteState {
    fn loc(&self, id: SpanId) -> Option<Loc> {
        let idx = id.raw().checked_sub(1)? as usize;
        self.route.get(idx).copied()
    }

    /// The preferred shard unless it is at the policy's row cap — then the
    /// least-loaded shard, with the clamp counted (never panics).
    fn pick_shard(&mut self, preferred: usize, policy: &ShardPolicy) -> u16 {
        if (self.shard_rows[preferred] as usize) < policy.max_shard_rows {
            return preferred as u16;
        }
        self.clamped += 1;
        self.shard_rows
            .iter()
            .enumerate()
            .min_by_key(|(_, &rows)| rows)
            .map(|(i, _)| i as u16)
            .unwrap_or(preferred as u16)
    }
}

/// The time-bucket generation table, shared between workers (bumping) and
/// readers (validating cache entries, windowing queries).
#[derive(Debug, Default)]
struct GenTable {
    buckets: HashMap<u64, Bucket>,
}

impl GenTable {
    fn touch(&mut self, bucket: u64, shard: usize) {
        let b = self.buckets.entry(bucket).or_default();
        b.gen += 1;
        b.shards |= 1u64 << shard;
    }

    fn gen(&self, bucket: u64) -> u64 {
        self.buckets.get(&bucket).map(|b| b.gen).unwrap_or(0)
    }

    /// Bitmask of shards holding applied spans in `[from, to)`; all-ones
    /// when the window is unbounded.
    fn window_mask(&self, policy: &ShardPolicy, from: Option<TimeNs>, to: Option<TimeNs>) -> u64 {
        let (Some(from), Some(to)) = (from, to) else {
            return u64::MAX;
        };
        if to.as_nanos() == 0 {
            return 0;
        }
        let lo = policy.bucket_of(from);
        let hi = policy.bucket_of(TimeNs(to.as_nanos() - 1));
        self.buckets
            .iter()
            .filter(|(b, _)| (lo..=hi).contains(*b))
            .fold(0u64, |m, (_, b)| m | b.shards)
    }
}

/// [`BucketGens`] view over the concurrent store's locked generation
/// table, so the [`TraceCache`] stays store-agnostic.
struct GenView<'a> {
    gens: &'a Mutex<GenTable>,
    policy: &'a ShardPolicy,
}

impl BucketGens for GenView<'_> {
    fn bucket_gen(&self, bucket: u64) -> u64 {
        self.gens.lock().expect("gen table poisoned").gen(bucket)
    }
    fn bucket_of(&self, t: TimeNs) -> u64 {
        self.policy.bucket_of(t)
    }
}

/// Per-worker reorder state: batches and ops that arrived before the rows
/// they target (sends happen outside the routing lock, so two producers'
/// messages can arrive out of row order).
#[derive(Debug, Default)]
struct WorkerState {
    /// Early batches, keyed by their start row.
    batches: BTreeMap<u32, Vec<Span>>,
    /// Early row ops, keyed by target row (arrival order kept per row).
    ops: BTreeMap<u32, Vec<RowOp>>,
    /// Flush gates deferred until the reorder buffers drain.
    flushes: Vec<Arc<FlushGate>>,
}

/// A span corpus partitioned across per-worker-owned [`SpanStore`] shards,
/// ingesting through bounded per-shard queues. See the module docs for the
/// channel topology, the flush barrier and the staleness contract.
///
/// # Examples
///
/// ```
/// use df_server::concurrent::ConcurrentShardedStore;
/// use df_storage::ShardPolicy;
/// use df_types::span::TapSide;
/// use df_types::Span;
///
/// let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
/// let mut client = Span::synthetic(TapSide::ClientProcess, 100, 900);
/// client.tcp_seq_req = Some(7);
/// let mut server = Span::synthetic(TapSide::ServerProcess, 200, 800);
/// server.tcp_seq_req = Some(7);
/// let ids = store.insert_batch(vec![client, server]);
/// store.flush(); // barrier: both spans applied and visible
///
/// let trace = store.query_trace(ids[0]);
/// assert_eq!(trace.len(), 2);
/// assert!(trace.is_well_formed());
/// ```
#[derive(Debug)]
pub struct ConcurrentShardedStore {
    policy: ShardPolicy,
    cfg: ConcurrentConfig,
    assemble_cfg: AssembleConfig,
    slots: Vec<Arc<ShardSlot>>,
    gens: Arc<Mutex<GenTable>>,
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<thread::JoinHandle<()>>,
    route: Mutex<RouteState>,
    cache: Mutex<TraceCache>,
    stats: Mutex<ServerStats>,
}

impl ConcurrentShardedStore {
    /// Store under `policy` with default [`ConcurrentConfig`], spawning one
    /// ingest worker per shard. Shard counts above 64 are clamped exactly
    /// as in the single-threaded store.
    pub fn new(policy: ShardPolicy) -> Self {
        Self::with_config(policy, ConcurrentConfig::default())
    }

    /// Store with explicit concurrency tunables.
    pub fn with_config(mut policy: ShardPolicy, cfg: ConcurrentConfig) -> Self {
        policy.shards = policy.shards.clamp(1, 64);
        let gens = Arc::new(Mutex::new(GenTable::default()));
        let mut slots = Vec::with_capacity(policy.shards);
        let mut senders = Vec::with_capacity(policy.shards);
        let mut workers = Vec::with_capacity(policy.shards);
        for si in 0..policy.shards {
            let slot = Arc::new(ShardSlot {
                store: RwLock::new(SpanStore::new()),
                pending: AtomicUsize::new(0),
            });
            let (tx, rx) = sync_channel::<ShardMsg>(cfg.queue_depth.max(1));
            let worker_slot = Arc::clone(&slot);
            let worker_gens = Arc::clone(&gens);
            let handle = thread::Builder::new()
                .name(format!("df-shard-{si}"))
                .spawn(move || worker_loop(si, worker_slot, worker_gens, policy, rx))
                .expect("spawn shard worker");
            slots.push(slot);
            senders.push(tx);
            workers.push(handle);
        }
        ConcurrentShardedStore {
            route: Mutex::new(RouteState {
                route: Vec::new(),
                shard_rows: vec![0; policy.shards],
                clamped: 0,
            }),
            policy,
            cfg,
            assemble_cfg: AssembleConfig::default(),
            slots,
            gens,
            senders,
            workers,
            cache: Mutex::new(TraceCache::new()),
            stats: Mutex::new(ServerStats::default()),
        }
    }

    /// The routing policy this store was built with.
    pub fn policy(&self) -> &ShardPolicy {
        &self.policy
    }

    /// Override assembly tunables (construction-time; the store is shared
    /// immutably afterwards).
    pub fn set_assemble_config(&mut self, cfg: AssembleConfig) {
        self.assemble_cfg = cfg;
    }

    /// Number of shards (== ingest workers).
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Spans routed (ids assigned), including spans still in queues.
    pub fn len(&self) -> usize {
        self.route.lock().expect("route lock poisoned").route.len()
    }

    /// Whether no span has been routed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans and row ops enqueued but not yet applied — the ingest-load
    /// gauge the bounded-staleness mode keys off.
    pub fn pending(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.pending.load(Ordering::Acquire))
            .sum()
    }

    /// Applied spans per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.slots
            .iter()
            .map(|s| s.store.read().expect("shard lock poisoned").len())
            .collect()
    }

    /// Spans routed away from their preferred shard because it was at
    /// [`ShardPolicy::max_shard_rows`] (soft-cap clamp; nothing is lost).
    pub fn routing_clamped(&self) -> u64 {
        self.route.lock().expect("route lock poisoned").clamped
    }

    /// A coherent snapshot of the counters: every snapshot satisfies
    /// `trace_queries == cache_hits + cache_stale_hits + cache_misses +
    /// cache_invalidations` (all counters of one query move under one lock
    /// acquisition).
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock().expect("stats lock poisoned")
    }

    /// Insert one span. Equivalent to a one-span [`Self::insert_batch`]
    /// (the unbatched ingest path the benches compare against).
    pub fn insert(&self, span: Span) -> SpanId {
        self.insert_batch(vec![span])[0]
    }

    /// Insert a batch (what an agent ships per flush): ids and `(shard,
    /// row)` locations are assigned under the routing lock — globally
    /// sequential, identical to the single-threaded store for the same
    /// call order — then each shard's sub-batch is enqueued to its worker.
    /// Blocks only when a target shard's queue is full (backpressure).
    /// Spans become query-visible when their worker applies them; call
    /// [`Self::flush`] for a visibility barrier.
    pub fn insert_batch(&self, spans: Vec<Span>) -> Vec<SpanId> {
        if spans.is_empty() {
            return Vec::new();
        }
        let mut ids = Vec::with_capacity(spans.len());
        let mut per_shard: Vec<Option<(u32, Vec<Span>)>> = vec![None; self.slots.len()];
        {
            let mut rt = self.route.lock().expect("route lock poisoned");
            rt.route.reserve(spans.len());
            for mut span in spans {
                let id = SpanId(rt.route.len() as u64 + 1);
                span.span_id = id;
                let shard = rt.pick_shard(self.policy.route(&span), &self.policy);
                let row = rt.shard_rows[shard as usize];
                rt.shard_rows[shard as usize] += 1;
                rt.route.push(Loc { shard, row });
                per_shard[shard as usize]
                    .get_or_insert_with(|| (row, Vec::new()))
                    .1
                    .push(span);
                ids.push(id);
            }
        } // routing lock released before potentially-blocking sends
        let mut enqueued = 0u64;
        for (si, sub) in per_shard.into_iter().enumerate() {
            let Some((start_row, spans)) = sub else {
                continue;
            };
            enqueued += spans.len() as u64;
            self.slots[si]
                .pending
                .fetch_add(spans.len(), Ordering::AcqRel);
            self.senders[si]
                .send(ShardMsg::Batch { start_row, spans })
                .expect("shard worker alive");
        }
        self.stats.lock().expect("stats lock poisoned").ingested += enqueued;
        ids
    }

    /// Hide a span from queries. The tombstone is routed through the
    /// owning shard's ingest queue so it is ordered after the insert it
    /// races against; eviction compaction triggers in the worker once the
    /// shard crosses [`ShardPolicy::evict_threshold`].
    pub fn tombstone(&self, id: SpanId) {
        let loc = self.route.lock().expect("route lock poisoned").loc(id);
        let Some(loc) = loc else {
            return;
        };
        self.slots[loc.shard as usize]
            .pending
            .fetch_add(1, Ordering::AcqRel);
        self.senders[loc.shard as usize]
            .send(ShardMsg::Op {
                row: loc.row,
                op: RowOp::Tombstone,
            })
            .expect("shard worker alive");
    }

    /// Merge a late response into an Incomplete span (server-side
    /// re-aggregation), routed through the owning shard's queue. The
    /// outcome is observable after [`Self::flush`] via [`Self::get`].
    pub fn complete_span(&self, id: SpanId, resp: Span) {
        let loc = self.route.lock().expect("route lock poisoned").loc(id);
        let Some(loc) = loc else {
            return;
        };
        self.slots[loc.shard as usize]
            .pending
            .fetch_add(1, Ordering::AcqRel);
        self.senders[loc.shard as usize]
            .send(ShardMsg::Op {
                row: loc.row,
                op: RowOp::Complete(Box::new(resp)),
            })
            .expect("shard worker alive");
    }

    /// Barrier: returns once every message enqueued before the call has
    /// been applied to its shard. After `flush`, every earlier
    /// `insert_batch` / `tombstone` / `complete_span` is visible to
    /// queries and assembly.
    pub fn flush(&self) {
        let gate = FlushGate::new(self.senders.len());
        for tx in &self.senders {
            tx.send(ShardMsg::Flush(Arc::clone(&gate)))
                .expect("shard worker alive");
        }
        gate.wait();
    }

    /// Fetch an *applied* span by global id (spans still in a queue return
    /// `None` until flushed).
    pub fn get(&self, id: SpanId) -> Option<Span> {
        let loc = self.route.lock().expect("route lock poisoned").loc(id)?;
        self.slots[loc.shard as usize]
            .store
            .read()
            .expect("shard lock poisoned")
            .get_row(loc.row)
            .cloned()
    }

    /// Whether an applied span is tombstoned.
    pub fn is_tombstoned(&self, id: SpanId) -> bool {
        let Some(loc) = self.route.lock().expect("route lock poisoned").loc(id) else {
            return false;
        };
        self.slots[loc.shard as usize]
            .store
            .read()
            .expect("shard lock poisoned")
            .is_tombstoned(id)
    }

    /// Compact tombstoned rows out of every shard's indexes immediately
    /// (the workers also compact on their own once past the policy's
    /// threshold). Returns total index entries removed.
    pub fn evict_tombstoned(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                s.store
                    .write()
                    .expect("shard lock poisoned")
                    .evict_tombstoned()
            })
            .sum()
    }

    /// Span-list query over applied spans: candidate shards (per the
    /// routing table's bucket occupancy) answer under their read locks;
    /// results merge by `(req_time, span_id)` and re-cap at `limit`.
    pub fn query(&self, q: &SpanQuery) -> Vec<Span> {
        let mask =
            self.gens
                .lock()
                .expect("gen table poisoned")
                .window_mask(&self.policy, q.from, q.to);
        self.stats.lock().expect("stats lock poisoned").list_queries += 1;
        let mut merged: Vec<Span> = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if mask & (1u64 << i) == 0 {
                continue;
            }
            let shard = slot.store.read().expect("shard lock poisoned");
            merged.extend(shard.query(q).into_iter().cloned());
        }
        merged.sort_by_key(|s| (s.req_time, s.span_id));
        merged.truncate(q.limit);
        merged
    }

    /// Trace query through the cache. Under ingest load (pending queue
    /// depth above [`ConcurrentConfig::stale_pending_threshold`]) a cached
    /// trace stale by at most [`ConcurrentConfig::stale_window`] bucket
    /// generations is served instead of re-assembling synchronously; the
    /// stats count hit / stale-hit / miss / invalidation disjointly.
    pub fn query_trace(&self, start: SpanId) -> Arc<Trace> {
        let window = if self.pending() > self.cfg.stale_pending_threshold {
            self.cfg.stale_window
        } else {
            0
        };
        self.query_trace_bounded(start, window)
    }

    /// [`Self::query_trace`] with an explicit staleness tolerance: a cached
    /// trace whose bucket generations drifted by at most `window` is served
    /// without re-assembly (a dashboard refreshing every second can afford
    /// a generation or two of drift; an incident drill-down passes 0).
    pub fn query_trace_bounded(&self, start: SpanId, window: u64) -> Arc<Trace> {
        let view = GenView {
            gens: &self.gens,
            policy: &self.policy,
        };
        let outcome = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .lookup_bounded(start, &view, window);
        enum Kind {
            Hit,
            Stale,
            Miss,
            Invalidated,
        }
        let (arc, kind) = match outcome {
            CacheOutcome::Hit(t) => (t, Kind::Hit),
            CacheOutcome::Stale(t) => (t, Kind::Stale),
            other => {
                let arc = self.assemble_and_cache(start);
                let kind = match other {
                    CacheOutcome::Invalidated => Kind::Invalidated,
                    _ => Kind::Miss,
                };
                (arc, kind)
            }
        };
        {
            // One acquisition for all counters of this query → coherent.
            let mut st = self.stats.lock().expect("stats lock poisoned");
            st.trace_queries += 1;
            match kind {
                Kind::Hit => st.cache_hits += 1,
                Kind::Stale => st.cache_stale_hits += 1,
                Kind::Miss => st.cache_misses += 1,
                Kind::Invalidated => st.cache_invalidations += 1,
            }
        }
        arc
    }

    /// Assemble (Algorithm 1) from `start` against a consistent snapshot:
    /// all shard read locks are held from Phase 1 through the cache store,
    /// so the recorded generations exactly match the assembled span set
    /// (module docs: the staleness-correctness invariant).
    fn assemble_and_cache(&self, start: SpanId) -> Arc<Trace> {
        let loc = self.route.lock().expect("route lock poisoned").loc(start);
        let Some(loc) = loc else {
            return Arc::new(Trace::default());
        };
        let guards: Vec<_> = self
            .slots
            .iter()
            .map(|s| s.store.read().expect("shard lock poisoned"))
            .collect();
        let refs: Vec<&SpanStore> = guards.iter().map(|g| &**g).collect();
        // The start span may still sit in its shard's queue (not applied):
        // assemble nothing rather than panic; the empty trace is not
        // cached, so a post-flush retry assembles for real.
        if refs[loc.shard as usize].len() as u32 <= loc.row
            || refs[loc.shard as usize].is_tombstoned(start)
        {
            return Arc::new(Trace::default());
        }
        let parallel = if self.cfg.parallel_phase1 {
            Some(PARALLEL_MIN_KEYS)
        } else {
            None
        };
        let members = phase1_members(&refs, (loc.shard, loc.row), &self.assemble_cfg, parallel);
        let trace = finish_assembly(&refs, &members, start, &self.assemble_cfg);
        let view = GenView {
            gens: &self.gens,
            policy: &self.policy,
        };
        // Cache while the guards are held: generations cannot move between
        // assembly and the dependency snapshot.
        self.cache
            .lock()
            .expect("cache lock poisoned")
            .store(start, trace, &view)
    }
}

impl Drop for ConcurrentShardedStore {
    fn drop(&mut self) {
        // Disconnect the queues; workers drain what they hold and exit.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The per-shard ingest worker: applies batches strictly in row order
/// (stashing early arrivals), applies row ops once their row exists, bumps
/// bucket generations *inside* the shard write lock (module docs), and
/// acknowledges flush barriers once its reorder buffers are empty.
fn worker_loop(
    si: usize,
    slot: Arc<ShardSlot>,
    gens: Arc<Mutex<GenTable>>,
    policy: ShardPolicy,
    rx: Receiver<ShardMsg>,
) {
    let mut state = WorkerState::default();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch { start_row, spans } => {
                state.batches.insert(start_row, spans);
            }
            ShardMsg::Op { row, op } => {
                state.ops.entry(row).or_default().push(op);
            }
            ShardMsg::Flush(gate) => {
                state.flushes.push(gate);
            }
        }
        drain(si, &slot, &gens, &policy, &mut state);
    }
    // Teardown: the store dropped its senders. Apply anything applicable
    // and release any flushers (only reachable if the store is dropped
    // mid-flush, which the &self API prevents — belt and braces).
    drain(si, &slot, &gens, &policy, &mut state);
    for gate in state.flushes.drain(..) {
        gate.arrive();
    }
}

/// Apply every ready message: contiguous batches (in row order), then row
/// ops whose rows exist. Generation bumps happen while the shard write
/// lock is held, making rows-visible + generation-bumped atomic for any
/// reader holding the read lock (the staleness-correctness invariant).
fn drain(
    si: usize,
    slot: &ShardSlot,
    gens: &Mutex<GenTable>,
    policy: &ShardPolicy,
    state: &mut WorkerState,
) {
    loop {
        let mut progressed = false;
        {
            let mut store = slot.store.write().expect("shard lock poisoned");
            // Batches: apply while the next stashed batch is contiguous
            // with the rows already applied.
            while let Some(entry) = state.batches.first_entry() {
                if *entry.key() != store.len() as u32 {
                    break; // gap: an earlier batch is still in flight
                }
                let spans = entry.remove();
                let applied = spans.len();
                let touched: Vec<u64> =
                    spans.iter().map(|s| policy.bucket_of(s.req_time)).collect();
                store.insert_routed_batch(spans);
                {
                    let mut g = gens.lock().expect("gen table poisoned");
                    for b in touched {
                        g.touch(b, si);
                    }
                }
                slot.pending.fetch_sub(applied, Ordering::AcqRel);
                progressed = true;
            }
            // Row ops: apply any whose target row has been applied.
            let applied_rows = store.len() as u32;
            let ready: Vec<u32> = state
                .ops
                .range(..applied_rows)
                .map(|(&row, _)| row)
                .collect();
            for row in ready {
                let ops = state.ops.remove(&row).expect("ready row present");
                for op in ops {
                    let bucket = store.get_row(row).map(|s| policy.bucket_of(s.req_time));
                    let mutated = match op {
                        RowOp::Tombstone => {
                            store.tombstone_row(row);
                            if store.pending_evictions() >= policy.evict_threshold {
                                store.evict_tombstoned();
                            }
                            true
                        }
                        RowOp::Complete(resp) => store.complete_span_row(row, &resp),
                    };
                    if mutated {
                        if let Some(b) = bucket {
                            gens.lock().expect("gen table poisoned").touch(b, si);
                        }
                    }
                    slot.pending.fetch_sub(1, Ordering::AcqRel);
                }
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    if state.batches.is_empty() && state.ops.is_empty() {
        for gate in state.flushes.drain(..) {
            gate.arrive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::span::{SpanStatus, TapSide};

    fn linked_pair(seq: u32, base_ns: u64) -> Vec<Span> {
        let mut a = Span::synthetic(TapSide::ClientProcess, base_ns, base_ns + 500);
        a.tcp_seq_req = Some(seq);
        let mut b = Span::synthetic(TapSide::ServerProcess, base_ns + 10, base_ns + 490);
        b.tcp_seq_req = Some(seq);
        vec![a, b]
    }

    #[test]
    fn flush_is_a_visibility_barrier() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        store.flush();
        assert_eq!(store.pending(), 0, "flush drains every queue");
        assert_eq!(store.len(), 2);
        for &id in &ids {
            let got = store.get(id).expect("applied after flush");
            assert_eq!(got.span_id, id);
        }
        let trace = store.query_trace(ids[0]);
        assert_eq!(trace.len(), 2);
        assert!(trace.is_well_formed());
    }

    #[test]
    fn ids_are_globally_sequential_in_enqueue_order() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let mut ids = store.insert_batch(linked_pair(1, 1_000));
        ids.extend(store.insert_batch(linked_pair(2, 2_000)));
        ids.push(store.insert(linked_pair(3, 3_000).remove(0)));
        assert_eq!(
            ids.iter().map(|i| i.raw()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn tombstone_and_complete_apply_in_order_with_racing_insert() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let mut req = Span::synthetic(TapSide::ClientProcess, 1_000, 1_000);
        req.status = SpanStatus::Incomplete;
        let mut resp = Span::synthetic(TapSide::ClientProcess, 1_000, 1_900);
        resp.status = SpanStatus::ResponseOnly;
        let ids = store.insert_batch(vec![req]);
        // No flush in between: the completion chases the insert through the
        // same shard queue and must apply after it.
        store.complete_span(ids[0], resp);
        let other = store.insert_batch(linked_pair(9, 5_000));
        store.tombstone(other[1]);
        store.flush();
        assert_eq!(
            store.get(ids[0]).expect("applied").status,
            SpanStatus::Ok,
            "completion applied after its insert"
        );
        assert!(store.is_tombstoned(other[1]));
        assert!(!store.is_tombstoned(other[0]));
        assert_eq!(store.pending(), 0);
    }

    #[test]
    fn query_merges_shards_in_time_id_order() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        for i in 0..8u32 {
            store.insert_batch(linked_pair(i + 1, 1_000 + u64::from(i) * 10));
        }
        store.flush();
        let q = SpanQuery::window(TimeNs(0), TimeNs(1_000_000));
        let got = store.query(&q);
        assert_eq!(got.len(), 16);
        let mut keys: Vec<_> = got.iter().map(|s| (s.req_time, s.span_id)).collect();
        let sorted = {
            let mut k = keys.clone();
            k.sort();
            k
        };
        assert_eq!(keys, sorted, "merged results ordered by (req_time, id)");
        keys.dedup();
        assert_eq!(keys.len(), 16, "no duplicates across shards");
    }

    #[test]
    fn stale_window_serves_cached_trace_and_counts_it() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        store.flush();
        let cold = store.query_trace(ids[0]);
        assert_eq!(cold.len(), 2);
        let warm = store.query_trace(ids[0]);
        assert!(Arc::ptr_eq(&cold, &warm), "warm hit is the cached Arc");

        // One mutation inside the envelope: drift 1.
        let mut c = Span::synthetic(TapSide::ServerPodNic, 1_005, 1_495);
        c.tcp_seq_req = Some(7);
        store.insert_batch(vec![c]);
        store.flush();

        let stale = store.query_trace_bounded(ids[0], 2);
        assert!(
            Arc::ptr_eq(&stale, &cold),
            "drift 1 ≤ window 2 serves the cached trace without re-assembly"
        );
        let strict = store.query_trace(ids[0]);
        assert_eq!(
            strict.len(),
            3,
            "strict query re-assembles with the new span"
        );

        let st = store.stats();
        assert_eq!(st.cache_stale_hits, 1);
        assert_eq!(
            st.trace_queries,
            st.cache_hits + st.cache_stale_hits + st.cache_misses + st.cache_invalidations,
            "stats snapshot invariant"
        );
    }

    #[test]
    fn unapplied_start_span_yields_empty_uncached_trace() {
        // Deterministic version of the race "query a span still in the
        // ingest queue": the routing table knows the id, the shard does not
        // hold the row yet. With the default deep queue and an immediate
        // query there is no guarantee the worker has applied the batch, so
        // an empty result must be legal — and must NOT be cached.
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(2));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let _ = store.query_trace(ids[0]); // may be empty or full, must not panic
        store.flush();
        let trace = store.query_trace(ids[0]);
        assert_eq!(trace.len(), 2, "post-flush query sees the applied spans");
    }

    #[test]
    fn routing_clamp_rebalances_instead_of_panicking() {
        let policy = ShardPolicy {
            shards: 2,
            max_shard_rows: 2,
            ..ShardPolicy::default()
        };
        let store = ConcurrentShardedStore::new(policy);
        // Six spans of one flow all prefer the same shard; the cap forces
        // the overflow onto the other shard.
        let spans: Vec<Span> = (0..3)
            .flat_map(|i| linked_pair(7, 1_000 + i * 10))
            .collect();
        let ids = store.insert_batch(spans);
        store.flush();
        assert_eq!(ids.len(), 6);
        assert!(store.routing_clamped() >= 2);
        let sizes = store.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 6, "no span lost to the cap");
        assert!(
            sizes.iter().all(|&s| s >= 2),
            "overflow rebalanced: {sizes:?}"
        );
        for &id in &ids {
            assert!(store.get(id).is_some(), "{id:?} reachable after clamping");
        }
    }

    #[test]
    fn drop_joins_workers_without_flush() {
        let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
        store.insert_batch(linked_pair(7, 1_000));
        drop(store); // must not hang or panic with messages still queued
    }

    // ------------------------------------------------------------------
    // Exhaustive two-thread interleaving check for the generation-bump
    // ordering invariant (module docs). Hand-rolled loom-style model: a
    // writer applies one span (row becomes visible + bucket generation
    // bumps) while a reader assembles (reads row visibility) and caches
    // (records the generation). A cache entry is PERMANENTLY STALE if it
    // misses the span but records the post-bump generation — strict
    // lookups would validate it forever. We enumerate every schedule of
    // the two threads' atomic steps and assert:
    //   * the implemented discipline (both sides atomic under the shard
    //     lock) admits no permanently-stale schedule, and
    //   * BOTH fine-grained orderings (bump-then-insert and
    //     insert-then-bump without the lock) DO admit one — i.e. the
    //     checker has teeth and the lock discipline is load-bearing.
    // ------------------------------------------------------------------

    /// One atomic step of the model: micro-ops that execute indivisibly.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Step {
        /// Writer: row becomes visible.
        WVis,
        /// Writer: bucket generation bumps.
        WGen,
        /// Writer: both at once (the shard-lock critical section).
        WAtomic,
        /// Reader: observes row visibility (Phase 1 under the read lock).
        RSee,
        /// Reader: records the generation into the cache entry.
        RGen,
        /// Reader: both at once (read locks held across assembly + store).
        RAtomic,
    }

    /// Simulate one schedule; returns (saw_row, recorded_gen, final_gen).
    fn run_schedule(schedule: &[Step]) -> (bool, u64, u64) {
        let (mut vis, mut gen) = (false, 0u64);
        let (mut saw, mut recorded) = (false, 0u64);
        for step in schedule {
            match step {
                Step::WVis => vis = true,
                Step::WGen => gen += 1,
                Step::WAtomic => {
                    vis = true;
                    gen += 1;
                }
                Step::RSee => saw = vis,
                Step::RGen => recorded = gen,
                Step::RAtomic => {
                    saw = vis;
                    recorded = gen;
                }
            }
        }
        (saw, recorded, gen)
    }

    /// All interleavings of two per-thread step sequences (program order
    /// preserved within each thread).
    fn interleavings(w: &[Step], r: &[Step]) -> Vec<Vec<Step>> {
        fn go(w: &[Step], r: &[Step], acc: &mut Vec<Step>, out: &mut Vec<Vec<Step>>) {
            if w.is_empty() && r.is_empty() {
                out.push(acc.clone());
                return;
            }
            if let Some((&first, rest)) = w.split_first() {
                acc.push(first);
                go(rest, r, acc, out);
                acc.pop();
            }
            if let Some((&first, rest)) = r.split_first() {
                acc.push(first);
                go(w, rest, acc, out);
                acc.pop();
            }
        }
        let mut out = Vec::new();
        go(w, r, &mut Vec::new(), &mut out);
        out
    }

    /// A schedule leaves the cache permanently stale iff the entry missed
    /// the span but recorded the final generation.
    fn permanently_stale(schedule: &[Step]) -> bool {
        let (saw, recorded, final_gen) = run_schedule(schedule);
        !saw && recorded == final_gen && final_gen > 0
    }

    #[test]
    fn no_interleaving_of_the_locked_discipline_leaves_the_cache_permanently_stale() {
        // Implemented discipline: the worker's insert+bump is one critical
        // section (shard write lock held across both); the reader's
        // see+record is one critical section (all read locks held from
        // Phase 1 through the cache store).
        for schedule in interleavings(&[Step::WAtomic], &[Step::RAtomic]) {
            assert!(
                !permanently_stale(&schedule),
                "locked discipline must never go permanently stale: {schedule:?}"
            );
        }
    }

    #[test]
    fn both_unlocked_orderings_admit_a_permanently_stale_interleaving() {
        // Without the lock discipline the writer's two effects and the
        // reader's two observations interleave freely — and BOTH write
        // orders break. This is why the worker bumps generations inside
        // the shard write lock and the assembler holds read locks through
        // the cache store.
        for writer in [
            [Step::WVis, Step::WGen], // insert, then bump
            [Step::WGen, Step::WVis], // bump, then insert
        ] {
            let broken = interleavings(&writer, &[Step::RSee, Step::RGen])
                .iter()
                .any(|s| permanently_stale(s));
            assert!(
                broken,
                "fine-grained order {writer:?} should admit a stale schedule \
                 (otherwise the lock discipline would be unnecessary)"
            );
        }
    }
}
