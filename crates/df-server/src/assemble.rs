//! Algorithm 1 — iterative trace assembling (paper §3.3.2).
//!
//! Phase 1 (lines 1–16): starting from a user-chosen span, expand the span
//! set through the store's implicit-context indexes (systrace ids,
//! pseudo-thread ids, X-Request-IDs, TCP sequences, third-party trace ids)
//! until a fixed point or the iteration cap (default 30, like the paper).
//! The search is frontier-based: each iteration probes only the spans
//! discovered in the previous iteration, and each index *key* is expanded
//! at most once, so the total Phase-1 cost is bounded by the touched index
//! entries rather than `iterations × |set| × bucket`. Probes borrow row
//! slices straight from the store (no per-probe allocation), tombstoned
//! spans (consumed by server-side re-aggregation, §3.3.1) are filtered at
//! discovery time, and when the set exceeds `max_spans` it is truncated
//! deterministically by `(req_time, span_id)`, always keeping the start
//! span.
//!
//! Phase 2 (lines 17–24): set each span's parent under **16 rules** keyed on
//! collection location, start/finish time, span type and message type:
//!
//! * **Rules 1–8 — the capture ladder.** Spans of the *same exchange*
//!   (same request TCP sequence; UDP falls back to flow+endpoint+time) are
//!   chained along the client→server capture path:
//!   `c-app → c → c-pod → c-nd → c-hv → gw → s-hv → s-nd → s-pod → s`.
//!   Each capture point's span is the parent of the next one down the path.
//!   (The paper's prose states the client/server parent direction the other
//!   way round for its example; we nest along the request path so traces
//!   render as Fig. 1 — outermost span first. The association content is
//!   identical.)
//! * **Rule 9** — request-chain systrace: a server-process span whose
//!   *request* systrace id equals an exchange's client-process request
//!   systrace id is that exchange's parent (the handler made the call).
//! * **Rule 10** — response-chain systrace: same, via response systrace ids.
//! * **Rule 11** — pseudo-thread: shared pseudo-thread id plus time
//!   containment (coroutine runtimes).
//! * **Rule 12** — X-Request-ID: shared proxy request id plus containment
//!   (cross-thread proxies, L7 gateways).
//! * **Rule 13** — third-party client span: an app span is the parent of
//!   the exchange whose messages carried that span's id in their headers.
//! * **Rule 14** — third-party server span: a server-process span is the
//!   parent of an app span it contains with the same trace id.
//! * **Rule 15** — third-party ancestry: app span A is the child of app
//!   span B when `A.parent_span_id == B.span_id`.
//! * **Rule 16** — fallback: same third-party trace id, tightest time
//!   containment.
//!
//! Rule number → the paper material it reproduces:
//!
//! | rule  | association mechanism            | paper reference                  |
//! |-------|----------------------------------|----------------------------------|
//! | 1–8   | capture ladder (TCP seq / flow)  | §3.3.2 "network path", Table 6 rows for net spans; Appendix A Fig. 17–18 |
//! | 9     | request-chain syscall trace id   | §3.3.1 Fig. 6–7 (TraceID of syscalls), Table 6 |
//! | 10    | response-chain syscall trace id  | §3.3.1 Fig. 6–7, Table 6         |
//! | 11    | pseudo-thread containment        | §3.3.1 "pseudo-thread structure" |
//! | 12    | X-Request-ID containment         | §3.3.2 L7-gateway association, Appendix A |
//! | 13    | third-party client span id       | §3.3.2 third-party span integration |
//! | 14    | third-party server containment   | §3.3.2 third-party span integration |
//! | 15    | explicit app-span ancestry       | §3.3.2 third-party span integration |
//! | 16    | shared trace id, tightest fit    | §3.3.2 third-party span integration (fallback) |
//!
//! Rules 9–12 and 16 resolve through per-trace side indexes over the
//! parent candidates (server-process / server-app spans keyed by systrace
//! id, pseudo-thread id, X-Request-ID and trace id), and rule 14 through a
//! server-process-by-trace-id index, so parent assignment is hash lookups
//! instead of a scan of the whole span set per exchange.
//!
//! Phase 3 (line 25): sort parents-first, siblings by request time.
//!
//! [`assemble_trace_reference`] keeps the original full-rescan / full-scan
//! formulation (with the same tombstone, dedup and truncation semantics)
//! as a differential-testing oracle and benchmark baseline; the property
//! tests assert both implementations produce identical traces.

use df_storage::SpanStore;
use df_types::span::{Span, SpanKind, TapSide};
use df_types::trace::{AssembledSpan, Trace};
use df_types::{DurationNs, SpanId};
use std::collections::{HashMap, HashSet};

/// Assembly tunables.
#[derive(Debug, Clone)]
pub struct AssembleConfig {
    /// Iteration cap for the search phase (paper default: 30).
    pub iterations: usize,
    /// Hard cap on trace size (defensive).
    pub max_spans: usize,
    /// Clock tolerance for containment checks.
    pub time_tolerance: DurationNs,
}

impl Default for AssembleConfig {
    fn default() -> Self {
        AssembleConfig {
            iterations: 30,
            max_spans: 10_000,
            time_tolerance: DurationNs::from_micros(100),
        }
    }
}

/// Run Algorithm 1 from `start`.
pub fn assemble_trace(store: &SpanStore, start: SpanId, cfg: &AssembleConfig) -> Trace {
    if store.get(start).is_none() || store.is_tombstoned(start) {
        return Trace::default();
    }
    let start_row = (start.raw() - 1) as u32;

    // ---- Phase 1: frontier span search (lines 1–16) ----
    // `seen` is membership only; `members`/`frontier` are Vecs so discovery
    // order (and therefore the whole phase) is deterministic. Each index
    // key is expanded at most once: after a bucket has been walked every
    // row in it is in `seen`, so re-probing it could add nothing.
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(start_row);
    let mut members: Vec<u32> = vec![start_row];
    let mut frontier: Vec<u32> = vec![start_row];
    let mut keys_systrace: HashSet<u64> = HashSet::new();
    let mut keys_pseudo_thread: HashSet<u64> = HashSet::new();
    let mut keys_x_request: HashSet<u128> = HashSet::new();
    let mut keys_tcp_seq: HashSet<u32> = HashSet::new();
    let mut keys_otel_trace: HashSet<u128> = HashSet::new();
    for _iter in 0..cfg.iterations {
        if members.len() >= cfg.max_spans {
            break; // cap crossed; truncated below
        }
        let mut next: Vec<u32> = Vec::new();
        {
            let mut grow = |rows: &[u32]| {
                for &r in rows {
                    if seen.insert(r) {
                        if store.is_tombstoned(SpanStore::id_at(r)) {
                            continue; // consumed by re-aggregation
                        }
                        next.push(r);
                    }
                }
            };
            for &row in &frontier {
                let s = store.span_at(row).expect("frontier rows exist");
                for v in [s.systrace_id_req, s.systrace_id_resp]
                    .into_iter()
                    .flatten()
                {
                    if keys_systrace.insert(v.raw()) {
                        grow(store.find_by_systrace(v.raw()));
                    }
                }
                if let Some(p) = s.pseudo_thread_id {
                    if keys_pseudo_thread.insert(p.raw()) {
                        grow(store.find_by_pseudo_thread(p.raw()));
                    }
                }
                for v in [s.x_request_id_req, s.x_request_id_resp]
                    .into_iter()
                    .flatten()
                {
                    if keys_x_request.insert(v.0) {
                        grow(store.find_by_x_request(v.0));
                    }
                }
                for v in [s.tcp_seq_req, s.tcp_seq_resp].into_iter().flatten() {
                    if keys_tcp_seq.insert(v) {
                        grow(store.find_by_tcp_seq(v));
                    }
                }
                if let Some(t) = s.otel_trace_id {
                    if keys_otel_trace.insert(t.0) {
                        grow(store.find_by_otel_trace(t.0));
                    }
                }
            }
        }
        if next.is_empty() {
            break; // fixed point (lines 13–14)
        }
        members.extend_from_slice(&next);
        frontier = next;
    }
    let spans = collect_members(store, &members, start, cfg.max_spans);

    // ---- Phase 2: parent assignment (lines 17–24) ----
    let parents = set_parents_indexed(&spans, cfg);

    // ---- Phase 3: sort by time and parent relationship (line 25) ----
    sort_trace(spans, parents)
}

/// Reference formulation of Algorithm 1: Phase 1 re-probes the *entire*
/// span set every iteration and Phase 2 scans all spans for each exchange
/// (rule 14: for each app span). Semantically identical to
/// [`assemble_trace`] — the property tests assert it — but
/// `O(iterations × set × bucket)` / `O(n²)`, so it serves as the
/// differential oracle and the "before" benchmark baseline.
pub fn assemble_trace_reference(store: &SpanStore, start: SpanId, cfg: &AssembleConfig) -> Trace {
    if store.get(start).is_none() || store.is_tombstoned(start) {
        return Trace::default();
    }
    let start_row = (start.raw() - 1) as u32;
    let mut set: HashSet<u32> = HashSet::new();
    set.insert(start_row);
    for _iter in 0..cfg.iterations {
        if set.len() >= cfg.max_spans {
            break;
        }
        let mut found: Vec<u32> = Vec::new();
        for &row in &set {
            let s = store.span_at(row).expect("set rows exist");
            for v in [s.systrace_id_req, s.systrace_id_resp]
                .into_iter()
                .flatten()
            {
                found.extend_from_slice(store.find_by_systrace(v.raw()));
            }
            if let Some(p) = s.pseudo_thread_id {
                found.extend_from_slice(store.find_by_pseudo_thread(p.raw()));
            }
            for v in [s.x_request_id_req, s.x_request_id_resp]
                .into_iter()
                .flatten()
            {
                found.extend_from_slice(store.find_by_x_request(v.0));
            }
            for v in [s.tcp_seq_req, s.tcp_seq_resp].into_iter().flatten() {
                found.extend_from_slice(store.find_by_tcp_seq(v));
            }
            if let Some(t) = s.otel_trace_id {
                found.extend_from_slice(store.find_by_otel_trace(t.0));
            }
        }
        let before = set.len();
        set.extend(
            found
                .into_iter()
                .filter(|&r| !store.is_tombstoned(SpanStore::id_at(r))),
        );
        if set.len() == before {
            break; // fixed point
        }
    }
    let members: Vec<u32> = set.into_iter().collect();
    let spans = collect_members(store, &members, start, cfg.max_spans);
    let parents = set_parents_reference(&spans, cfg);
    sort_trace(spans, parents)
}

/// Materialise the found rows, sorted by `(req_time, span_id)`, truncated
/// deterministically to `max_spans` with the start span always retained.
fn collect_members(
    store: &SpanStore,
    members: &[u32],
    start: SpanId,
    max_spans: usize,
) -> Vec<Span> {
    let spans: Vec<Span> = members
        .iter()
        .filter_map(|&row| store.span_at(row).map(std::borrow::Cow::into_owned))
        .collect();
    sort_and_truncate(spans, start, max_spans)
}

/// Phases 2 and 3 over an already-materialised member set: sort/truncate
/// (retaining `start`), assign parents under the 16 rules, sort the tree.
/// The shared epilogue of every Phase 1 implementation — single-store,
/// sharded, and the distributed cluster coordinator, which gathers member
/// spans from remote nodes and cannot hand back store references.
pub fn assemble_members(spans: Vec<Span>, start: SpanId, cfg: &AssembleConfig) -> Trace {
    let spans = sort_and_truncate(spans, start, cfg.max_spans);
    let parents = set_parents_indexed(&spans, cfg);
    sort_trace(spans, parents)
}

/// Shared Phase-1 epilogue: sort the materialised member spans by
/// `(req_time, span_id)` and truncate deterministically to `max_spans`,
/// always retaining the start span. Used by both the single-store and the
/// sharded assembly paths so their truncation semantics provably agree.
pub(crate) fn sort_and_truncate(
    mut spans: Vec<Span>,
    start: SpanId,
    max_spans: usize,
) -> Vec<Span> {
    spans.sort_by_key(|s| (s.req_time, s.span_id));
    if spans.len() > max_spans {
        let start_pos = spans
            .iter()
            .position(|s| s.span_id == start)
            .expect("start span is a member");
        if start_pos >= max_spans {
            // The start span sorts after the cut: keep it anyway (it is the
            // span the user asked about), dropping one other tail span.
            let start_span = spans.remove(start_pos);
            spans.truncate(max_spans.saturating_sub(1));
            spans.push(start_span);
        } else {
            spans.truncate(max_spans);
        }
    }
    spans
}

/// Exchange identity: the unit one request/response pair forms across all
/// its capture points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExchangeKey {
    /// TCP: the request sequence number (preserved across every L2/3/4 hop
    /// and across L4 gateways — Appendix A).
    Tcp(u32),
    /// UDP / sequence-less: flow + endpoint + coarse time bucket.
    Loose(u64, String, u64),
}

fn exchange_key(s: &Span) -> ExchangeKey {
    match s.tcp_seq_req {
        Some(seq) => ExchangeKey::Tcp(seq),
        None => ExchangeKey::Loose(
            s.flow_id.raw(),
            s.endpoint.clone(),
            s.req_time.as_nanos() / 100_000_000, // 100 ms bucket
        ),
    }
}

fn contains(parent: &Span, child: &Span, tol: DurationNs) -> bool {
    parent.req_time.as_nanos() <= child.req_time.as_nanos() + tol.as_nanos()
        && parent.resp_time.as_nanos() + tol.as_nanos() >= child.resp_time.as_nanos()
}

/// Parent-candidate preference: the tightest container wins — latest
/// `req_time`, ties broken towards the smallest span id. Explicit (rather
/// than scan-order-dependent) so the indexed and reference rule
/// implementations provably agree.
fn better_candidate(spans: &[Span], best: Option<usize>, j: usize) -> Option<usize> {
    match best {
        None => Some(j),
        Some(b) => {
            let (sb, sj) = (&spans[b], &spans[j]);
            if sj.req_time > sb.req_time || (sj.req_time == sb.req_time && sj.span_id < sb.span_id)
            {
                Some(j)
            } else {
                Some(b)
            }
        }
    }
}

/// Exchange grouping shared by both Phase-2 implementations: rules 1–8
/// (the capture ladder) plus the head/member bookkeeping rules 9–12+16
/// need.
struct Exchanges {
    /// Parent edges from the capture ladder.
    parent: HashMap<SpanId, SpanId>,
    /// Ladder-top span index of each exchange.
    heads: Vec<usize>,
    /// Span id → its exchange's head index.
    members: HashMap<SpanId, usize>,
    /// Exchange key → member span indexes.
    by_key: HashMap<ExchangeKey, Vec<usize>>,
}

fn group_exchanges(spans: &[Span]) -> Exchanges {
    let mut by_key: HashMap<ExchangeKey, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.kind == SpanKind::App {
            continue; // app spans join via rules 13–15
        }
        by_key.entry(exchange_key(s)).or_default().push(i);
    }
    let mut parent: HashMap<SpanId, SpanId> = HashMap::new();
    let mut heads: Vec<usize> = Vec::new();
    let mut members: HashMap<SpanId, usize> = HashMap::new();
    for ex in by_key.values() {
        let mut order: Vec<usize> = ex.clone();
        order.sort_by_key(|&i| {
            (
                spans[i].capture.tap_side.path_rank(),
                spans[i].req_time,
                spans[i].span_id,
            )
        });
        for w in order.windows(2) {
            parent.insert(spans[w[1]].span_id, spans[w[0]].span_id);
        }
        let head = order[0];
        heads.push(head);
        for &i in &order {
            members.insert(spans[i].span_id, head);
        }
    }
    // Deterministic head order regardless of hash-map iteration.
    heads.sort_unstable();
    Exchanges {
        parent,
        heads,
        members,
        by_key,
    }
}

/// The probe span for an exchange: its client-process observation if
/// present (it carries the caller's systrace/x-request context), else the
/// ladder head itself.
fn probe_index(spans: &[Span], ex: &Exchanges, head: usize) -> usize {
    ex.by_key
        .get(&exchange_key(&spans[head]))
        .and_then(|members| {
            members
                .iter()
                .find(|&&i| spans[i].capture.tap_side == TapSide::ClientProcess)
                .copied()
        })
        .unwrap_or(head)
}

/// Side indexes over the parent candidates (server-side process/app spans)
/// so rules 9–12, 14 and 16 are hash lookups.
#[derive(Default)]
struct CandidateIndex {
    by_systrace_req: HashMap<u64, Vec<usize>>,
    by_systrace_resp: HashMap<u64, Vec<usize>>,
    by_pseudo_thread: HashMap<u64, Vec<usize>>,
    /// Both request- and response-side X-Request-IDs, deduped per span.
    by_x_request: HashMap<u128, Vec<usize>>,
    by_otel_trace: HashMap<u128, Vec<usize>>,
    /// Rule 14: server-process (non-app) spans by third-party trace id.
    server_process_by_otel_trace: HashMap<u128, Vec<usize>>,
}

fn build_candidate_index(spans: &[Span]) -> CandidateIndex {
    let mut idx = CandidateIndex::default();
    for (j, s) in spans.iter().enumerate() {
        if s.kind != SpanKind::App && s.capture.tap_side == TapSide::ServerProcess {
            if let Some(t) = s.otel_trace_id {
                idx.server_process_by_otel_trace
                    .entry(t.0)
                    .or_default()
                    .push(j);
            }
        }
        if !matches!(
            s.capture.tap_side,
            TapSide::ServerProcess | TapSide::ServerApp
        ) {
            continue;
        }
        if let Some(v) = s.systrace_id_req {
            idx.by_systrace_req.entry(v.raw()).or_default().push(j);
        }
        if let Some(v) = s.systrace_id_resp {
            idx.by_systrace_resp.entry(v.raw()).or_default().push(j);
        }
        if let Some(v) = s.pseudo_thread_id {
            idx.by_pseudo_thread.entry(v.raw()).or_default().push(j);
        }
        if let Some(v) = s.x_request_id_req {
            idx.by_x_request.entry(v.0).or_default().push(j);
        }
        if let Some(v) = s.x_request_id_resp {
            if Some(v) != s.x_request_id_req {
                idx.by_x_request.entry(v.0).or_default().push(j);
            }
        }
        if let Some(t) = s.otel_trace_id {
            idx.by_otel_trace.entry(t.0).or_default().push(j);
        }
    }
    idx
}

/// Phase 2 via side indexes: rules 9–12 and 16 probe [`CandidateIndex`]
/// with the exchange's own context values; rule 14 probes the
/// server-process index. Hash lookups replace the full-set scans of
/// [`set_parents_reference`].
pub(crate) fn set_parents_indexed(spans: &[Span], cfg: &AssembleConfig) -> HashMap<SpanId, SpanId> {
    let ex = group_exchanges(spans);
    let mut parent = ex.parent.clone();
    let cand = build_candidate_index(spans);

    // Rules 9–12 + 16: find a cross-exchange parent for each exchange head.
    for &head in &ex.heads {
        let head_id = spans[head].span_id;
        let probe_span = &spans[probe_index(spans, &ex, head)];
        let mut best: Option<usize> = None;
        let consider = |j: usize, best: &mut Option<usize>| {
            if ex.members.get(&spans[j].span_id) == Some(&head) {
                return; // same exchange
            }
            *best = better_candidate(spans, *best, j);
        };
        // Rule 9: request-chain systrace.
        if let Some(v) = probe_span.systrace_id_req {
            for &j in cand.by_systrace_req.get(&v.raw()).into_iter().flatten() {
                consider(j, &mut best);
            }
        }
        // Rule 10: response-chain systrace.
        if let Some(v) = probe_span.systrace_id_resp {
            for &j in cand.by_systrace_resp.get(&v.raw()).into_iter().flatten() {
                consider(j, &mut best);
            }
        }
        // Rule 11: pseudo-thread + containment.
        if let Some(v) = probe_span.pseudo_thread_id {
            for &j in cand.by_pseudo_thread.get(&v.raw()).into_iter().flatten() {
                if contains(&spans[j], probe_span, cfg.time_tolerance) {
                    consider(j, &mut best);
                }
            }
        }
        // Rule 12: X-Request-ID (either side, cross-matched) + containment.
        let mut xkeys = [None, None];
        if let Some(v) = probe_span.x_request_id_req {
            xkeys[0] = Some(v.0);
        }
        if let Some(v) = probe_span.x_request_id_resp {
            if xkeys[0] != Some(v.0) {
                xkeys[1] = Some(v.0);
            }
        }
        for v in xkeys.into_iter().flatten() {
            for &j in cand.by_x_request.get(&v).into_iter().flatten() {
                if contains(&spans[j], probe_span, cfg.time_tolerance) {
                    consider(j, &mut best);
                }
            }
        }
        // Rule 16: shared third-party trace id + containment.
        if let Some(t) = probe_span.otel_trace_id {
            for &j in cand.by_otel_trace.get(&t.0).into_iter().flatten() {
                if contains(&spans[j], probe_span, cfg.time_tolerance) {
                    consider(j, &mut best);
                }
            }
        }
        if let Some(b) = best {
            parent.insert(head_id, spans[b].span_id);
        }
    }

    // Rules 13 + 15 (app-span maps) shared with the reference.
    let by_otel_span = app_spans_by_otel_id(spans);
    apply_rule13(spans, &ex.heads, &by_otel_span, &mut parent);
    for (i, s) in spans.iter().enumerate() {
        if s.kind != SpanKind::App {
            continue;
        }
        if apply_rule15(spans, i, &by_otel_span, &mut parent) {
            continue;
        }
        // Rule 14 via the server-process index.
        let mut best: Option<usize> = None;
        if let Some(t) = s.otel_trace_id {
            for &j in cand
                .server_process_by_otel_trace
                .get(&t.0)
                .into_iter()
                .flatten()
            {
                if j != i && contains(&spans[j], s, cfg.time_tolerance) {
                    best = better_candidate(spans, best, j);
                }
            }
        }
        if let Some(b) = best {
            parent.insert(s.span_id, spans[b].span_id);
        }
    }

    drop_cycles(spans, parent)
}

/// Phase 2 as originally formulated: a scan over all spans per exchange
/// head (rules 9–12, 16) and per app span (rule 14). Kept as the
/// differential oracle for [`set_parents_indexed`].
fn set_parents_reference(spans: &[Span], cfg: &AssembleConfig) -> HashMap<SpanId, SpanId> {
    let ex = group_exchanges(spans);
    let mut parent = ex.parent.clone();

    for &head in &ex.heads {
        let head_id = spans[head].span_id;
        let probe_span = &spans[probe_index(spans, &ex, head)];
        let mut best: Option<usize> = None;
        for (j, cand) in spans.iter().enumerate() {
            if ex.members.get(&cand.span_id) == Some(&head) {
                continue;
            }
            if !matches!(
                cand.capture.tap_side,
                TapSide::ServerProcess | TapSide::ServerApp
            ) {
                continue;
            }
            let m = |a: Option<df_types::SysTraceId>, b: Option<df_types::SysTraceId>| matches!((a, b), (Some(x), Some(y)) if x == y);
            let mx = |a: Option<df_types::XRequestId>, b: Option<df_types::XRequestId>| matches!((a, b), (Some(x), Some(y)) if x == y);
            let rule9 = m(cand.systrace_id_req, probe_span.systrace_id_req);
            let rule10 = m(cand.systrace_id_resp, probe_span.systrace_id_resp);
            let rule11 = cand.pseudo_thread_id.is_some()
                && cand.pseudo_thread_id == probe_span.pseudo_thread_id
                && contains(cand, probe_span, cfg.time_tolerance);
            let rule12 = (mx(cand.x_request_id_req, probe_span.x_request_id_req)
                || mx(cand.x_request_id_resp, probe_span.x_request_id_resp)
                || mx(cand.x_request_id_req, probe_span.x_request_id_resp)
                || mx(cand.x_request_id_resp, probe_span.x_request_id_req))
                && contains(cand, probe_span, cfg.time_tolerance);
            let rule16 = cand.otel_trace_id.is_some()
                && cand.otel_trace_id == probe_span.otel_trace_id
                && contains(cand, probe_span, cfg.time_tolerance);
            if rule9 || rule10 || rule11 || rule12 || rule16 {
                best = better_candidate(spans, best, j);
            }
        }
        if let Some(b) = best {
            parent.insert(head_id, spans[b].span_id);
        }
    }

    let by_otel_span = app_spans_by_otel_id(spans);
    apply_rule13(spans, &ex.heads, &by_otel_span, &mut parent);
    for (i, s) in spans.iter().enumerate() {
        if s.kind != SpanKind::App {
            continue;
        }
        if apply_rule15(spans, i, &by_otel_span, &mut parent) {
            continue;
        }
        // Rule 14: scan for a containing server-process span.
        let mut best: Option<usize> = None;
        for (j, cand) in spans.iter().enumerate() {
            if j == i || cand.kind == SpanKind::App {
                continue;
            }
            if cand.capture.tap_side == TapSide::ServerProcess
                && cand.otel_trace_id.is_some()
                && cand.otel_trace_id == s.otel_trace_id
                && contains(cand, s, cfg.time_tolerance)
            {
                best = better_candidate(spans, best, j);
            }
        }
        if let Some(b) = best {
            parent.insert(s.span_id, spans[b].span_id);
        }
    }

    drop_cycles(spans, parent)
}

fn app_spans_by_otel_id(spans: &[Span]) -> HashMap<u64, usize> {
    spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == SpanKind::App)
        .filter_map(|(i, s)| s.otel_span_id.map(|id| (id.0, i)))
        .collect()
}

/// Rule 13: the exchange carried an app span's id in its headers → that
/// app span is the (tighter) parent of the exchange head.
fn apply_rule13(
    spans: &[Span],
    heads: &[usize],
    by_otel_span: &HashMap<u64, usize>,
    parent: &mut HashMap<SpanId, SpanId>,
) {
    for &head in heads {
        let head_span = &spans[head];
        if let Some(sid) = head_span.otel_span_id {
            if let Some(&app) = by_otel_span.get(&sid.0) {
                parent.insert(head_span.span_id, spans[app].span_id);
            }
        }
    }
}

/// Rule 15: app ancestry by explicit parent span id. Returns whether the
/// rule fired (later rules are then skipped for this span).
fn apply_rule15(
    spans: &[Span],
    i: usize,
    by_otel_span: &HashMap<u64, usize>,
    parent: &mut HashMap<SpanId, SpanId>,
) -> bool {
    if let Some(pid) = spans[i].otel_parent_span_id {
        if let Some(&p) = by_otel_span.get(&pid.0) {
            if p != i {
                parent.insert(spans[i].span_id, spans[p].span_id);
                return true;
            }
        }
    }
    false
}

/// Cycle guard: drop any edge that closes a loop.
/// Drop every parent edge whose child lies on a cycle. Each span has at most
/// one parent, so the edges form a functional graph: one colouring walk per
/// unvisited node resolves all cycles in O(n) total, instead of re-walking
/// the full ancestor chain per edge (quadratic on deep call chains).
fn drop_cycles(_spans: &[Span], parent: HashMap<SpanId, SpanId>) -> HashMap<SpanId, SpanId> {
    // 0 = unvisited, 1 = on the current walk, 2 = resolved.
    let mut color: HashMap<SpanId, u8> = HashMap::with_capacity(parent.len());
    let mut cyclic: HashSet<SpanId> = HashSet::new();
    for &start in parent.keys() {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = Some(start);
        while let Some(c) = cur {
            match color.get(&c).copied().unwrap_or(0) {
                0 => {
                    color.insert(c, 1);
                    path.push(c);
                    cur = parent.get(&c).copied();
                }
                1 => {
                    // Closed a new cycle: everything from `c` onward is on it.
                    let pos = path.iter().position(|&p| p == c).unwrap();
                    cyclic.extend(&path[pos..]);
                    break;
                }
                // Joined an already-resolved walk: no new cycle here.
                _ => break,
            }
        }
        for p in path {
            color.insert(p, 2);
        }
    }
    parent
        .into_iter()
        .filter(|(child, _)| !cyclic.contains(child))
        .collect()
}

pub(crate) fn sort_trace(spans: Vec<Span>, parents: HashMap<SpanId, SpanId>) -> Trace {
    let index: HashMap<SpanId, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span_id, i))
        .collect();
    let mut children: HashMap<Option<SpanId>, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        // A parent outside the assembled set degrades to root.
        let p = parents
            .get(&s.span_id)
            .copied()
            .filter(|p| index.contains_key(p));
        children.entry(p).or_default().push(i);
    }
    for v in children.values_mut() {
        v.sort_by_key(|&i| (spans[i].req_time, spans[i].span_id));
    }
    // DFS parents-first.
    let mut order = Vec::with_capacity(spans.len());
    let mut stack: Vec<usize> = children
        .get(&None)
        .cloned()
        .unwrap_or_default()
        .into_iter()
        .rev()
        .collect();
    let mut visited = vec![false; spans.len()];
    while let Some(i) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        order.push(i);
        if let Some(kids) = children.get(&Some(spans[i].span_id)) {
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        }
    }
    // Any unvisited spans (shouldn't happen post cycle-guard) appended.
    for (i, seen) in visited.iter().enumerate() {
        if !seen {
            order.push(i);
        }
    }
    let id_of = |i: usize| spans[i].span_id;
    let assembled: Vec<AssembledSpan> = order
        .iter()
        .map(|&i| AssembledSpan {
            parent: parents
                .get(&id_of(i))
                .copied()
                .filter(|p| index.contains_key(p)),
            span: spans[i].clone(),
        })
        .collect();
    Trace { spans: assembled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::ids::*;
    use df_types::l7::L7Protocol;
    use df_types::net::FiveTuple;
    use df_types::span::{CapturePoint, SpanStatus};
    use df_types::tags::TagSet;
    use df_types::TimeNs;
    use std::net::Ipv4Addr;

    fn base_span(tap: TapSide, req: u64, resp: u64) -> Span {
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: tap,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".to_string(),
            req_time: TimeNs(req),
            resp_time: TimeNs(resp),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 1,
            resp_bytes: 1,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    /// Figure-1-shaped scenario over two exchanges:
    /// user → A (exchange 1, seq 100), A → B (exchange 2, seq 200),
    /// each observed at client and server process plus a node NIC.
    fn figure1_store() -> (SpanStore, SpanId) {
        let mut st = SpanStore::new();
        // Exchange 1: user → A. Only A's server span (user is external).
        let mut a_server = base_span(TapSide::ServerProcess, 0, 100);
        a_server.tcp_seq_req = Some(100);
        a_server.tcp_seq_resp = Some(150);
        a_server.systrace_id_req = Some(SysTraceId(1));
        a_server.systrace_id_resp = Some(SysTraceId(2));
        let a_id = st.insert(a_server);

        // Exchange 2: A → B.
        let mut a_client = base_span(TapSide::ClientProcess, 10, 80);
        a_client.tcp_seq_req = Some(200);
        a_client.tcp_seq_resp = Some(250);
        a_client.systrace_id_req = Some(SysTraceId(1)); // chained from A's ingress
        a_client.systrace_id_resp = Some(SysTraceId(2));
        let ac_id = st.insert(a_client);

        let mut nic = base_span(TapSide::ClientNodeNic, 12, 78);
        nic.kind = SpanKind::Net;
        nic.tcp_seq_req = Some(200);
        nic.tcp_seq_resp = Some(250);
        let nic_id = st.insert(nic);

        let mut b_server = base_span(TapSide::ServerProcess, 20, 70);
        b_server.tcp_seq_req = Some(200);
        b_server.tcp_seq_resp = Some(250);
        b_server.systrace_id_req = Some(SysTraceId(10));
        b_server.systrace_id_resp = Some(SysTraceId(11));
        let bs_id = st.insert(b_server);

        let _ = (ac_id, nic_id, bs_id);
        (st, a_id)
    }

    #[test]
    fn search_reaches_every_related_span_from_any_start() {
        let (st, a_id) = figure1_store();
        let trace = assemble_trace(&st, a_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 4, "all four spans joined: {trace:#?}");
        assert!(trace.is_well_formed());
        // Starting from a different span reaches the same set.
        let trace2 = assemble_trace(&st, SpanId(4), &AssembleConfig::default());
        assert_eq!(trace2.len(), 4);
    }

    #[test]
    fn parents_follow_capture_ladder_and_systrace() {
        let (st, a_id) = figure1_store();
        let trace = assemble_trace(&st, a_id, &AssembleConfig::default());
        let parent_of = |id: u64| {
            trace
                .spans
                .iter()
                .find(|s| s.span.span_id == SpanId(id))
                .unwrap()
                .parent
        };
        // A's server span is the root.
        assert_eq!(parent_of(1), None);
        // Rule 9: A's client span hangs off A's server span via systrace.
        assert_eq!(parent_of(2), Some(SpanId(1)));
        // Rules 1–8: NIC net span chains under the client process span...
        assert_eq!(parent_of(3), Some(SpanId(2)));
        // ...and B's server span chains under the NIC span.
        assert_eq!(parent_of(4), Some(SpanId(3)));
        // Sorted parents-first.
        assert_eq!(trace.spans[0].span.span_id, SpanId(1));
    }

    #[test]
    fn unrelated_spans_stay_out_of_the_trace() {
        let (mut st, a_id) = figure1_store();
        let mut noise = base_span(TapSide::ServerProcess, 1000, 2000);
        noise.tcp_seq_req = Some(999);
        noise.systrace_id_req = Some(SysTraceId(77));
        st.insert(noise);
        let trace = assemble_trace(&st, a_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn iteration_cap_bounds_the_search() {
        // A long chain: exchange i links to i+1 by systrace. With a cap of
        // 2 iterations only a prefix is found.
        let mut st = SpanStore::new();
        let mut first = None;
        for i in 0..20u64 {
            let mut s = base_span(TapSide::ServerProcess, i * 10, i * 10 + 200);
            s.tcp_seq_req = Some(1000 + i as u32);
            s.systrace_id_req = Some(SysTraceId(i + 1));
            s.systrace_id_resp = Some(SysTraceId(i + 2)); // overlaps next span's req
            let id = st.insert(s);
            first.get_or_insert(id);
        }
        let small = assemble_trace(
            &st,
            first.unwrap(),
            &AssembleConfig {
                iterations: 2,
                ..Default::default()
            },
        );
        let full = assemble_trace(&st, first.unwrap(), &AssembleConfig::default());
        assert!(small.len() < full.len());
        assert_eq!(full.len(), 20);
    }

    #[test]
    fn x_request_id_links_across_l7_proxy() {
        // Proxy terminates TCP: two exchanges with different seqs, linked
        // only by X-Request-ID (rule 12).
        let mut st = SpanStore::new();
        let xid = XRequestId(0xabc);
        let mut downstream = base_span(TapSide::ServerProcess, 0, 100);
        downstream.tcp_seq_req = Some(1);
        downstream.x_request_id_resp = Some(xid);
        let d_id = st.insert(downstream);
        let mut upstream = base_span(TapSide::ClientProcess, 10, 90);
        upstream.tcp_seq_req = Some(500);
        upstream.x_request_id_req = Some(xid);
        st.insert(upstream);
        let trace = assemble_trace(&st, d_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let up = trace
            .spans
            .iter()
            .find(|s| s.span.capture.tap_side == TapSide::ClientProcess)
            .unwrap();
        assert_eq!(up.parent, Some(d_id));
    }

    #[test]
    fn pseudo_thread_links_coroutine_exchanges() {
        let mut st = SpanStore::new();
        let pth = PseudoThreadId(5);
        let mut server = base_span(TapSide::ServerProcess, 0, 100);
        server.tcp_seq_req = Some(1);
        server.pseudo_thread_id = Some(pth);
        let s_id = st.insert(server);
        let mut client = base_span(TapSide::ClientProcess, 20, 60);
        client.tcp_seq_req = Some(2);
        client.pseudo_thread_id = Some(pth);
        st.insert(client);
        let trace = assemble_trace(&st, s_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let c = trace
            .spans
            .iter()
            .find(|s| s.span.capture.tap_side == TapSide::ClientProcess)
            .unwrap();
        assert_eq!(c.parent, Some(s_id), "rule 11");
    }

    #[test]
    fn otel_app_spans_interleave_with_sys_spans() {
        // App span (client side) → its id travels in headers → sys exchange
        // carries otel_span_id → rule 13 makes the app span the parent.
        let mut st = SpanStore::new();
        let tid = OtelTraceId(0x11);
        let app_sid = OtelSpanId(0x22);
        let mut app = base_span(TapSide::ClientApp, 0, 100);
        app.kind = SpanKind::App;
        app.otel_trace_id = Some(tid);
        app.otel_span_id = Some(app_sid);
        let app_id = st.insert(app);
        let mut sys = base_span(TapSide::ClientProcess, 10, 90);
        sys.tcp_seq_req = Some(5);
        sys.otel_trace_id = Some(tid);
        sys.otel_span_id = Some(app_sid);
        st.insert(sys);
        let trace = assemble_trace(&st, app_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let sys_assembled = trace
            .spans
            .iter()
            .find(|s| s.span.kind == SpanKind::Sys)
            .unwrap();
        assert_eq!(sys_assembled.parent, Some(app_id), "rule 13");
    }

    #[test]
    fn app_span_ancestry_rule15() {
        let mut st = SpanStore::new();
        let tid = OtelTraceId(0x99);
        let mut parent_app = base_span(TapSide::ServerApp, 0, 100);
        parent_app.kind = SpanKind::App;
        parent_app.otel_trace_id = Some(tid);
        parent_app.otel_span_id = Some(OtelSpanId(1));
        let p_id = st.insert(parent_app);
        let mut child_app = base_span(TapSide::ClientApp, 10, 90);
        child_app.kind = SpanKind::App;
        child_app.otel_trace_id = Some(tid);
        child_app.otel_span_id = Some(OtelSpanId(2));
        child_app.otel_parent_span_id = Some(OtelSpanId(1));
        st.insert(child_app);
        let trace = assemble_trace(&st, p_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let child = trace
            .spans
            .iter()
            .find(|s| s.span.otel_span_id == Some(OtelSpanId(2)))
            .unwrap();
        assert_eq!(child.parent, Some(p_id));
    }

    #[test]
    fn missing_start_span_yields_empty_trace() {
        let st = SpanStore::new();
        let t = assemble_trace(&st, SpanId(42), &AssembleConfig::default());
        assert!(t.is_empty());
    }

    #[test]
    fn assembled_traces_are_always_well_formed() {
        let (st, a_id) = figure1_store();
        for start in 1..=4u64 {
            let t = assemble_trace(&st, SpanId(start), &AssembleConfig::default());
            assert!(t.is_well_formed(), "start {start}");
        }
        let _ = a_id;
    }

    #[test]
    fn tombstoned_spans_never_reappear_in_traces() {
        // Re-aggregation consumed a ResponseOnly fragment: it is
        // tombstoned, and even though its index entries still resolve, the
        // assembled trace must not contain it.
        let (mut st, a_id) = figure1_store();
        let mut fragment = base_span(TapSide::ServerProcess, 30, 60);
        fragment.status = SpanStatus::ResponseOnly;
        fragment.tcp_seq_resp = Some(200); // links into exchange 2
        let frag_id = st.insert(fragment);
        // Before tombstoning it is discoverable.
        let before = assemble_trace(&st, a_id, &AssembleConfig::default());
        assert!(before.spans.iter().any(|s| s.span.span_id == frag_id));
        st.tombstone(frag_id);
        for impl_name in ["frontier", "reference"] {
            let t = match impl_name {
                "frontier" => assemble_trace(&st, a_id, &AssembleConfig::default()),
                _ => assemble_trace_reference(&st, a_id, &AssembleConfig::default()),
            };
            assert_eq!(t.len(), 4, "{impl_name}");
            assert!(
                t.spans.iter().all(|s| s.span.span_id != frag_id),
                "{impl_name}: tombstoned fragment reappeared"
            );
        }
        // A tombstoned start span yields an empty trace.
        let t = assemble_trace(&st, frag_id, &AssembleConfig::default());
        assert!(t.is_empty());
    }

    #[test]
    fn truncation_is_deterministic_and_keeps_start() {
        // 50 spans all share one systrace id; cap at 10. The kept set must
        // be the 10 earliest by (req_time, span_id) — regardless of hash
        // iteration order — except the start span is always retained.
        let mut st = SpanStore::new();
        let mut ids = Vec::new();
        for i in 0..50u64 {
            let mut s = base_span(TapSide::ServerProcess, 1000 - i * 10, 2000);
            s.tcp_seq_req = Some(100 + i as u32);
            s.systrace_id_req = Some(SysTraceId(7));
            ids.push(st.insert(s));
        }
        let cfg = AssembleConfig {
            max_spans: 10,
            ..Default::default()
        };
        // Start from the EARLIEST span (req_time 510 = id 50): it is inside
        // the cut, so the trace is exactly the 10 earliest spans.
        let start_early = ids[49];
        let t = assemble_trace(&st, start_early, &cfg);
        assert_eq!(t.len(), 10);
        let mut got: Vec<SpanId> = t.spans.iter().map(|s| s.span.span_id).collect();
        got.sort_unstable();
        let want: Vec<SpanId> = (41..=50).map(SpanId).collect(); // latest ids = earliest times
        assert_eq!(got, want);
        // Re-running yields the identical set (determinism).
        let t2 = assemble_trace(&st, start_early, &cfg);
        let got2: Vec<SpanId> = t2.spans.iter().map(|s| s.span.span_id).collect();
        let mut got2 = got2;
        got2.sort_unstable();
        assert_eq!(got, got2);
        // Start from the LATEST span (req_time 1000 = id 1): it sorts after
        // the cut but must still be in the trace.
        let start_late = ids[0];
        let t3 = assemble_trace(&st, start_late, &cfg);
        assert_eq!(t3.len(), 10);
        assert!(t3.spans.iter().any(|s| s.span.span_id == start_late));
    }

    #[test]
    fn frontier_and_reference_agree_on_figure1() {
        let (st, _) = figure1_store();
        for start in 1..=4u64 {
            let a = assemble_trace(&st, SpanId(start), &AssembleConfig::default());
            let b = assemble_trace_reference(&st, SpanId(start), &AssembleConfig::default());
            let edges = |t: &Trace| -> Vec<(SpanId, Option<SpanId>)> {
                let mut e: Vec<_> = t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
                e.sort_unstable();
                e
            };
            assert_eq!(edges(&a), edges(&b), "start {start}");
        }
    }
}
