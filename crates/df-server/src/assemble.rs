//! Algorithm 1 — iterative trace assembling (paper §3.3.2).
//!
//! Phase 1 (lines 1–16): starting from a user-chosen span, repeatedly
//! expand the span set through the store's implicit-context indexes
//! (systrace ids, pseudo-thread ids, X-Request-IDs, TCP sequences,
//! third-party trace ids) until a fixed point or the iteration cap
//! (default 30, like the paper).
//!
//! Phase 2 (lines 17–24): set each span's parent under **16 rules** keyed on
//! collection location, start/finish time, span type and message type:
//!
//! * **Rules 1–8 — the capture ladder.** Spans of the *same exchange*
//!   (same request TCP sequence; UDP falls back to flow+endpoint+time) are
//!   chained along the client→server capture path:
//!   `c-app → c → c-pod → c-nd → c-hv → gw → s-hv → s-nd → s-pod → s`.
//!   Each capture point's span is the parent of the next one down the path.
//!   (The paper's prose states the client/server parent direction the other
//!   way round for its example; we nest along the request path so traces
//!   render as Fig. 1 — outermost span first. The association content is
//!   identical.)
//! * **Rule 9** — request-chain systrace: a server-process span whose
//!   *request* systrace id equals an exchange's client-process request
//!   systrace id is that exchange's parent (the handler made the call).
//! * **Rule 10** — response-chain systrace: same, via response systrace ids.
//! * **Rule 11** — pseudo-thread: shared pseudo-thread id plus time
//!   containment (coroutine runtimes).
//! * **Rule 12** — X-Request-ID: shared proxy request id plus containment
//!   (cross-thread proxies, L7 gateways).
//! * **Rule 13** — third-party client span: an app span is the parent of
//!   the exchange whose messages carried that span's id in their headers.
//! * **Rule 14** — third-party server span: a server-process span is the
//!   parent of an app span it contains with the same trace id.
//! * **Rule 15** — third-party ancestry: app span A is the child of app
//!   span B when `A.parent_span_id == B.span_id`.
//! * **Rule 16** — fallback: same third-party trace id, tightest time
//!   containment.
//!
//! Phase 3 (line 25): sort parents-first, siblings by request time.

use df_storage::SpanStore;
use df_types::span::{Span, SpanKind, TapSide};
use df_types::trace::{AssembledSpan, Trace};
use df_types::{DurationNs, SpanId};
use std::collections::{HashMap, HashSet};

/// Assembly tunables.
#[derive(Debug, Clone)]
pub struct AssembleConfig {
    /// Iteration cap for the search phase (paper default: 30).
    pub iterations: usize,
    /// Hard cap on trace size (defensive).
    pub max_spans: usize,
    /// Clock tolerance for containment checks.
    pub time_tolerance: DurationNs,
}

impl Default for AssembleConfig {
    fn default() -> Self {
        AssembleConfig {
            iterations: 30,
            max_spans: 10_000,
            time_tolerance: DurationNs::from_micros(100),
        }
    }
}

/// Run Algorithm 1 from `start`.
pub fn assemble_trace(store: &SpanStore, start: SpanId, cfg: &AssembleConfig) -> Trace {
    let Some(_) = store.get(start) else {
        return Trace::default();
    };
    // ---- Phase 1: iterative span search (lines 1–16) ----
    let mut set: HashSet<SpanId> = HashSet::new();
    set.insert(start);
    for _iter in 0..cfg.iterations {
        let mut found: HashSet<SpanId> = HashSet::new();
        for id in &set {
            let Some(s) = store.get(*id) else { continue };
            for v in [s.systrace_id_req, s.systrace_id_resp].into_iter().flatten() {
                found.extend(store.find_by_systrace(v.raw()));
            }
            if let Some(p) = s.pseudo_thread_id {
                found.extend(store.find_by_pseudo_thread(p.raw()));
            }
            for v in [s.x_request_id_req, s.x_request_id_resp].into_iter().flatten() {
                found.extend(store.find_by_x_request(v.0));
            }
            for v in [s.tcp_seq_req, s.tcp_seq_resp].into_iter().flatten() {
                found.extend(store.find_by_tcp_seq(v));
            }
            if let Some(t) = s.otel_trace_id {
                found.extend(store.find_by_otel_trace(t.0));
            }
        }
        let before = set.len();
        set.extend(found);
        if set.len() == before || set.len() >= cfg.max_spans {
            break; // fixed point (lines 13–14) or cap
        }
    }
    let mut spans: Vec<Span> = set
        .iter()
        .filter_map(|id| store.get(*id).cloned())
        .take(cfg.max_spans)
        .collect();
    spans.sort_by_key(|s| (s.req_time, s.span_id));

    // ---- Phase 2: parent assignment (lines 17–24) ----
    let parents = set_parents(&spans, cfg);

    // ---- Phase 3: sort by time and parent relationship (line 25) ----
    sort_trace(spans, parents)
}

/// Exchange identity: the unit one request/response pair forms across all
/// its capture points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExchangeKey {
    /// TCP: the request sequence number (preserved across every L2/3/4 hop
    /// and across L4 gateways — Appendix A).
    Tcp(u32),
    /// UDP / sequence-less: flow + endpoint + coarse time bucket.
    Loose(u64, String, u64),
}

fn exchange_key(s: &Span) -> ExchangeKey {
    match s.tcp_seq_req {
        Some(seq) => ExchangeKey::Tcp(seq),
        None => ExchangeKey::Loose(
            s.flow_id.raw(),
            s.endpoint.clone(),
            s.req_time.as_nanos() / 100_000_000, // 100 ms bucket
        ),
    }
}

fn contains(parent: &Span, child: &Span, tol: DurationNs) -> bool {
    parent.req_time.as_nanos() <= child.req_time.as_nanos() + tol.as_nanos()
        && parent.resp_time.as_nanos() + tol.as_nanos() >= child.resp_time.as_nanos()
}

fn set_parents(spans: &[Span], cfg: &AssembleConfig) -> HashMap<SpanId, SpanId> {
    let mut parent: HashMap<SpanId, SpanId> = HashMap::new();

    // Group into exchanges.
    let mut exchanges: HashMap<ExchangeKey, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.kind == SpanKind::App {
            continue; // app spans join via rules 13–15
        }
        exchanges.entry(exchange_key(s)).or_default().push(i);
    }

    // Rules 1–8: chain each exchange along the capture ladder.
    let mut exchange_heads: Vec<usize> = Vec::new();
    let mut exchange_members: HashMap<SpanId, usize> = HashMap::new(); // span → head index
    for members in exchanges.values() {
        let mut order: Vec<usize> = members.clone();
        order.sort_by_key(|&i| {
            (
                spans[i].capture.tap_side.path_rank(),
                spans[i].req_time,
                spans[i].span_id,
            )
        });
        for w in order.windows(2) {
            parent.insert(spans[w[1]].span_id, spans[w[0]].span_id);
        }
        let head = order[0];
        exchange_heads.push(head);
        for &i in &order {
            exchange_members.insert(spans[i].span_id, head);
        }
    }

    // Rules 9–12 + 16: find a cross-exchange parent for each exchange head.
    for &head in &exchange_heads {
        // Probe span: the exchange's client-process span if present, else
        // the head itself (it carries the systrace/x-request context).
        let head_id = spans[head].span_id;
        let probe = exchanges
            .get(&exchange_key(&spans[head]))
            .and_then(|members| {
                members
                    .iter()
                    .find(|&&i| spans[i].capture.tap_side == TapSide::ClientProcess)
                    .copied()
            })
            .unwrap_or(head);
        let probe_span = &spans[probe];
        let mut best: Option<usize> = None;
        for (j, cand) in spans.iter().enumerate() {
            // A parent candidate is a server-side process/app observation of
            // a DIFFERENT exchange.
            if exchange_members.get(&cand.span_id) == Some(&head) {
                continue;
            }
            if !matches!(
                cand.capture.tap_side,
                TapSide::ServerProcess | TapSide::ServerApp
            ) {
                continue;
            }
            let m = |a: Option<df_types::SysTraceId>, b: Option<df_types::SysTraceId>| {
                matches!((a, b), (Some(x), Some(y)) if x == y)
            };
            let mx = |a: Option<df_types::XRequestId>, b: Option<df_types::XRequestId>| {
                matches!((a, b), (Some(x), Some(y)) if x == y)
            };
            let rule9 = m(cand.systrace_id_req, probe_span.systrace_id_req);
            let rule10 = m(cand.systrace_id_resp, probe_span.systrace_id_resp);
            let rule11 = cand.pseudo_thread_id.is_some()
                && cand.pseudo_thread_id == probe_span.pseudo_thread_id
                && contains(cand, probe_span, cfg.time_tolerance);
            let rule12 = (mx(cand.x_request_id_req, probe_span.x_request_id_req)
                || mx(cand.x_request_id_resp, probe_span.x_request_id_resp)
                || mx(cand.x_request_id_req, probe_span.x_request_id_resp)
                || mx(cand.x_request_id_resp, probe_span.x_request_id_req))
                && contains(cand, probe_span, cfg.time_tolerance);
            let rule16 = cand.otel_trace_id.is_some()
                && cand.otel_trace_id == probe_span.otel_trace_id
                && contains(cand, probe_span, cfg.time_tolerance);
            if rule9 || rule10 || rule11 || rule12 || rule16 {
                // Tightest container wins.
                best = match best {
                    Some(b) if spans[b].req_time >= cand.req_time => Some(b),
                    _ => Some(j),
                };
            }
        }
        if let Some(b) = best {
            parent.insert(head_id, spans[b].span_id);
        }
    }

    // Rules 13–15: third-party (app) spans.
    let by_otel_span: HashMap<u64, usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == SpanKind::App)
        .filter_map(|(i, s)| s.otel_span_id.map(|id| (id.0, i)))
        .collect();
    for &head in &exchange_heads {
        // Rule 13: the exchange carried an app span's id in its headers →
        // that app span is the (tighter) parent of the exchange head.
        let head_span = &spans[head];
        if let Some(sid) = head_span.otel_span_id {
            if let Some(&app) = by_otel_span.get(&sid.0) {
                parent.insert(head_span.span_id, spans[app].span_id);
            }
        }
    }
    for (i, s) in spans.iter().enumerate() {
        if s.kind != SpanKind::App {
            continue;
        }
        // Rule 15: app ancestry by explicit parent span id.
        if let Some(pid) = s.otel_parent_span_id {
            if let Some(&p) = by_otel_span.get(&pid.0) {
                if p != i {
                    parent.insert(s.span_id, spans[p].span_id);
                    continue;
                }
            }
        }
        // Rule 14: a server-process span containing this app span with the
        // same trace id adopts it.
        let mut best: Option<usize> = None;
        for (j, cand) in spans.iter().enumerate() {
            if j == i || cand.kind == SpanKind::App {
                continue;
            }
            if cand.capture.tap_side == TapSide::ServerProcess
                && cand.otel_trace_id.is_some()
                && cand.otel_trace_id == s.otel_trace_id
                && contains(cand, s, cfg.time_tolerance)
            {
                best = match best {
                    Some(b) if spans[b].req_time >= cand.req_time => Some(b),
                    _ => Some(j),
                };
            }
        }
        if let Some(b) = best {
            parent.insert(s.span_id, spans[b].span_id);
        }
    }

    // Cycle guard: drop any edge that closes a loop.
    let mut acyclic: HashMap<SpanId, SpanId> = HashMap::new();
    for (&child, &p) in &parent {
        let mut cur = Some(p);
        let mut ok = true;
        let mut hops = 0;
        while let Some(c) = cur {
            if c == child {
                ok = false;
                break;
            }
            hops += 1;
            if hops > spans.len() {
                break;
            }
            cur = parent.get(&c).copied();
        }
        if ok {
            acyclic.insert(child, p);
        }
    }
    acyclic
}

fn sort_trace(spans: Vec<Span>, parents: HashMap<SpanId, SpanId>) -> Trace {
    let index: HashMap<SpanId, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span_id, i))
        .collect();
    let mut children: HashMap<Option<SpanId>, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        // A parent outside the assembled set degrades to root.
        let p = parents
            .get(&s.span_id)
            .copied()
            .filter(|p| index.contains_key(p));
        children.entry(p).or_default().push(i);
    }
    for v in children.values_mut() {
        v.sort_by_key(|&i| (spans[i].req_time, spans[i].span_id));
    }
    // DFS parents-first.
    let mut order = Vec::with_capacity(spans.len());
    let mut stack: Vec<usize> = children
        .get(&None)
        .cloned()
        .unwrap_or_default()
        .into_iter()
        .rev()
        .collect();
    let mut visited = vec![false; spans.len()];
    while let Some(i) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        order.push(i);
        if let Some(kids) = children.get(&Some(spans[i].span_id)) {
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        }
    }
    // Any unvisited spans (shouldn't happen post cycle-guard) appended.
    for i in 0..spans.len() {
        if !visited[i] {
            order.push(i);
        }
    }
    let id_of = |i: usize| spans[i].span_id;
    let assembled: Vec<AssembledSpan> = order
        .iter()
        .map(|&i| AssembledSpan {
            parent: parents
                .get(&id_of(i))
                .copied()
                .filter(|p| index.contains_key(p)),
            span: spans[i].clone(),
        })
        .collect();
    Trace { spans: assembled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::ids::*;
    use df_types::l7::L7Protocol;
    use df_types::net::FiveTuple;
    use df_types::span::{CapturePoint, SpanStatus};
    use df_types::tags::TagSet;
    use df_types::TimeNs;
    use std::net::Ipv4Addr;

    fn base_span(tap: TapSide, req: u64, resp: u64) -> Span {
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: tap,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".to_string(),
            req_time: TimeNs(req),
            resp_time: TimeNs(resp),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 1,
            resp_bytes: 1,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    /// Figure-1-shaped scenario over two exchanges:
    /// user → A (exchange 1, seq 100), A → B (exchange 2, seq 200),
    /// each observed at client and server process plus a node NIC.
    fn figure1_store() -> (SpanStore, SpanId) {
        let mut st = SpanStore::new();
        // Exchange 1: user → A. Only A's server span (user is external).
        let mut a_server = base_span(TapSide::ServerProcess, 0, 100);
        a_server.tcp_seq_req = Some(100);
        a_server.tcp_seq_resp = Some(150);
        a_server.systrace_id_req = Some(SysTraceId(1));
        a_server.systrace_id_resp = Some(SysTraceId(2));
        let a_id = st.insert(a_server);

        // Exchange 2: A → B.
        let mut a_client = base_span(TapSide::ClientProcess, 10, 80);
        a_client.tcp_seq_req = Some(200);
        a_client.tcp_seq_resp = Some(250);
        a_client.systrace_id_req = Some(SysTraceId(1)); // chained from A's ingress
        a_client.systrace_id_resp = Some(SysTraceId(2));
        let ac_id = st.insert(a_client);

        let mut nic = base_span(TapSide::ClientNodeNic, 12, 78);
        nic.kind = SpanKind::Net;
        nic.tcp_seq_req = Some(200);
        nic.tcp_seq_resp = Some(250);
        let nic_id = st.insert(nic);

        let mut b_server = base_span(TapSide::ServerProcess, 20, 70);
        b_server.tcp_seq_req = Some(200);
        b_server.tcp_seq_resp = Some(250);
        b_server.systrace_id_req = Some(SysTraceId(10));
        b_server.systrace_id_resp = Some(SysTraceId(11));
        let bs_id = st.insert(b_server);

        let _ = (ac_id, nic_id, bs_id);
        (st, a_id)
    }

    #[test]
    fn search_reaches_every_related_span_from_any_start() {
        let (st, a_id) = figure1_store();
        let trace = assemble_trace(&st, a_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 4, "all four spans joined: {trace:#?}");
        assert!(trace.is_well_formed());
        // Starting from a different span reaches the same set.
        let trace2 = assemble_trace(&st, SpanId(4), &AssembleConfig::default());
        assert_eq!(trace2.len(), 4);
    }

    #[test]
    fn parents_follow_capture_ladder_and_systrace() {
        let (st, a_id) = figure1_store();
        let trace = assemble_trace(&st, a_id, &AssembleConfig::default());
        let parent_of = |id: u64| {
            trace
                .spans
                .iter()
                .find(|s| s.span.span_id == SpanId(id))
                .unwrap()
                .parent
        };
        // A's server span is the root.
        assert_eq!(parent_of(1), None);
        // Rule 9: A's client span hangs off A's server span via systrace.
        assert_eq!(parent_of(2), Some(SpanId(1)));
        // Rules 1–8: NIC net span chains under the client process span...
        assert_eq!(parent_of(3), Some(SpanId(2)));
        // ...and B's server span chains under the NIC span.
        assert_eq!(parent_of(4), Some(SpanId(3)));
        // Sorted parents-first.
        assert_eq!(trace.spans[0].span.span_id, SpanId(1));
    }

    #[test]
    fn unrelated_spans_stay_out_of_the_trace() {
        let (mut st, a_id) = figure1_store();
        let mut noise = base_span(TapSide::ServerProcess, 1000, 2000);
        noise.tcp_seq_req = Some(999);
        noise.systrace_id_req = Some(SysTraceId(77));
        st.insert(noise);
        let trace = assemble_trace(&st, a_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn iteration_cap_bounds_the_search() {
        // A long chain: exchange i links to i+1 by systrace. With a cap of
        // 2 iterations only a prefix is found.
        let mut st = SpanStore::new();
        let mut first = None;
        for i in 0..20u64 {
            let mut s = base_span(TapSide::ServerProcess, i * 10, i * 10 + 200);
            s.tcp_seq_req = Some(1000 + i as u32);
            s.systrace_id_req = Some(SysTraceId(i + 1));
            s.systrace_id_resp = Some(SysTraceId(i + 2)); // overlaps next span's req
            let id = st.insert(s);
            first.get_or_insert(id);
        }
        let small = assemble_trace(
            &st,
            first.unwrap(),
            &AssembleConfig {
                iterations: 2,
                ..Default::default()
            },
        );
        let full = assemble_trace(&st, first.unwrap(), &AssembleConfig::default());
        assert!(small.len() < full.len());
        assert_eq!(full.len(), 20);
    }

    #[test]
    fn x_request_id_links_across_l7_proxy() {
        // Proxy terminates TCP: two exchanges with different seqs, linked
        // only by X-Request-ID (rule 12).
        let mut st = SpanStore::new();
        let xid = XRequestId(0xabc);
        let mut downstream = base_span(TapSide::ServerProcess, 0, 100);
        downstream.tcp_seq_req = Some(1);
        downstream.x_request_id_resp = Some(xid);
        let d_id = st.insert(downstream);
        let mut upstream = base_span(TapSide::ClientProcess, 10, 90);
        upstream.tcp_seq_req = Some(500);
        upstream.x_request_id_req = Some(xid);
        st.insert(upstream);
        let trace = assemble_trace(&st, d_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let up = trace
            .spans
            .iter()
            .find(|s| s.span.capture.tap_side == TapSide::ClientProcess)
            .unwrap();
        assert_eq!(up.parent, Some(d_id));
    }

    #[test]
    fn pseudo_thread_links_coroutine_exchanges() {
        let mut st = SpanStore::new();
        let pth = PseudoThreadId(5);
        let mut server = base_span(TapSide::ServerProcess, 0, 100);
        server.tcp_seq_req = Some(1);
        server.pseudo_thread_id = Some(pth);
        let s_id = st.insert(server);
        let mut client = base_span(TapSide::ClientProcess, 20, 60);
        client.tcp_seq_req = Some(2);
        client.pseudo_thread_id = Some(pth);
        st.insert(client);
        let trace = assemble_trace(&st, s_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let c = trace
            .spans
            .iter()
            .find(|s| s.span.capture.tap_side == TapSide::ClientProcess)
            .unwrap();
        assert_eq!(c.parent, Some(s_id), "rule 11");
    }

    #[test]
    fn otel_app_spans_interleave_with_sys_spans() {
        // App span (client side) → its id travels in headers → sys exchange
        // carries otel_span_id → rule 13 makes the app span the parent.
        let mut st = SpanStore::new();
        let tid = OtelTraceId(0x11);
        let app_sid = OtelSpanId(0x22);
        let mut app = base_span(TapSide::ClientApp, 0, 100);
        app.kind = SpanKind::App;
        app.otel_trace_id = Some(tid);
        app.otel_span_id = Some(app_sid);
        let app_id = st.insert(app);
        let mut sys = base_span(TapSide::ClientProcess, 10, 90);
        sys.tcp_seq_req = Some(5);
        sys.otel_trace_id = Some(tid);
        sys.otel_span_id = Some(app_sid);
        st.insert(sys);
        let trace = assemble_trace(&st, app_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let sys_assembled = trace
            .spans
            .iter()
            .find(|s| s.span.kind == SpanKind::Sys)
            .unwrap();
        assert_eq!(sys_assembled.parent, Some(app_id), "rule 13");
    }

    #[test]
    fn app_span_ancestry_rule15() {
        let mut st = SpanStore::new();
        let tid = OtelTraceId(0x99);
        let mut parent_app = base_span(TapSide::ServerApp, 0, 100);
        parent_app.kind = SpanKind::App;
        parent_app.otel_trace_id = Some(tid);
        parent_app.otel_span_id = Some(OtelSpanId(1));
        let p_id = st.insert(parent_app);
        let mut child_app = base_span(TapSide::ClientApp, 10, 90);
        child_app.kind = SpanKind::App;
        child_app.otel_trace_id = Some(tid);
        child_app.otel_span_id = Some(OtelSpanId(2));
        child_app.otel_parent_span_id = Some(OtelSpanId(1));
        st.insert(child_app);
        let trace = assemble_trace(&st, p_id, &AssembleConfig::default());
        assert_eq!(trace.len(), 2);
        let child = trace
            .spans
            .iter()
            .find(|s| s.span.otel_span_id == Some(OtelSpanId(2)))
            .unwrap();
        assert_eq!(child.parent, Some(p_id));
    }

    #[test]
    fn missing_start_span_yields_empty_trace() {
        let st = SpanStore::new();
        let t = assemble_trace(&st, SpanId(42), &AssembleConfig::default());
        assert!(t.is_empty());
    }

    #[test]
    fn assembled_traces_are_always_well_formed() {
        let (st, a_id) = figure1_store();
        for start in 1..=4u64 {
            let t = assemble_trace(&st, SpanId(start), &AssembleConfig::default());
            assert!(t.is_well_formed(), "start {start}");
        }
        let _ = a_id;
    }
}
