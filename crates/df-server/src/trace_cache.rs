//! Incremental assembled-trace cache, memoized by start span.
//!
//! Trace queries in the paper's deployment are read-heavy and repetitive —
//! an engineer drilling into an incident re-requests the same trace as the
//! dashboard refreshes — while the corpus mutates append-mostly. Caching
//! the output of Algorithm 1 is therefore profitable *if* staleness can be
//! detected cheaply. This module provides that detection via the sharded
//! store's time-bucketed routing table:
//!
//! * When a trace is cached, the cache records the trace's **time
//!   envelope** — every routing-table bucket from one bucket before its
//!   earliest request to one bucket after its latest response — together
//!   with each bucket's current *generation*
//!   ([`ShardedSpanStore::bucket_gen`]).
//! * Every mutation (insert, tombstone, re-aggregation completing a span)
//!   bumps the generation of the bucket the span's request time falls in.
//! * A lookup re-reads the generations of the recorded buckets; if any
//!   moved, the entry is dropped ([`CacheOutcome::Invalidated`]) and the
//!   caller re-assembles.
//!
//! ## Staleness contract
//!
//! Invalidation is **bucket-granular and time-local**, not exact: any
//! mutation inside a cached trace's time envelope invalidates it, whether
//! or not the mutated span would actually have joined the trace
//! (over-invalidation — always safe, costs a re-assembly). Conversely a
//! *new* span can only extend a cached trace if some association key links
//! it to a member; association in Algorithm 1 happens between spans of one
//! request's execution, which are clustered in time (the paper's traces
//! span milliseconds, buckets default to one second). The ±1-bucket margin
//! covers members sitting at a bucket edge linking to a neighbour just
//! outside. A hypothetical span *far outside* the envelope sharing a key
//! (e.g. a TCP sequence number reused seconds later) would **not**
//! invalidate — by design: Algorithm 1's own heuristics treat such distant
//! matches as coincidence, and serving the cached trace matches the intent
//! of trace assembly. Traces whose envelope exceeds
//! [`TraceCache::max_deps`] buckets are never cached rather than tracked
//! imprecisely.
//!
//! Cached traces are handed out as [`Arc<Trace>`], so a warm hit is a
//! pointer clone — the bench's warm-vs-cold comparison
//! (`alg1_trace_cache`) shows the resulting speedup.

use crate::sharded::ShardedSpanStore;
use df_check::sync::Arc;
use df_types::trace::Trace;
use df_types::{SpanId, TimeNs};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Where bucket generations come from. The cache validates entries against
/// *some* view of the routing table's time-bucket generations — the
/// in-process [`ShardedSpanStore`] or the concurrent store's locked
/// generation table ([`crate::concurrent::ConcurrentShardedStore`]) — so
/// its lookup/store methods are generic over this trait rather than tied
/// to one store type.
pub trait BucketGens {
    /// Current generation of a routing-table time bucket (0 if untouched).
    fn bucket_gen(&self, bucket: u64) -> u64;
    /// The routing-table bucket containing `t`.
    fn bucket_of(&self, t: TimeNs) -> u64;
}

impl BucketGens for ShardedSpanStore {
    fn bucket_gen(&self, bucket: u64) -> u64 {
        ShardedSpanStore::bucket_gen(self, bucket)
    }
    fn bucket_of(&self, t: TimeNs) -> u64 {
        ShardedSpanStore::bucket_of(self, t)
    }
}

/// Result of a cache lookup, so the caller can account hits, misses and
/// invalidations separately (the server's stats distinguish them).
#[derive(Debug, Clone)]
pub enum CacheOutcome {
    /// Entry present and every recorded bucket generation still current.
    Hit(Arc<Trace>),
    /// Entry present and stale, but within the staleness window the caller
    /// passed to [`TraceCache::lookup_bounded`]: every recorded bucket
    /// generation drifted by at most the window. The entry is *kept* (it
    /// may be served again while the window allows, and a later strict
    /// lookup will invalidate it).
    Stale(Arc<Trace>),
    /// Entry present but a bucket in the trace's envelope mutated since it
    /// was cached; the entry has been dropped.
    Invalidated,
    /// No entry for this start span.
    Miss,
}

#[derive(Debug)]
struct CacheEntry {
    trace: Arc<Trace>,
    /// `(bucket, generation at cache time)` for every bucket in the
    /// trace's time envelope.
    deps: Vec<(u64, u64)>,
}

/// Assembled-trace cache keyed by start span id. See the module docs for
/// the invalidation contract.
#[derive(Debug)]
pub struct TraceCache {
    entries: HashMap<SpanId, CacheEntry>,
    /// FIFO of cached keys for capacity eviction.
    order: VecDeque<SpanId>,
    /// Capacity in entries; the oldest entry is evicted beyond it.
    pub max_entries: usize,
    /// Widest time envelope (in routing-table buckets) worth tracking;
    /// traces wider than this are served but not cached.
    pub max_deps: usize,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            max_entries: 1024,
            max_deps: 64,
        }
    }
}

impl TraceCache {
    /// Empty cache with default capacity (1024 entries, 64-bucket envelopes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the trace starting at `start`, validating its recorded
    /// bucket generations against the store's current ones. Strict: any
    /// drift invalidates (equivalent to [`TraceCache::lookup_bounded`]
    /// with a zero window).
    pub fn lookup(&mut self, start: SpanId, store: &impl BucketGens) -> CacheOutcome {
        self.lookup_bounded(start, store, 0)
    }

    /// [`TraceCache::lookup`] with a bounded-staleness window: if the
    /// entry's recorded generations have each drifted by at most
    /// `staleness_window`, the entry is served as [`CacheOutcome::Stale`]
    /// instead of being invalidated — the concurrent server's answer to
    /// ingest pressure (serve a slightly-old trace now rather than
    /// re-assemble synchronously behind a deep ingest queue). Drift beyond
    /// the window still invalidates. A window of 0 is the strict mode.
    pub fn lookup_bounded(
        &mut self,
        start: SpanId,
        store: &impl BucketGens,
        staleness_window: u64,
    ) -> CacheOutcome {
        let Some(entry) = self.entries.get(&start) else {
            return CacheOutcome::Miss;
        };
        // `wrapping_sub`, not `saturating_sub`: if a bucket's counter ever
        // wraps past a recorded generation, saturating would clamp the
        // drift to 0 and serve the entry as perfectly fresh forever.
        // Wrapping turns any mismatch into a huge drift, which correctly
        // falls through to invalidation.
        let drift = entry
            .deps
            .iter()
            .map(|&(bucket, gen)| store.bucket_gen(bucket).wrapping_sub(gen))
            .max()
            .unwrap_or(0);
        if drift == 0 {
            return CacheOutcome::Hit(Arc::clone(&entry.trace));
        }
        if drift <= staleness_window {
            return CacheOutcome::Stale(Arc::clone(&entry.trace));
        }
        self.entries.remove(&start);
        CacheOutcome::Invalidated
    }

    /// Cache a freshly assembled trace and return it as an [`Arc`]. Empty
    /// traces and traces with an over-wide time envelope are returned
    /// un-cached (the former are cheap to recompute and usually transient
    /// — the start span may simply not be stored yet; the latter would
    /// need unbounded dependency tracking).
    pub fn store(&mut self, start: SpanId, trace: Trace, store: &impl BucketGens) -> Arc<Trace> {
        let trace = Arc::new(trace);
        let Some(deps) = self.envelope(&trace, store) else {
            return trace;
        };
        if self.entries.len() >= self.max_entries {
            // FIFO capacity eviction; skip keys already invalidated away.
            while let Some(old) = self.order.pop_front() {
                if self.entries.remove(&old).is_some() {
                    break;
                }
            }
        }
        self.order.push_back(start);
        self.entries.insert(
            start,
            CacheEntry {
                trace: Arc::clone(&trace),
                deps,
            },
        );
        trace
    }

    /// The dependency list for `trace`: every routing-table bucket in its
    /// time envelope (±1 bucket), with current generations. `None` if the
    /// trace should not be cached.
    fn envelope(&self, trace: &Trace, store: &impl BucketGens) -> Option<Vec<(u64, u64)>> {
        if trace.is_empty() {
            return None;
        }
        let lo = trace
            .spans
            .iter()
            .map(|s| store.bucket_of(s.span.req_time))
            .min()?
            .saturating_sub(1);
        let hi = trace
            .spans
            .iter()
            .map(|s| store.bucket_of(s.span.resp_time))
            .max()?
            .saturating_add(1);
        let width = hi.checked_sub(lo)?.checked_add(1)?;
        if width as usize > self.max_deps {
            return None;
        }
        Some((lo..=hi).map(|b| (b, store.bucket_gen(b))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::AssembleConfig;
    use crate::sharded::assemble_trace_sharded;
    use df_storage::ShardPolicy;
    use df_types::span::TapSide;
    use df_types::Span;

    fn linked_pair(seq: u32, base_ns: u64) -> Vec<Span> {
        let mut a = Span::synthetic(TapSide::ClientProcess, base_ns, base_ns + 500);
        a.tcp_seq_req = Some(seq);
        let mut b = Span::synthetic(TapSide::ServerProcess, base_ns + 10, base_ns + 490);
        b.tcp_seq_req = Some(seq);
        vec![a, b]
    }

    fn assemble_via_cache(
        cache: &mut TraceCache,
        store: &ShardedSpanStore,
        start: SpanId,
    ) -> (Arc<Trace>, &'static str) {
        match cache.lookup(start, store) {
            CacheOutcome::Hit(t) => (t, "hit"),
            outcome => {
                let t = assemble_trace_sharded(store, start, &AssembleConfig::default());
                let label = match outcome {
                    CacheOutcome::Invalidated => "invalidated",
                    _ => "miss",
                };
                (cache.store(start, t, store), label)
            }
        }
    }

    #[test]
    fn repeat_query_hits_until_envelope_mutates() {
        let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let mut cache = TraceCache::new();

        let (t1, o1) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(o1, "miss");
        assert_eq!(t1.len(), 2);
        let (t2, o2) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(o2, "hit");
        assert!(Arc::ptr_eq(&t1, &t2), "warm hit is the same allocation");

        // A span landing in the trace's envelope invalidates, and the
        // re-assembled trace includes it.
        let mut c = Span::synthetic(TapSide::ServerPodNic, 1_005, 1_495);
        c.tcp_seq_req = Some(7);
        store.insert_batch(vec![c]);
        let (t3, o3) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(o3, "invalidated");
        assert_eq!(t3.len(), 3);
        let (_, o4) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(o4, "hit");
    }

    #[test]
    fn mutation_outside_envelope_keeps_entry_warm() {
        let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let mut cache = TraceCache::new();
        assemble_via_cache(&mut cache, &store, ids[0]);
        // ~10 s away — outside the ±1 s envelope of a trace at t≈1 µs.
        store.insert_batch(linked_pair(999, 10_000_000_000));
        let (_, outcome) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(outcome, "hit", "distant mutation must not invalidate");
    }

    #[test]
    fn tombstone_in_envelope_invalidates() {
        let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let mut cache = TraceCache::new();
        let (t1, _) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(t1.len(), 2);
        store.tombstone(ids[1]);
        let (t2, outcome) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(outcome, "invalidated");
        assert_eq!(t2.len(), 1, "tombstoned member gone after re-assembly");
    }

    #[test]
    fn bounded_staleness_serves_within_window_and_invalidates_beyond() {
        let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let mut cache = TraceCache::new();
        let (t1, _) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(t1.len(), 2);

        // One mutation in the envelope: drift 1.
        let mut c = Span::synthetic(TapSide::ServerPodNic, 1_005, 1_495);
        c.tcp_seq_req = Some(7);
        store.insert_batch(vec![c]);
        match cache.lookup_bounded(ids[0], &store, 2) {
            CacheOutcome::Stale(t) => {
                assert!(Arc::ptr_eq(&t, &t1), "stale serve is the cached allocation");
                assert_eq!(t.len(), 2, "stale trace misses the new span, by contract");
            }
            other => panic!("drift 1 ≤ window 2 must serve stale, got {other:?}"),
        }
        // The entry survives a stale serve — a second bounded lookup hits it
        // again, a strict lookup invalidates it.
        assert!(matches!(
            cache.lookup_bounded(ids[0], &store, 2),
            CacheOutcome::Stale(_)
        ));
        assert!(matches!(
            cache.lookup(ids[0], &store),
            CacheOutcome::Invalidated
        ));

        // Re-cache, then push drift beyond the window: invalidated even in
        // bounded mode.
        let (_, o) = assemble_via_cache(&mut cache, &store, ids[0]);
        assert_eq!(o, "miss");
        for seq in 0..5u32 {
            let mut s = Span::synthetic(TapSide::ClientProcess, 1_050 + u64::from(seq), 1_400);
            s.tcp_seq_req = Some(1_000 + seq);
            store.insert_batch(vec![s]);
        }
        assert!(matches!(
            cache.lookup_bounded(ids[0], &store, 2),
            CacheOutcome::Invalidated
        ));
    }

    #[test]
    fn empty_and_oversized_traces_are_not_cached() {
        let mut store = ShardedSpanStore::new(ShardPolicy::single());
        let mut cache = TraceCache::new();
        cache.store(SpanId(99), Trace::default(), &store);
        assert!(cache.is_empty(), "empty trace not cached");

        // Two linked spans ~10 minutes apart: envelope ≫ max_deps buckets.
        let mut a = Span::synthetic(TapSide::ClientProcess, 0, 600_000_000_000);
        a.tcp_seq_req = Some(5);
        let mut b = Span::synthetic(TapSide::ServerProcess, 10, 600_000_000_000);
        b.tcp_seq_req = Some(5);
        let ids = store.insert_batch(vec![a, b]);
        let t = assemble_trace_sharded(&store, ids[0], &AssembleConfig::default());
        assert_eq!(t.len(), 2);
        cache.store(ids[0], t, &store);
        assert!(cache.is_empty(), "over-wide envelope not cached");
    }

    /// A controllable generation source: every bucket reports one settable
    /// generation, for exercising counter edges (wrap-around) the real
    /// stores cannot reach in a test's lifetime.
    struct FakeGens {
        gen: std::cell::Cell<u64>,
    }

    impl BucketGens for FakeGens {
        fn bucket_gen(&self, _bucket: u64) -> u64 {
            self.gen.get()
        }
        fn bucket_of(&self, _t: TimeNs) -> u64 {
            0
        }
    }

    /// Build a real 2-span trace to feed the cache in the FakeGens tests.
    fn sample_trace() -> (SpanId, Trace) {
        let mut store = ShardedSpanStore::new(ShardPolicy::single());
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let t = assemble_trace_sharded(&store, ids[0], &AssembleConfig::default());
        (ids[0], t)
    }

    #[test]
    fn zero_window_bounded_lookup_is_the_strict_path() {
        let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let ids = store.insert_batch(linked_pair(7, 1_000));
        let mut cache = TraceCache::new();
        assemble_via_cache(&mut cache, &store, ids[0]);

        // Fresh entry: both paths hit.
        assert!(matches!(
            cache.lookup_bounded(ids[0], &store, 0),
            CacheOutcome::Hit(_)
        ));
        assert!(matches!(cache.lookup(ids[0], &store), CacheOutcome::Hit(_)));

        // Drift 1: window 0 invalidates exactly like the strict lookup,
        // and the entry is gone for both afterwards.
        let mut c = Span::synthetic(TapSide::ServerPodNic, 1_005, 1_495);
        c.tcp_seq_req = Some(7);
        store.insert_batch(vec![c]);
        assert!(matches!(
            cache.lookup_bounded(ids[0], &store, 0),
            CacheOutcome::Invalidated
        ));
        assert!(matches!(cache.lookup(ids[0], &store), CacheOutcome::Miss));
    }

    #[test]
    fn wrapped_generation_counter_is_never_served_fresh() {
        // Entry cached when every dependency bucket reported u64::MAX.
        let (start, trace) = sample_trace();
        let gens = FakeGens {
            gen: std::cell::Cell::new(u64::MAX),
        };
        let mut cache = TraceCache::new();
        cache.store(start, trace, &gens);
        assert!(matches!(
            cache.lookup_bounded(start, &gens, 0),
            CacheOutcome::Hit(_)
        ));

        // The counter wraps: MAX → 0 → 1. With `saturating_sub` the drift
        // would clamp to 0 and the entry would be served as fresh forever;
        // wrapping arithmetic sees the true drift of 2.
        gens.gen.set(1);
        match cache.lookup_bounded(start, &gens, 10) {
            CacheOutcome::Stale(_) => {} // drift 2 ≤ window 10, and NOT a fresh hit
            other => panic!("wrapped counter must not serve fresh, got {other:?}"),
        }
        assert!(matches!(
            cache.lookup_bounded(start, &gens, 1),
            CacheOutcome::Invalidated
        ));
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let mut store = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let mut cache = TraceCache {
            max_entries: 2,
            ..TraceCache::new()
        };
        let mut firsts = Vec::new();
        for i in 0..3u32 {
            let ids = store.insert_batch(linked_pair(i + 1, u64::from(i) * 1_000));
            firsts.push(ids[0]);
        }
        for &s in &firsts {
            assemble_via_cache(&mut cache, &store, s);
        }
        assert_eq!(cache.len(), 2);
        assert!(
            matches!(cache.lookup(firsts[0], &store), CacheOutcome::Miss),
            "oldest entry evicted"
        );
        assert!(matches!(
            cache.lookup(firsts[2], &store),
            CacheOutcome::Hit(_)
        ));
    }
}
