//! Differential tests for the DFW1 wire ingest path: shipping a batch as
//! encoded bytes through [`ConcurrentShardedStore::ingest_wire`] /
//! [`Server::ingest_wire`] must leave the store in *exactly* the state
//! that handing the same spans to the struct path does — same ids, same
//! shard rows, same query results, byte-identical re-encodings — and a
//! malformed batch must leave it in exactly the state of never having
//! called ingest at all.

use df_server::{ConcurrentShardedStore, Server, WireIngestError};
use df_storage::{ShardPolicy, SpanQuery};
use df_types::ids::*;
use df_types::span::{CapturePoint, SpanKind, TapSide};
use df_types::tags::{ResourceInventory, TagSet};
use df_types::wire;
use df_types::{FiveTuple, L7Protocol, Span, SpanId, SpanStatus, TimeNs};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Deterministic corpus: spans spread over a handful of flows, endpoints
/// and tap sides so multi-shard policies actually fan out.
fn corpus(seed: u64, n: usize) -> Vec<Span> {
    let mut rng = TestRng::for_case("wire-differential", seed);
    let tap_sides = [
        TapSide::ClientProcess,
        TapSide::ClientNodeNic,
        TapSide::Gateway,
        TapSide::ServerNodeNic,
        TapSide::ServerProcess,
    ];
    (0..n)
        .map(|i| {
            let t = rng.next_u64() % 1_000;
            let mut span = Span {
                span_id: SpanId(0),
                kind: SpanKind::Sys,
                capture: CapturePoint {
                    node: NodeId((rng.next_u64() % 4) as u32),
                    tap_side: tap_sides[(rng.next_u64() % 5) as usize],
                    interface: None,
                },
                agent: AgentId((rng.next_u64() % 4) as u32),
                flow_id: FlowId(rng.next_u64() % 16),
                five_tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 0, 0, (rng.next_u64() % 250) as u8 + 1),
                    (rng.next_u64() % 1000) as u16 + 1024,
                    Ipv4Addr::new(10, 0, 1, (rng.next_u64() % 250) as u8 + 1),
                    80,
                ),
                l7_protocol: L7Protocol::Http1,
                endpoint: format!("GET /api/{}", rng.next_u64() % 8),
                req_time: TimeNs(t * 1_000_000),
                resp_time: TimeNs(t * 1_000_000 + rng.next_u64() % 5_000_000),
                status: if rng.next_u64().is_multiple_of(10) {
                    SpanStatus::ServerError
                } else {
                    SpanStatus::Ok
                },
                status_code: Some(200),
                req_bytes: rng.next_u64() % 4096,
                resp_bytes: rng.next_u64() % 65536,
                pid: Some(Pid((rng.next_u64() % 100) as u32)),
                tid: None,
                process_name: Some(format!("svc-{}", i % 3)),
                systrace_id_req: Some(SysTraceId(rng.next_u64() % 8)),
                systrace_id_resp: None,
                pseudo_thread_id: None,
                x_request_id_req: Some(XRequestId(rng.next_u128() % 4)),
                x_request_id_resp: None,
                tcp_seq_req: Some((rng.next_u64() % 10) as u32),
                tcp_seq_resp: None,
                otel_trace_id: None,
                otel_span_id: None,
                otel_parent_span_id: None,
                tags: TagSet::default(),
                flow_metrics: None,
            };
            span.tags = std::mem::take(&mut span.tags).with_label("env", "prod");
            span
        })
        .collect()
}

/// Drain a store into a canonical, id-ordered span list.
fn full_scan(store: &ConcurrentShardedStore) -> Vec<Span> {
    let mut spans = store.query(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    spans.sort_by_key(|s| s.span_id);
    spans
}

/// The core differential: batches through the struct path on one store,
/// the same batches DFW1-encoded through the wire path on another —
/// every observable (ids, shard layout, scans, per-id gets, and the
/// re-encoded bytes of the final state) must be identical.
fn assert_wire_matches_struct(policy: fn() -> ShardPolicy, batches: &[Vec<Span>]) {
    let struct_store = ConcurrentShardedStore::new(policy());
    let wire_store = ConcurrentShardedStore::new(policy());

    for batch in batches {
        let ids_struct = struct_store.insert_batch(batch.clone());
        let encoded = wire::encode_batch(batch);
        let ids_wire = wire_store.ingest_wire(&encoded).expect("valid batch");
        assert_eq!(ids_struct, ids_wire, "id assignment diverged");
    }
    struct_store.flush();
    wire_store.flush();

    assert_eq!(struct_store.len(), wire_store.len());
    assert_eq!(struct_store.shard_sizes(), wire_store.shard_sizes());
    let a = full_scan(&struct_store);
    let b = full_scan(&wire_store);
    assert_eq!(a, b, "scan results diverged");
    // Byte-identical: re-encoding the final state from both stores
    // produces the same DFW1 bytes.
    assert_eq!(wire::encode_batch(&a), wire::encode_batch(&b));
    for span in &a {
        assert_eq!(struct_store.get(span.span_id), wire_store.get(span.span_id));
    }
}

#[test]
fn wire_ingest_matches_struct_ingest_single_shard() {
    let spans = corpus(7, 200);
    let batches: Vec<Vec<Span>> = spans.chunks(37).map(<[Span]>::to_vec).collect();
    assert_wire_matches_struct(|| ShardPolicy::with_shards(1), &batches);
}

#[test]
fn wire_ingest_matches_struct_ingest_sharded() {
    let spans = corpus(11, 300);
    let batches: Vec<Vec<Span>> = spans.chunks(41).map(<[Span]>::to_vec).collect();
    assert_wire_matches_struct(|| ShardPolicy::with_shards(4), &batches);
}

#[test]
fn malformed_batch_leaves_store_untouched() {
    let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(2));
    let spans = corpus(3, 10);

    // Truncate a valid encoding mid-frame: decode must fail *before* any
    // routing state changes.
    let valid = wire::encode_batch(&spans);
    let err = store.ingest_wire(&valid[..valid.len() - 3]).unwrap_err();
    assert!(matches!(err, WireIngestError::Decode(_)), "got {err:?}");
    // And the error chain carries the wire error as its source.
    assert!(std::error::Error::source(&err).is_some());

    store.flush();
    assert_eq!(store.len(), 0, "failed ingest must not assign ids");
    assert_eq!(store.shard_sizes(), vec![0, 0]);

    // The next successful ingest starts at id 1 — proof the failed call
    // consumed nothing.
    let ids = store.ingest_wire(&valid).expect("valid bytes");
    assert_eq!(ids[0], SpanId(1));

    // insert_batch_wire rejects the same way.
    let store2 = ConcurrentShardedStore::new(ShardPolicy::with_shards(1));
    assert!(store2.insert_batch_wire(&valid[..4]).is_err());
    store2.flush();
    assert_eq!(store2.len(), 0);
    assert_eq!(
        store2.insert_batch_wire(&valid).expect("valid")[0],
        SpanId(1)
    );
}

#[test]
fn server_wire_ingest_matches_batch_ingest() {
    // The Server facade adds phase-2 enrichment before insert; both paths
    // must enrich identically and report identical stats.
    let inventory = ResourceInventory::default();
    let mut struct_server = Server::new(&inventory);
    let mut wire_server = Server::new(&inventory);

    let spans = corpus(23, 120);
    for batch in spans.chunks(29) {
        let ids_a = struct_server.ingest_batch(batch.to_vec());
        let ids_b = wire_server
            .ingest_wire(&wire::encode_batch(batch))
            .expect("valid batch");
        assert_eq!(ids_a, ids_b);
    }

    let q = SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    };
    let mut a = struct_server.span_list(&q);
    let mut b = wire_server.span_list(&q);
    a.sort_by_key(|s| s.span_id);
    b.sort_by_key(|s| s.span_id);
    assert_eq!(a, b);
    assert_eq!(struct_server.stats().ingested, wire_server.stats().ingested);
    assert_eq!(struct_server.stats().enriched, wire_server.stats().enriched);
}

proptest! {
    /// Arbitrary corpora and batch splits: the wire path tracks the
    /// struct path on a multi-shard policy.
    #[test]
    fn prop_wire_path_equals_struct_path(seed in any::<u64>(), chunk in 1usize..50) {
        let spans = corpus(seed, 80);
        let batches: Vec<Vec<Span>> = spans.chunks(chunk).map(<[Span]>::to_vec).collect();
        assert_wire_matches_struct(|| ShardPolicy::with_shards(3), &batches);
    }
}
