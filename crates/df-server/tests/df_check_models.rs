//! df-check model tests for the concurrent shard boundary.
//!
//! These port the invariants `crates/df-server/src/concurrent.rs` used to
//! check with a hand-rolled step enumerator onto the df-check
//! schedule-exploring model checker: the generation-bump lock discipline
//! (including the *mutation* variants that must be caught), the flush
//! barrier, channel backpressure, and the bounded-staleness drift rule.
//!
//! The suite runs checked in the default workspace test run because
//! df-server's dev-dependency on df-check enables the `checked` feature.
//! Budgets respect `DF_CHECK_MAX_SCHEDULES` / `DF_CHECK_MAX_PREEMPTIONS`
//! so CI can bound wall-clock (see `ci.sh`).

use df_check::model::{self, CheckConfig, FailureKind};
use df_check::sync::atomic::{AtomicUsize, Ordering};
use df_check::sync::{sync_channel, Arc, Condvar, Mutex, Racy, RwLock};

fn budget() -> CheckConfig {
    CheckConfig::default().env_budget()
}

/// All model tests no-op when the shims compile as plain std re-exports
/// (they only explore schedules under the `checked` feature).
fn checked_or_skip() -> bool {
    if df_check::is_checked() {
        true
    } else {
        eprintln!("skipped: df-check built without the `checked` feature");
        false
    }
}

// ---------------------------------------------------------------------
// Generation-bump discipline (PR 3's staleness-correctness invariant).
//
// The shipped worker bumps a bucket's generation while holding the shard
// write lock, and the assembling reader observes row visibility and
// records generations under the read lock — so "rows visible" and
// "generation bumped" are atomic for any reader. A cache entry is
// PERMANENTLY STALE if it misses a span but records the post-bump
// generation: strict lookups would validate it forever.
// ---------------------------------------------------------------------

/// One round of the *shipped* discipline: writer's insert+bump is a single
/// write-lock critical section; reader's observe+record is a single
/// read-lock critical section. Panics on a permanently-stale outcome.
fn locked_discipline_round() {
    // (row_visible, bucket_gen) behind one shard lock.
    let store = Arc::new(RwLock::new((false, 0u64)));
    let writer = {
        let store = Arc::clone(&store);
        model::spawn(move || {
            let mut s = store.write().expect("shard lock");
            s.0 = true;
            s.1 += 1;
        })
    };
    let reader = {
        let store = Arc::clone(&store);
        model::spawn(move || {
            let s = store.read().expect("shard lock");
            (s.0, s.1) // (saw_row, recorded_gen)
        })
    };
    writer.join();
    let (saw, recorded) = reader.join();
    let final_gen = store.read().expect("shard lock").1;
    assert!(
        !(!saw && recorded == final_gen && final_gen > 0),
        "permanently stale cache entry: missed the row but recorded gen {recorded}"
    );
}

#[test]
fn locked_gen_bump_discipline_admits_no_stale_schedule() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), locked_discipline_round);
    assert!(report.complete, "schedule space must be exhausted");
    assert!(report.schedules >= 2, "both thread orders explored");
    assert!(report.lock_cycles.is_empty(), "no lock-order inversions");
}

/// The *mutation* of PR 3's invariant: the generation bump moved outside
/// the shard write lock (`bump_first` picks which side of the critical
/// section it lands on). df-check must find the stale-cache race.
fn unlocked_gen_bump_round(bump_first: bool) {
    let visible = Arc::new(RwLock::new(false));
    let gen = Arc::new(AtomicUsize::new(0));
    let writer = {
        let visible = Arc::clone(&visible);
        let gen = Arc::clone(&gen);
        model::spawn(move || {
            if bump_first {
                gen.fetch_add(1, Ordering::SeqCst);
            }
            *visible.write().expect("shard lock") = true;
            if !bump_first {
                gen.fetch_add(1, Ordering::SeqCst);
            }
        })
    };
    let reader = {
        let visible = Arc::clone(&visible);
        let gen = Arc::clone(&gen);
        model::spawn(move || {
            let saw = *visible.read().expect("shard lock");
            let recorded = gen.load(Ordering::SeqCst);
            (saw, recorded)
        })
    };
    writer.join();
    let (saw, recorded) = reader.join();
    let final_gen = gen.load(Ordering::SeqCst);
    assert!(
        !(!saw && recorded == final_gen && final_gen > 0),
        "permanently stale cache entry: missed the row but recorded gen {recorded}"
    );
}

#[test]
fn moving_the_gen_bump_outside_the_lock_is_caught_and_replayable() {
    if !checked_or_skip() {
        return;
    }
    // Both fine-grained orders break — that is exactly why the shipped
    // worker bumps inside the write lock.
    for bump_first in [false, true] {
        let report = model::explore(budget(), move || unlocked_gen_bump_round(bump_first));
        let failure = report
            .failure
            .unwrap_or_else(|| panic!("mutation (bump_first={bump_first}) must be detected"));
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("permanently stale"),
            "failure names the invariant: {}",
            failure.message
        );
        assert!(
            !failure.schedule.is_empty(),
            "counterexample has a schedule"
        );
        assert!(!failure.trace.is_empty(), "counterexample has a trace");

        // The reported schedule is a real witness: replaying it alone
        // reproduces the failure deterministically.
        let replayed = model::replay(failure.schedule.clone(), move || {
            unlocked_gen_bump_round(bump_first)
        });
        let rf = replayed.failure.expect("replay reproduces the failure");
        assert_eq!(rf.kind, FailureKind::Panic);
        assert!(rf.message.contains("permanently stale"));
        assert_eq!(replayed.schedules, 1, "replay runs exactly one schedule");
    }
}

#[test]
fn unsynchronized_gen_counter_is_a_data_race() {
    if !checked_or_skip() {
        return;
    }
    // Drop the atomic too: a plain shared counter (modelled by Racy) read
    // concurrently with a non-atomic read-modify-write is a data race the
    // vector clocks must flag even on schedules where the values happen
    // to come out right.
    let report = model::explore(budget(), || {
        let gen = Arc::new(Racy::new(0u64));
        let writer = {
            let gen = Arc::clone(&gen);
            model::spawn(move || gen.update(|g| g + 1))
        };
        let _observed = gen.get();
        writer.join();
    });
    let failure = report.failure.expect("unsynchronized counter must race");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

// ---------------------------------------------------------------------
// Flush barrier (ConcurrentShardedStore::flush / FlushGate).
// ---------------------------------------------------------------------

#[test]
fn flush_barrier_model_never_deadlocks_and_orders_all_prior_work() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), || {
        // A one-shard model of the ingest pipeline: `None` is the flush
        // token; the gate is the (Mutex, Condvar) countdown FlushGate uses.
        let (tx, rx) = sync_channel::<Option<u32>>(2);
        let gate = Arc::new((Mutex::new(1usize), Condvar::new()));
        let applied = Arc::new(AtomicUsize::new(0));
        let worker = {
            let gate = Arc::clone(&gate);
            let applied = Arc::clone(&applied);
            model::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Some(_) => {
                            applied.fetch_add(1, Ordering::SeqCst);
                        }
                        None => {
                            let (remaining, cv) = &*gate;
                            let mut r = remaining.lock().expect("gate lock");
                            *r -= 1;
                            cv.notify_all();
                        }
                    }
                }
            })
        };
        tx.send(Some(1)).expect("worker alive");
        tx.send(Some(2)).expect("worker alive");
        tx.send(None).expect("worker alive");
        drop(tx);
        // flush(): wait until the worker has drained past the token.
        {
            let (remaining, cv) = &*gate;
            let mut r = remaining.lock().expect("gate lock");
            while *r > 0 {
                r = cv.wait(r).expect("gate lock");
            }
        }
        // The barrier guarantee: everything enqueued before the token is
        // applied once the gate releases.
        assert_eq!(applied.load(Ordering::SeqCst), 2, "flush is a barrier");
        worker.join();
    });
    assert!(report.complete, "barrier model explored exhaustively");
    assert!(report.lock_cycles.is_empty());
}

#[test]
fn bounded_channel_backpressure_preserves_fifo_under_every_schedule() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), || {
        // queue_depth 1: the producer blocks on every send until the
        // worker drains — the store's backpressure mode.
        let (tx, rx) = sync_channel::<u32>(1);
        let consumer = model::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..3 {
            tx.send(i).expect("receiver alive");
        }
        drop(tx);
        let got = consumer.join();
        assert_eq!(got, vec![0, 1, 2], "backpressure must not reorder");
    });
    assert!(report.complete);
}

// ---------------------------------------------------------------------
// Bounded staleness (TraceCache::lookup_bounded's drift rule).
// ---------------------------------------------------------------------

#[test]
fn bounded_staleness_drift_never_exceeds_the_window() {
    if !checked_or_skip() {
        return;
    }
    const WINDOW: u64 = 1;
    let report = model::check(budget(), || {
        // (bucket_gen, updates_applied) move together under the shard
        // lock — the discipline the locked test above verifies. A cache
        // entry snapshots both; a later bounded lookup may serve it only
        // while the generation drift is within the window. The invariant:
        // a served entry is never missing more updates than the drift
        // (and hence the window) allows.
        let store = Arc::new(Mutex::new((0u64, 0u64)));
        let (recorded_gen, cached_updates) = {
            let s = store.lock().expect("shard lock");
            (s.0, s.1)
        };
        let writer = {
            let store = Arc::clone(&store);
            model::spawn(move || {
                for _ in 0..2 {
                    let mut s = store.lock().expect("shard lock");
                    s.0 = s.0.wrapping_add(1);
                    s.1 += 1;
                }
            })
        };
        {
            let s = store.lock().expect("shard lock");
            let drift = s.0.wrapping_sub(recorded_gen);
            if drift <= WINDOW {
                let missed = s.1 - cached_updates;
                assert!(
                    missed <= WINDOW,
                    "served an entry missing {missed} updates with window {WINDOW}"
                );
            } // else: invalidated — re-assembly, nothing served stale
        }
        writer.join();
    });
    assert!(report.complete);
}

// ---------------------------------------------------------------------
// Static/dynamic lock-order cross-check (df-audit).
// ---------------------------------------------------------------------

/// One bounded round of the production nesting discipline, miniaturized:
/// the worker drains under the shard write lock and bumps generations
/// (store -> gens); the assembler reads the shard, consults the trace
/// cache, and validates generations (store -> cache -> gens). These are
/// exactly the acquisition orders `ConcurrentShardedStore` uses, so the
/// runtime edges this round records must all be predicted by df-audit's
/// static lock-order graph.
fn nested_discipline_round() {
    let store = Arc::new(RwLock::new(0u64));
    let cache = Arc::new(Mutex::new(0u64));
    let gens = Arc::new(Mutex::new(0u64));
    let worker = {
        let store = Arc::clone(&store);
        let gens = Arc::clone(&gens);
        model::spawn(move || {
            let mut s = store.write().expect("shard lock");
            *s += 1;
            let mut g = gens.lock().expect("gen table");
            *g += 1;
            drop(g);
            drop(s);
        })
    };
    let assembler = {
        let store = Arc::clone(&store);
        let cache = Arc::clone(&cache);
        let gens = Arc::clone(&gens);
        model::spawn(move || {
            let s = store.read().expect("shard lock");
            let mut c = cache.lock().expect("trace cache");
            let g = gens.lock().expect("gen table");
            *c = (*s).wrapping_add(*g);
            drop(g);
            drop(c);
            drop(s);
        })
    };
    worker.join();
    assembler.join();
}

/// The df-audit cross-check: every lock-order edge the scheduler records
/// at runtime (by lock *creation site*) must be an edge the static
/// analysis predicted. A gap here means `df_check::audit` has a blind
/// spot — the static cycle check could then silently miss a real
/// inversion, so a gap fails CI.
#[test]
fn static_lock_graph_predicts_every_runtime_edge() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), nested_discipline_round);
    assert!(
        report.lock_cycles.is_empty(),
        "discipline must stay acyclic"
    );

    let runtime = model::runtime_lock_edges();
    assert!(!runtime.is_empty(), "the model run must record lock edges");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = df_check::audit::analyze_locks(&root).expect("static lock analysis");
    let gaps = df_check::audit::check_runtime_edges(&analysis, &runtime);
    assert!(
        gaps.is_empty(),
        "static graph missed runtime edges:\n{}",
        gaps.join("\n")
    );
}
