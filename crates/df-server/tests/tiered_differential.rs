//! Differential tests for tiered (hot/cold) trace assembly: a store
//! whose old buckets were spilled to disk segments and page back through
//! the buffer pool must be **extensionally identical** to the all-hot
//! oracle — same member sets, same parent edges — for every start span,
//! under randomized corpora, watermarks (hot/cold splits that straddle
//! envelopes), tombstone masks, and span caps.
//!
//! Also pins the trace-cache interaction: spilling is content-neutral,
//! so bucket generations do not move and a cached trace stays valid
//! across a spill of its own buckets.

use df_server::sharded::{assemble_trace_sharded, assemble_trace_sharded_parallel};
use df_server::{AssembleConfig, ConcurrentConfig, ConcurrentShardedStore, ShardedSpanStore};
use df_storage::{BufferPoolConfig, EvictionPolicy, ShardPolicy, TierConfig};
use df_types::ids::{FlowId, NodeId, Pid, SysTraceId, XRequestId};
use df_types::span::TapSide;
use df_types::trace::Trace;
use df_types::{FiveTuple, Span, SpanId, TimeNs};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// Unique per-test temp dir for segment files, removed on drop.
struct TestDir {
    path: PathBuf,
}

fn test_dir(tag: &str) -> TestDir {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos();
    let path = std::env::temp_dir().join(format!(
        "df-tiered-diff-{tag}-{}-{nanos}",
        std::process::id()
    ));
    TestDir { path }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Random corpus with deliberately small association-key spaces so spans
/// chain into multi-span traces, spread over ~4 one-second buckets so a
/// random watermark produces genuine hot/cold splits (including traces
/// straddling the boundary).
fn corpus(seed: u64, n: usize) -> Vec<Span> {
    let mut rng = TestRng::for_case("tiered-differential", seed);
    let sides = [
        TapSide::ClientProcess,
        TapSide::ClientNodeNic,
        TapSide::Gateway,
        TapSide::ServerNodeNic,
        TapSide::ServerProcess,
    ];
    (0..n)
        .map(|_| {
            let t = rng.next_u64() % 4_000; // ms over 4 buckets
            let mut s = Span::synthetic(
                sides[(rng.next_u64() % 5) as usize],
                t * 1_000_000,
                t * 1_000_000 + rng.next_u64() % 3_000_000,
            );
            s.capture.node = NodeId((rng.next_u64() % 3) as u32);
            s.flow_id = FlowId(rng.next_u64() % 8);
            s.five_tuple = FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, (rng.next_u64() % 6) as u8 + 1),
                (rng.next_u64() % 500) as u16 + 1024,
                Ipv4Addr::new(10, 0, 1, (rng.next_u64() % 6) as u8 + 1),
                80,
            );
            s.pid = Some(Pid((rng.next_u64() % 16) as u32));
            // Small key spaces: many spans share keys → chains form.
            if !rng.next_u64().is_multiple_of(3) {
                s.systrace_id_req = Some(SysTraceId(rng.next_u64() % 12));
            }
            if rng.next_u64().is_multiple_of(2) {
                s.systrace_id_resp = Some(SysTraceId(rng.next_u64() % 12));
            }
            if rng.next_u64().is_multiple_of(2) {
                s.x_request_id_req = Some(XRequestId(rng.next_u128() % 6));
            }
            if rng.next_u64().is_multiple_of(3) {
                s.tcp_seq_req = Some((rng.next_u64() % 10) as u32);
            }
            if rng.next_u64().is_multiple_of(4) {
                s.tcp_seq_resp = Some((rng.next_u64() % 10) as u32);
            }
            s
        })
        .collect()
}

/// Canonical edge list: (span, parent) sorted — the extensional content
/// of a trace.
fn edges(t: &Trace) -> Vec<(SpanId, Option<SpanId>)> {
    let mut e: Vec<_> = t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
    e.sort_unstable();
    e
}

/// The core differential: same corpus into an all-hot oracle and a
/// tiered store; spill the tiered store at `watermark_ms`; every start
/// span must assemble identically (sequential and parallel Phase 1).
fn assert_tiered_matches_oracle(
    tag: &str,
    spans: Vec<Span>,
    shards: usize,
    watermark_ms: u64,
    tombstone_every: Option<u64>,
    max_spans: usize,
) {
    let dir = test_dir(tag);
    let policy = ShardPolicy::with_shards(shards);

    let mut oracle = ShardedSpanStore::new(policy);
    let mut tiered = ShardedSpanStore::new(policy);
    let ids_a = oracle.insert_batch(spans.clone());
    let ids_b = tiered.insert_batch(spans);
    assert_eq!(ids_a, ids_b, "tiering must not disturb id assignment");

    if let Some(k) = tombstone_every {
        for &id in ids_a.iter().filter(|id| id.raw() % k == 0) {
            oracle.tombstone(id);
            tiered.tombstone(id);
        }
    }

    let pool = TierConfig::new(&dir.path).with_pool(BufferPoolConfig {
        frames: 3, // tighter than the cold-bucket count → real eviction
        k: 2,
        policy: EvictionPolicy::LruK,
        queue_depth: 16,
    });
    tiered.enable_tiering(pool);
    let stats = tiered
        .spill_before(TimeNs(watermark_ms * 1_000_000))
        .expect("spill succeeds");
    let (hot, cold) = tiered.tier_occupancy();
    assert_eq!(cold, stats.spans, "flip count matches spill stats");
    assert_eq!(hot + cold, oracle.len());

    let cfg = AssembleConfig {
        max_spans,
        ..AssembleConfig::default()
    };
    for &id in &ids_a {
        let want = assemble_trace_sharded(&oracle, id, &cfg);
        let got = assemble_trace_sharded(&tiered, id, &cfg);
        assert_eq!(
            edges(&want),
            edges(&got),
            "tiered assembly diverged from all-hot oracle at start {id:?} \
             (watermark {watermark_ms} ms, {shards} shards, cap {max_spans})"
        );
        let par = assemble_trace_sharded_parallel(&tiered, id, &cfg);
        assert_eq!(edges(&want), edges(&par), "parallel Phase 1 diverged");
    }
}

#[test]
fn straddling_assembly_matches_oracle_fixed_cases() {
    // Watermark mid-corpus: traces straddle the hot/cold boundary.
    assert_tiered_matches_oracle("fixed-mid", corpus(42, 120), 3, 2_000, None, 10_000);
    // Everything cold.
    assert_tiered_matches_oracle("fixed-all", corpus(43, 100), 2, 10_000, None, 10_000);
    // Nothing cold (watermark before the corpus) — spill is a no-op.
    assert_tiered_matches_oracle("fixed-none", corpus(44, 100), 2, 0, None, 10_000);
    // Tombstone mask + tight span cap.
    assert_tiered_matches_oracle("fixed-tomb", corpus(45, 120), 4, 2_500, Some(5), 7);
}

#[test]
fn spill_does_not_bump_bucket_generations() {
    let dir = test_dir("gens");
    let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(2));
    let ids = st.insert_batch(corpus(7, 80));
    st.enable_tiering(TierConfig::new(&dir.path));
    let gens_before: Vec<u64> = (0..6).map(|b| st.bucket_gen(b)).collect();
    let stats = st.spill_before(TimeNs(3_000_000_000)).expect("spill");
    assert!(stats.spans > 0, "something actually spilled");
    let gens_after: Vec<u64> = (0..6).map(|b| st.bucket_gen(b)).collect();
    assert_eq!(
        gens_before, gens_after,
        "spill is content-neutral: no generation bumps"
    );
    // And the spilled content is still fully readable.
    for &id in &ids {
        assert!(st.get(id).is_some(), "cold span {id:?} pages back in");
    }
}

#[test]
fn cached_trace_survives_a_spill_of_its_own_buckets() {
    let dir = test_dir("cache");
    let store = ConcurrentShardedStore::with_tiering(
        ShardPolicy::with_shards(2),
        ConcurrentConfig::default(),
        TierConfig::new(&dir.path),
    );
    let ids = store.insert_batch(corpus(9, 100));
    store.flush();

    let start = ids[0];
    let first = store.query_trace(start); // miss → cached
    let again = store.query_trace(start); // hit
    let s = store.stats();
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.cache_hits, 1);

    let stats = store.spill_before(TimeNs(5_000_000_000)).expect("spill");
    assert!(stats.spans > 0, "the trace's buckets actually spilled");
    let (_, cold) = store.tier_occupancy();
    assert_eq!(cold, stats.spans);

    // Spill bumped no generations, so the cached trace is still a hit —
    // and a fresh (cold-serving) assembly agrees with it.
    let after = store.query_trace(start);
    let s = store.stats();
    assert_eq!(s.cache_hits, 2, "cache entry survived the spill");
    assert_eq!(s.cache_invalidations, 0);
    assert_eq!(edges(&first), edges(&again));
    assert_eq!(edges(&first), edges(&after));

    // The pool serviced real page-ins for post-spill reads.
    for &id in &ids {
        assert!(store.get(id).is_some());
    }
    let pool = store.buffer_pool().expect("tiering enabled");
    assert!(pool.stats().misses > 0, "cold reads went through the pool");
}

proptest! {
    /// Randomized hot/cold splits: corpora, shard counts, watermarks,
    /// tombstone masks and span caps — tiered assembly always equals the
    /// all-hot oracle.
    #[test]
    fn prop_tiered_assembly_equals_all_hot_oracle(
        seed in any::<u64>(),
        shards in 1usize..4,
        watermark_ms in 0u64..4_500,
        tomb in 0u64..4,
        cap in 0usize..3,
    ) {
        let spans = corpus(seed, 60);
        let tombstone_every = if tomb == 0 { None } else { Some(tomb * 3) };
        let max_spans = [10_000, 9, 3][cap];
        assert_tiered_matches_oracle(
            "prop",
            spans,
            shards,
            watermark_ms,
            tombstone_every,
            max_spans,
        );
    }
}
