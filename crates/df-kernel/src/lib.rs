//! # df-kernel — the simulated kernel substrate
//!
//! The DeepFlow paper instruments a real Linux kernel with eBPF. This crate
//! is the substitution (DESIGN.md §1): a deterministic, discrete-event,
//! Linux-*shaped* kernel that exposes exactly the surface DeepFlow's agent
//! needs:
//!
//! * a **process model** ([`process`]) with processes, threads and
//!   Go-style coroutines (whose creation the agent observes to build
//!   pseudo-threads, paper §3.3.1);
//! * **TCP sockets** ([`socket`]) with real sequence-number accounting —
//!   the invariant that L2/3/4 forwarding preserves `tcp_seq` is what makes
//!   implicit inter-component association work (paper §3.3.2);
//! * the **ten syscall ABIs of Table 3** ([`syscalls`]), each firing *enter*
//!   and *exit* hooks;
//! * an **eBPF-style hook engine** ([`hooks`]) with kprobe / tracepoint /
//!   uprobe / uretprobe attach points, per-attach-type overhead accounting
//!   (reproducing Figure 13), a **verifier** ([`verifier`]) that admits or
//!   rejects programs, and a bounded **perf ring buffer** ([`ringbuf`])
//!   carrying events to user space.
//!
//! One [`Kernel`] instance models one node (VM / container host / physical
//! machine). The kernel is *synchronous*: callers (the `df-mesh` event loop)
//! own the virtual clock and hand the current [`df_types::TimeNs`] into every call;
//! the kernel replies with outbound segments and thread wake-ups, never
//! blocking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hooks;
pub mod kernel;
pub mod process;
pub mod ringbuf;
pub mod socket;
pub mod syscalls;
pub mod verifier;

pub use error::KernelError;
pub use hooks::{AttachPoint, BpfProgram, HookContext, HookEngine, HookOverheadModel, ProbeKind};
pub use kernel::{Fd, Kernel, KernelConfig, RecvResult, SyscallOutcome, Wakeup, WakeupKind};
pub use process::{CoroutineEvent, ProcessTable, ThreadState};
pub use ringbuf::PerfRingBuffer;
pub use socket::{ReadOutcome, RecvChunk, Socket, SocketState, MSS};
pub use syscalls::SyscallSurface;
pub use verifier::{ProgramSpec, VerifierError};
