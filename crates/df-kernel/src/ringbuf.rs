//! Bounded perf-style ring buffer carrying hook events to user space.
//!
//! Real eBPF programs publish into a perf/ring buffer that the agent mmaps;
//! when the consumer lags, the kernel *drops* events and counts the drops.
//! Reproducing the drop behaviour matters: the agent's session aggregation
//! must tolerate missing halves (paper §3.3.1 treats missing responses as
//! unexpected terminations).

use std::collections::VecDeque;

/// A bounded FIFO with drop accounting.
#[derive(Debug)]
pub struct PerfRingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
    pushed: u64,
}

impl<T> PerfRingBuffer<T> {
    /// Create a ring with the given capacity (entries, not bytes).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        PerfRingBuffer {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            pushed: 0,
        }
    }

    /// Publish an event. Returns `false` (and counts a drop) when full —
    /// like the kernel, we drop the *new* event rather than overwrite, so
    /// the consumer sees a contiguous prefix.
    pub fn push(&mut self, event: T) -> bool {
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            false
        } else {
            self.buf.push_back(event);
            self.pushed += 1;
            true
        }
    }

    /// Drain up to `max` events.
    pub fn drain(&mut self, max: usize) -> Vec<T> {
        let n = max.min(self.buf.len());
        self.buf.drain(..n).collect()
    }

    /// Drain everything.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events successfully published.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_fifo_order() {
        let mut rb = PerfRingBuffer::new(8);
        for i in 0..5 {
            assert!(rb.push(i));
        }
        assert_eq!(rb.drain(3), vec![0, 1, 2]);
        assert_eq!(rb.drain_all(), vec![3, 4]);
        assert!(rb.is_empty());
        assert_eq!(rb.pushed(), 5);
    }

    #[test]
    fn full_ring_drops_new_events() {
        let mut rb = PerfRingBuffer::new(2);
        assert!(rb.push(1));
        assert!(rb.push(2));
        assert!(!rb.push(3));
        assert_eq!(rb.dropped(), 1);
        assert_eq!(rb.drain_all(), vec![1, 2]);
        // after draining, pushes succeed again
        assert!(rb.push(4));
        assert_eq!(rb.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = PerfRingBuffer::<u8>::new(0);
    }
}
