//! TCP/UDP socket model with real sequence-number accounting.
//!
//! The sequence numbers matter: DeepFlow's inter-component association
//! (paper §3.3.2) relies on the fact that the TCP sequence of a message is
//! identical at every L2/3/4 capture point along the path. This module
//! therefore implements honest `snd_nxt`/`rcv_nxt` accounting, MSS
//! segmentation, in-order reassembly and duplicate suppression — enough that
//! a retransmitted segment is observable at a tap yet delivered exactly once
//! to the application.

use crate::error::KernelError;
use bytes::Bytes;
use df_types::net::{FiveTuple, TcpFlags, TransportProtocol};
use df_types::packet::Segment;
use df_types::SocketId;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Maximum segment size used when chunking an application write.
pub const MSS: usize = 1448;

/// Default receive-buffer capacity in bytes. When the application stops
/// reading (the RabbitMQ-backlog case, Fig. 12) the buffer fills and the
/// socket advertises a zero window.
pub const DEFAULT_RCV_BUF: usize = 256 * 1024;

/// TCP connection state (simplified FSM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketState {
    /// Created, not yet bound/connected.
    Closed,
    /// Passive open, accepting connections.
    Listen,
    /// Active open sent SYN, awaiting SYN+ACK.
    SynSent,
    /// Passive side got SYN, sent SYN+ACK, awaiting ACK.
    SynReceived,
    /// Data can flow.
    Established,
    /// We closed; peer may still send.
    FinWait,
    /// Peer closed; we may still send.
    CloseWait,
    /// Aborted by RST.
    Reset,
}

/// One datagram/stream chunk sitting in the receive queue, tagged with the
/// sequence number of its first byte (what the ingress hook reports as
/// `tcp_seq`).
#[derive(Debug, Clone)]
pub struct RecvChunk {
    /// Sequence number of the first byte.
    pub seq: u32,
    /// The bytes.
    pub data: Bytes,
    /// Whether this chunk begins a new application message. Derived from PSH
    /// boundaries: the sender sets PSH on the final segment of each write, so
    /// the chunk *after* a PSH starts a message. Drives the `first_syscall`
    /// flag of hook events (paper §3.3.1).
    pub msg_start: bool,
    /// Datagram peer (UDP only).
    pub peer: Option<(Ipv4Addr, u16)>,
}

/// A socket.
#[derive(Debug)]
pub struct Socket {
    /// DeepFlow-assigned globally unique id.
    pub id: SocketId,
    /// Transport protocol.
    pub protocol: TransportProtocol,
    /// Local address/port.
    pub local: (Ipv4Addr, u16),
    /// Remote address/port (None until connected).
    pub remote: Option<(Ipv4Addr, u16)>,
    /// Connection state.
    pub state: SocketState,
    /// Initial send sequence number.
    pub iss: u32,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// In-order data ready for the application.
    pub recv_queue: VecDeque<RecvChunk>,
    /// Bytes currently buffered in `recv_queue` (+ out-of-order buffer).
    pub recv_buffered: usize,
    /// Receive buffer capacity; exceeded ⇒ zero-window advertisement.
    pub recv_capacity: usize,
    /// Out-of-order segments awaiting the gap to fill (`(seq, data, psh)`).
    ooo: Vec<(u32, Bytes, bool)>,
    /// Established child connections awaiting `accept` (listeners only).
    pub accept_queue: VecDeque<SocketId>,
    /// Listen backlog limit.
    pub backlog: usize,
    /// Duplicate segments suppressed (observed retransmissions reaching us).
    pub dup_segments: u64,
    /// Listener this socket was accepted from, for passive-open children.
    pub parent_listener: Option<SocketId>,
    /// Whether the next in-order chunk begins a new application message
    /// (true after a PSH boundary).
    pending_msg_start: bool,
}

impl Socket {
    /// Create a fresh socket.
    pub fn new(
        id: SocketId,
        protocol: TransportProtocol,
        local: (Ipv4Addr, u16),
        iss: u32,
    ) -> Self {
        Socket {
            id,
            protocol,
            local,
            remote: None,
            state: SocketState::Closed,
            iss,
            snd_nxt: iss,
            rcv_nxt: 0,
            recv_queue: VecDeque::new(),
            recv_buffered: 0,
            recv_capacity: DEFAULT_RCV_BUF,
            ooo: Vec::new(),
            accept_queue: VecDeque::new(),
            backlog: 128,
            dup_segments: 0,
            parent_listener: None,
            pending_msg_start: true,
        }
    }

    /// The five-tuple from this socket's perspective.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        let (rip, rport) = self.remote?;
        Some(FiveTuple {
            src_ip: self.local.0,
            src_port: self.local.1,
            dst_ip: rip,
            dst_port: rport,
            protocol: self.protocol,
        })
    }

    /// Whether data can currently be sent.
    pub fn can_send(&self) -> bool {
        match self.protocol {
            TransportProtocol::Udp => self.remote.is_some(),
            TransportProtocol::Tcp => {
                matches!(
                    self.state,
                    SocketState::Established | SocketState::CloseWait
                )
            }
        }
    }

    /// Segment an application write into MSS-sized wire segments, advancing
    /// `snd_nxt`. The first segment's `seq` is the message's `tcp_seq`.
    pub fn segmentize(&mut self, payload: Bytes) -> Result<Vec<Segment>, KernelError> {
        if !self.can_send() {
            return Err(match self.state {
                SocketState::Reset => KernelError::ConnectionReset,
                SocketState::FinWait | SocketState::Closed => KernelError::BrokenPipe,
                _ => KernelError::NotConnected,
            });
        }
        let ft = self.five_tuple().ok_or(KernelError::NotConnected)?;
        let mut segments = Vec::with_capacity(payload.len() / MSS + 1);
        let mut offset = 0usize;
        // An empty write still produces one (empty) segment so hooks fire.
        loop {
            let end = (offset + MSS).min(payload.len());
            let chunk = payload.slice(offset..end);
            let last = end >= payload.len();
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
            segments.push(Segment {
                five_tuple: ft,
                seq,
                ack: self.rcv_nxt,
                // PSH marks the end of the application write, like real TCP;
                // the receiver derives message boundaries from it.
                flags: if last {
                    TcpFlags::PSH_ACK
                } else {
                    TcpFlags::ACK
                },
                window: self.window(),
                payload: chunk,
                is_retransmission: false,
            });
            offset = end;
            if last {
                break;
            }
        }
        Ok(segments)
    }

    /// Currently advertisable receive window.
    pub fn window(&self) -> u16 {
        let free = self.recv_capacity.saturating_sub(self.recv_buffered);
        free.min(u16::MAX as usize) as u16
    }

    /// Accept an incoming data segment. Performs duplicate suppression and
    /// in-order reassembly. Returns `true` if new in-order data became
    /// readable (i.e. a blocked reader should wake).
    pub fn receive_data(&mut self, seg: &Segment) -> bool {
        self.receive_data_from(seg, None)
    }

    /// Like [`Socket::receive_data`] but recording the datagram peer (UDP).
    pub fn receive_data_from(&mut self, seg: &Segment, peer: Option<(Ipv4Addr, u16)>) -> bool {
        debug_assert_eq!(self.protocol, seg.five_tuple.protocol);
        if self.protocol == TransportProtocol::Udp {
            self.recv_buffered += seg.payload.len();
            self.recv_queue.push_back(RecvChunk {
                seq: seg.seq,
                data: seg.payload.clone(),
                msg_start: true,
                peer,
            });
            return true;
        }
        if seg.payload.is_empty() {
            return false;
        }
        let seq = seg.seq;
        let end = seq.wrapping_add(seg.payload.len() as u32);
        // Entirely old data (retransmission already delivered)?
        if seq_leq(end, self.rcv_nxt) {
            self.dup_segments += 1;
            return false;
        }
        if seq == self.rcv_nxt {
            self.enqueue_in_order(seq, seg.payload.clone(), seg.flags.psh);
            self.rcv_nxt = end;
            self.flush_ooo();
            true
        } else if seq_lt(self.rcv_nxt, seq) {
            // Future data: buffer out of order (dedup by seq).
            if !self.ooo.iter().any(|(s, _, _)| *s == seq) {
                self.recv_buffered += seg.payload.len();
                self.ooo.push((seq, seg.payload.clone(), seg.flags.psh));
            } else {
                self.dup_segments += 1;
            }
            false
        } else {
            // Partial overlap: trim the already-delivered prefix.
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            if skip < seg.payload.len() {
                let fresh = seg.payload.slice(skip..);
                let fresh_seq = self.rcv_nxt;
                let flen = fresh.len() as u32;
                self.enqueue_in_order(fresh_seq, fresh, seg.flags.psh);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(flen);
                self.flush_ooo();
                true
            } else {
                self.dup_segments += 1;
                false
            }
        }
    }

    fn enqueue_in_order(&mut self, seq: u32, data: Bytes, psh: bool) {
        self.recv_buffered += data.len();
        let msg_start = self.pending_msg_start;
        // The segment carrying PSH ends the application write, so the *next*
        // chunk begins a fresh message.
        self.pending_msg_start = psh;
        self.recv_queue.push_back(RecvChunk {
            seq,
            data,
            msg_start,
            peer: None,
        });
    }

    fn flush_ooo(&mut self) {
        while let Some(pos) = self.ooo.iter().position(|(s, _, _)| *s == self.rcv_nxt) {
            let (seq, data, psh) = self.ooo.swap_remove(pos);
            // bytes were already counted when buffered out-of-order; move
            // them into the in-order queue without double counting.
            self.recv_buffered -= data.len();
            let len = data.len() as u32;
            self.enqueue_in_order(seq, data, psh);
            self.rcv_nxt = self.rcv_nxt.wrapping_add(len);
        }
    }

    /// Application read: dequeue up to `max` bytes, returning the bytes, the
    /// sequence number of the first byte, and whether the read begins a new
    /// application message (`first_syscall` for the ingress hook).
    ///
    /// A read coalesces consecutive chunks of the *same* message but stops
    /// at a message boundary, mirroring the request/response read pattern of
    /// RPC servers.
    pub fn read(&mut self, max: usize) -> Result<ReadOutcome, KernelError> {
        if self.recv_queue.is_empty() {
            return match self.state {
                SocketState::Reset => Err(KernelError::ConnectionReset),
                SocketState::CloseWait => Ok(ReadOutcome {
                    data: Bytes::new(),
                    seq: self.rcv_nxt,
                    msg_start: false,
                    peer: None,
                }), // EOF
                _ => Err(KernelError::WouldBlock),
            };
        }
        let front = self.recv_queue.front().expect("checked non-empty");
        let first_seq = front.seq;
        let msg_start = front.msg_start;
        let peer = front.peer;
        let mut out = Vec::new();
        let mut consumed_any = false;
        while out.len() < max {
            let Some(front) = self.recv_queue.front_mut() else {
                break;
            };
            if consumed_any && front.msg_start {
                break; // stop at the next message boundary
            }
            let take = (max - out.len()).min(front.data.len());
            out.extend_from_slice(&front.data.slice(..take));
            consumed_any = true;
            if take == front.data.len() {
                self.recv_queue.pop_front();
            } else {
                front.data = front.data.slice(take..);
                front.seq = front.seq.wrapping_add(take as u32);
                front.msg_start = false; // continuation of a split read
            }
            if self.protocol == TransportProtocol::Udp {
                break; // datagram semantics: one datagram per read
            }
        }
        self.recv_buffered = self.recv_buffered.saturating_sub(out.len());
        Ok(ReadOutcome {
            data: Bytes::from(out),
            seq: first_seq,
            msg_start,
            peer,
        })
    }

    /// Whether a reader would find data right now.
    pub fn readable(&self) -> bool {
        !self.recv_queue.is_empty()
            || matches!(self.state, SocketState::Reset | SocketState::CloseWait)
    }
}

/// Result of a successful application read.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// Bytes delivered (empty = EOF).
    pub data: Bytes,
    /// Sequence number of the first delivered byte.
    pub seq: u32,
    /// Whether the read began a new application message.
    pub msg_start: bool,
    /// Datagram peer (UDP only).
    pub peer: Option<(Ipv4Addr, u16)>,
}

/// `a < b` in sequence space (RFC 1982-style wraparound comparison).
pub fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

/// `a <= b` in sequence space.
pub fn seq_leq(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock() -> Socket {
        let mut s = Socket::new(
            SocketId(1),
            TransportProtocol::Tcp,
            (Ipv4Addr::new(10, 0, 0, 1), 40000),
            1000,
        );
        s.remote = Some((Ipv4Addr::new(10, 0, 0, 2), 80));
        s.state = SocketState::Established;
        s.rcv_nxt = 5000;
        s
    }

    fn data_seg(s: &Socket, seq: u32, payload: &'static [u8]) -> Segment {
        Segment {
            five_tuple: s.five_tuple().unwrap().reversed(),
            seq,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            payload: Bytes::from_static(payload),
            is_retransmission: false,
        }
    }

    #[test]
    fn segmentize_advances_snd_nxt_and_chunks_at_mss() {
        let mut s = sock();
        let big = Bytes::from(vec![0u8; MSS * 2 + 100]);
        let segs = s.segmentize(big).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].seq, 1000);
        assert_eq!(segs[1].seq, 1000 + MSS as u32);
        assert_eq!(segs[2].payload.len(), 100);
        assert_eq!(s.snd_nxt, 1000 + (MSS * 2 + 100) as u32);
    }

    #[test]
    fn segmentize_requires_connection() {
        let mut s = Socket::new(
            SocketId(2),
            TransportProtocol::Tcp,
            (Ipv4Addr::new(10, 0, 0, 1), 40001),
            0,
        );
        assert!(matches!(
            s.segmentize(Bytes::from_static(b"x")),
            Err(KernelError::BrokenPipe)
        ));
        s.state = SocketState::Reset;
        assert!(matches!(
            s.segmentize(Bytes::from_static(b"x")),
            Err(KernelError::ConnectionReset)
        ));
    }

    #[test]
    fn in_order_delivery_and_read() {
        let mut s = sock();
        let seg = data_seg(&s, 5000, b"hello world");
        assert!(s.receive_data(&seg));
        assert_eq!(s.rcv_nxt, 5011);
        let r = s.read(1024).unwrap();
        assert_eq!(&r.data[..], b"hello world");
        assert_eq!(r.seq, 5000);
        assert!(r.msg_start, "first read of a fresh message");
        assert!(matches!(s.read(1024), Err(KernelError::WouldBlock)));
    }

    #[test]
    fn duplicate_segment_suppressed_but_counted() {
        let mut s = sock();
        let seg = data_seg(&s, 5000, b"hello");
        assert!(s.receive_data(&seg));
        assert!(!s.receive_data(&seg)); // retransmitted copy
        assert_eq!(s.dup_segments, 1);
        let r = s.read(1024).unwrap();
        assert_eq!(&r.data[..], b"hello"); // delivered once
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut s = sock();
        // One application message split over two segments: only the second
        // carries PSH (end-of-write), like Socket::segmentize produces.
        let mut s1 = data_seg(&s, 5000, b"hello");
        s1.flags = TcpFlags::ACK;
        let s2 = data_seg(&s, 5005, b"world");
        assert!(!s.receive_data(&s2)); // gap: not readable yet
        assert!(s.receive_data(&s1)); // fills the gap
        assert_eq!(s.rcv_nxt, 5010);
        let r = s.read(1024).unwrap();
        assert_eq!(&r.data[..], b"helloworld");
        assert_eq!(r.seq, 5000);
    }

    #[test]
    fn read_stops_at_message_boundary() {
        let mut s = sock();
        // Two separate application messages (each segment PSH-terminated).
        assert!(s.receive_data(&data_seg(&s, 5000, b"first")));
        assert!(s.receive_data(&data_seg(&s, 5005, b"second")));
        let r1 = s.read(1024).unwrap();
        assert_eq!(&r1.data[..], b"first");
        assert!(r1.msg_start);
        let r2 = s.read(1024).unwrap();
        assert_eq!(&r2.data[..], b"second");
        assert!(r2.msg_start);
    }

    #[test]
    fn partial_overlap_trims_prefix() {
        let mut s = sock();
        assert!(s.receive_data(&data_seg(&s, 5000, b"hello")));
        // Overlapping retransmission covering [5003, 5008)
        assert!(s.receive_data(&data_seg(&s, 5003, b"loABC")));
        let r = s.read(1024).unwrap();
        assert_eq!(&r.data[..], b"hello");
        let r2 = s.read(1024).unwrap();
        assert_eq!(&r2.data[..], b"ABC");
    }

    #[test]
    fn read_respects_max_and_preserves_seq_across_partial_reads() {
        let mut s = sock();
        assert!(s.receive_data(&data_seg(&s, 5000, b"abcdef")));
        let r1 = s.read(4).unwrap();
        assert_eq!(&r1.data[..], b"abcd");
        assert_eq!(r1.seq, 5000);
        assert!(r1.msg_start);
        let r2 = s.read(4).unwrap();
        assert_eq!(&r2.data[..], b"ef");
        assert_eq!(r2.seq, 5004);
        assert!(!r2.msg_start, "continuation read is not a message start");
    }

    #[test]
    fn window_shrinks_as_buffer_fills() {
        let mut s = sock();
        s.recv_capacity = 10;
        assert_eq!(s.window(), 10);
        assert!(s.receive_data(&data_seg(&s, 5000, b"abcdef")));
        assert_eq!(s.window(), 4);
        assert!(s.receive_data(&data_seg(&s, 5006, b"ghijkl")));
        assert_eq!(s.window(), 0); // zero window: receiver stalled
    }

    #[test]
    fn read_after_reset_and_close() {
        let mut s = sock();
        s.state = SocketState::Reset;
        assert!(matches!(s.read(10), Err(KernelError::ConnectionReset)));
        let mut s2 = sock();
        s2.state = SocketState::CloseWait;
        let r = s2.read(10).unwrap();
        assert!(r.data.is_empty()); // EOF
    }

    #[test]
    fn segmentize_sets_psh_only_on_final_segment() {
        let mut s = sock();
        let segs = s.segmentize(Bytes::from(vec![0u8; MSS + 10])).unwrap();
        assert_eq!(segs.len(), 2);
        assert!(!segs[0].flags.psh);
        assert!(segs[1].flags.psh);
    }

    #[test]
    fn udp_datagram_read_returns_peer() {
        let mut s = Socket::new(
            SocketId(9),
            TransportProtocol::Udp,
            (Ipv4Addr::new(10, 0, 0, 1), 53),
            0,
        );
        let seg = Segment {
            five_tuple: FiveTuple::udp(
                Ipv4Addr::new(10, 0, 0, 7),
                5555,
                Ipv4Addr::new(10, 0, 0, 1),
                53,
            ),
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            window: 0,
            payload: Bytes::from_static(b"query"),
            is_retransmission: false,
        };
        assert!(s.receive_data_from(&seg, Some((Ipv4Addr::new(10, 0, 0, 7), 5555))));
        let r = s.read(1024).unwrap();
        assert_eq!(&r.data[..], b"query");
        assert_eq!(r.peer, Some((Ipv4Addr::new(10, 0, 0, 7), 5555)));
    }

    #[test]
    fn seq_space_comparison_wraps() {
        assert!(seq_lt(u32::MAX - 10, 5));
        assert!(!seq_lt(5, u32::MAX - 10));
        assert!(seq_leq(7, 7));
    }
}
