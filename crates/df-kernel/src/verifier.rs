//! A miniature eBPF-verifier analogue.
//!
//! Paper §2.3.1: "these programs are validated by the eBPF verifier prior to
//! execution, allowing BPF programs to access and manipulate kernel data
//! structures without crashing the kernel". We reproduce the *admission*
//! behaviour: a program declares its static properties ([`ProgramSpec`]) and
//! the verifier enforces the same classes of limits the real verifier does —
//! instruction budget, bounded loops, stack ceiling and a helper whitelist.
//! Programs that fail verification never attach, which is the safety story
//! that distinguishes eBPF agents from crash-prone kernel modules (§2.3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Helper functions a program may call (a tiny whitelist modelled after the
/// bpf helpers DeepFlow's agent actually uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Helper {
    MapLookup,
    MapUpdate,
    MapDelete,
    ProbeRead,
    GetCurrentPidTgid,
    GetCurrentComm,
    KtimeGetNs,
    PerfEventOutput,
    SkbLoadBytes,
}

impl Helper {
    /// Whether the helper is admitted for socket-tracing program types.
    pub fn allowed(self) -> bool {
        // All listed helpers are allowed; the whitelist exists so tests can
        // exercise rejection via `Unknown` (represented by spec flag below).
        true
    }
}

/// Static description of a BPF program, checked at attach time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Program name (for diagnostics and Fig. 13 per-program accounting).
    pub name: String,
    /// Number of instructions after JIT-independent lowering.
    pub instructions: u32,
    /// Maximum trip count of any loop, `None` = provably loop-free,
    /// `Some(0)` = verifier could not bound a loop (rejected).
    pub max_loop_bound: Option<u32>,
    /// Stack bytes used.
    pub stack_bytes: u32,
    /// Helpers invoked.
    pub helpers: Vec<Helper>,
    /// Set if the program dereferences unchecked pointers (always rejected;
    /// exists so tests can exercise the real verifier's core job).
    pub unchecked_memory_access: bool,
}

impl ProgramSpec {
    /// A reasonable spec for a small tracing program.
    pub fn small(name: &str) -> Self {
        ProgramSpec {
            name: name.to_string(),
            instructions: 512,
            max_loop_bound: None,
            stack_bytes: 256,
            helpers: vec![
                Helper::MapLookup,
                Helper::MapUpdate,
                Helper::GetCurrentPidTgid,
                Helper::KtimeGetNs,
                Helper::PerfEventOutput,
            ],
            unchecked_memory_access: false,
        }
    }
}

/// Instruction budget (the real verifier's 1M-insn limit).
pub const MAX_INSTRUCTIONS: u32 = 1_000_000;
/// Stack limit (the real 512-byte eBPF stack).
pub const MAX_STACK_BYTES: u32 = 512;
/// Largest admissible bounded-loop trip count.
pub const MAX_LOOP_BOUND: u32 = 1 << 23;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// Over the instruction budget.
    TooManyInstructions {
        /// Declared count.
        got: u32,
    },
    /// A loop could not be bounded (`max_loop_bound == Some(0)`) or exceeds
    /// the admissible trip count.
    UnboundedLoop,
    /// Stack usage exceeds the 512-byte eBPF stack.
    StackTooLarge {
        /// Declared usage.
        got: u32,
    },
    /// Program performs unchecked memory access.
    UncheckedMemoryAccess,
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::TooManyInstructions { got } => {
                write!(
                    f,
                    "program too large: {got} > {MAX_INSTRUCTIONS} instructions"
                )
            }
            VerifierError::UnboundedLoop => write!(f, "back-edge with unbounded trip count"),
            VerifierError::StackTooLarge { got } => {
                write!(f, "stack usage {got} > {MAX_STACK_BYTES} bytes")
            }
            VerifierError::UncheckedMemoryAccess => {
                write!(f, "unchecked memory access (R1 invalid mem access)")
            }
        }
    }
}

impl std::error::Error for VerifierError {}

/// Verify a program spec. `Ok` means the program may attach.
pub fn verify(spec: &ProgramSpec) -> Result<(), VerifierError> {
    if spec.instructions > MAX_INSTRUCTIONS {
        return Err(VerifierError::TooManyInstructions {
            got: spec.instructions,
        });
    }
    match spec.max_loop_bound {
        Some(0) => return Err(VerifierError::UnboundedLoop),
        Some(b) if b > MAX_LOOP_BOUND => return Err(VerifierError::UnboundedLoop),
        _ => {}
    }
    if spec.stack_bytes > MAX_STACK_BYTES {
        return Err(VerifierError::StackTooLarge {
            got: spec.stack_bytes,
        });
    }
    if spec.unchecked_memory_access {
        return Err(VerifierError::UncheckedMemoryAccess);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_program_verifies() {
        assert!(verify(&ProgramSpec::small("df_sys_enter_read")).is_ok());
    }

    #[test]
    fn oversized_program_rejected() {
        let mut s = ProgramSpec::small("huge");
        s.instructions = MAX_INSTRUCTIONS + 1;
        assert_eq!(
            verify(&s),
            Err(VerifierError::TooManyInstructions {
                got: MAX_INSTRUCTIONS + 1
            })
        );
    }

    #[test]
    fn unbounded_loop_rejected() {
        let mut s = ProgramSpec::small("loopy");
        s.max_loop_bound = Some(0);
        assert_eq!(verify(&s), Err(VerifierError::UnboundedLoop));
        s.max_loop_bound = Some(MAX_LOOP_BOUND + 1);
        assert_eq!(verify(&s), Err(VerifierError::UnboundedLoop));
        s.max_loop_bound = Some(100);
        assert!(verify(&s).is_ok());
    }

    #[test]
    fn big_stack_rejected() {
        let mut s = ProgramSpec::small("stacky");
        s.stack_bytes = 1024;
        assert!(matches!(
            verify(&s),
            Err(VerifierError::StackTooLarge { got: 1024 })
        ));
    }

    #[test]
    fn unchecked_memory_rejected() {
        let mut s = ProgramSpec::small("wild");
        s.unchecked_memory_access = true;
        assert_eq!(verify(&s), Err(VerifierError::UncheckedMemoryAccess));
    }
}
