//! The [`Kernel`]: one simulated node's kernel.
//!
//! Synchronous discrete-event design: the caller owns the virtual clock and
//! passes `now` into every operation; the kernel never blocks. A blocking
//! syscall returns [`SyscallOutcome::WouldBlock`], the caller parks the
//! thread, and a later [`Kernel::deliver`] returns [`Wakeup`]s telling the
//! caller which threads to resume (they then *retry* the syscall — at which
//! point the exit hook fires with the original enter timestamp association,
//! exactly the (pid, tid) hashmap join described in paper §3.3.1).

use crate::error::KernelError;
use crate::hooks::{AttachPoint, HookContext, HookEngine, HookOverheadModel, HookPhase};
use crate::process::{ProcessTable, ThreadState};
use crate::socket::{ReadOutcome, Socket, SocketState};
use bytes::Bytes;
use df_types::net::{FiveTuple, TcpFlags, TransportProtocol};
use df_types::packet::Segment;
use df_types::time::{DurationNs, TimeNs};
use df_types::{Direction, NodeId, Pid, SocketId, SyscallAbi, Tid};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// File descriptor.
pub type Fd = u32;

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Node identity (stamped into every hook context).
    pub node: NodeId,
    /// Hostname, for diagnostics.
    pub hostname: String,
    /// Payload snap length copied into hook contexts (like eBPF's bounded
    /// `bpf_probe_read`).
    pub snap_len: usize,
    /// Perf ring capacity in events.
    pub ring_capacity: usize,
    /// Inherent (uninstrumented) virtual cost of one syscall.
    pub base_syscall_ns: u64,
    /// Hook overhead model.
    pub overhead: HookOverheadModel,
    /// RNG seed (initial sequence numbers).
    pub seed: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            node: NodeId(0),
            hostname: "node".into(),
            snap_len: 1024,
            ring_capacity: 1 << 16,
            base_syscall_ns: 450,
            overhead: HookOverheadModel::default(),
            seed: 0x5eed,
        }
    }
}

/// Result of a (possibly blocking) syscall attempt.
#[derive(Debug)]
pub enum SyscallOutcome<T> {
    /// Completed; `duration` is the virtual time spent in the kernel
    /// (inherent cost + instrumentation overhead).
    Complete {
        /// Return value.
        value: T,
        /// Virtual kernel time consumed.
        duration: DurationNs,
    },
    /// The thread must park and retry after a matching [`Wakeup`].
    WouldBlock,
    /// Failed.
    Error {
        /// The errno-shaped failure.
        err: KernelError,
        /// Virtual kernel time consumed discovering it.
        duration: DurationNs,
    },
}

impl<T> SyscallOutcome<T> {
    /// Unwrap a completion (test helper).
    pub fn unwrap_complete(self) -> (T, DurationNs) {
        match self {
            SyscallOutcome::Complete { value, duration } => (value, duration),
            SyscallOutcome::WouldBlock => panic!("syscall would block"),
            SyscallOutcome::Error { err, .. } => panic!("syscall failed: {err}"),
        }
    }
}

/// Why a parked thread should be resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeupKind {
    /// Data (or EOF) is readable on the socket the thread was blocked on.
    Readable,
    /// `connect` completed.
    Connected,
    /// `connect` failed (RST / refused).
    ConnectFailed,
    /// A connection is ready to `accept`.
    Acceptable,
    /// The connection was reset while blocked.
    Reset,
}

/// A thread to resume after packet delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wakeup {
    /// The thread to resume.
    pub tid: Tid,
    /// Why.
    pub kind: WakeupKind,
    /// The socket involved.
    pub socket: SocketId,
}

#[derive(Debug, Clone, Copy)]
struct PendingEnter {
    /// ABI of the blocked syscall — a retry must use the same one.
    abi: SyscallAbi,
}

/// Data returned by a completed ingress syscall.
#[derive(Debug, Clone)]
pub struct RecvResult {
    /// Bytes delivered (empty = orderly EOF).
    pub data: Bytes,
    /// TCP sequence of the first byte.
    pub tcp_seq: u32,
    /// Whether this read began a new application message.
    pub msg_start: bool,
    /// Datagram peer (UDP).
    pub peer: Option<(Ipv4Addr, u16)>,
}

#[derive(Default)]
struct FdTable {
    next: Fd,
    map: HashMap<Fd, SocketId>,
}

/// One node's kernel.
pub struct Kernel {
    cfg: KernelConfig,
    /// Process/thread/coroutine table.
    pub procs: ProcessTable,
    /// Hook engine (eBPF substrate) and its perf ring.
    pub hooks: HookEngine,
    sockets: HashMap<SocketId, Socket>,
    socket_owner: HashMap<SocketId, Pid>,
    fd_tables: HashMap<Pid, FdTable>,
    by_tuple: HashMap<FiveTuple, SocketId>,
    tcp_listeners: HashMap<(Ipv4Addr, u16), SocketId>,
    udp_bound: HashMap<(Ipv4Addr, u16), SocketId>,
    parked_readers: HashMap<SocketId, Vec<Tid>>,
    parked_accepters: HashMap<SocketId, Vec<Tid>>,
    parked_connecters: HashMap<SocketId, Tid>,
    pending_enter: HashMap<Tid, PendingEnter>,
    outbox: Vec<Segment>,
    next_socket_local: u64,
    next_ephemeral: u16,
    rng: SmallRng,
}

impl Kernel {
    /// Build a kernel.
    pub fn new(cfg: KernelConfig) -> Self {
        let hooks = HookEngine::new(cfg.ring_capacity, cfg.overhead.clone());
        let rng = SmallRng::seed_from_u64(cfg.seed ^ u64::from(cfg.node.raw()));
        Kernel {
            cfg,
            procs: ProcessTable::new(),
            hooks,
            sockets: HashMap::new(),
            socket_owner: HashMap::new(),
            fd_tables: HashMap::new(),
            by_tuple: HashMap::new(),
            tcp_listeners: HashMap::new(),
            udp_bound: HashMap::new(),
            parked_readers: HashMap::new(),
            parked_accepters: HashMap::new(),
            parked_connecters: HashMap::new(),
            pending_enter: HashMap::new(),
            outbox: Vec::new(),
            next_socket_local: 1,
            next_ephemeral: 32768,
            rng,
        }
    }

    /// This kernel's node id.
    pub fn node(&self) -> NodeId {
        self.cfg.node
    }

    /// Hostname.
    pub fn hostname(&self) -> &str {
        &self.cfg.hostname
    }

    fn alloc_socket_id(&mut self) -> SocketId {
        let id = SocketId((u64::from(self.cfg.node.raw()) << 32) | self.next_socket_local);
        self.next_socket_local += 1;
        id
    }

    fn alloc_fd(&mut self, pid: Pid, sid: SocketId) -> Fd {
        let table = self.fd_tables.entry(pid).or_default();
        table.next += 1;
        let fd = table.next + 2; // 0/1/2 are stdio
        table.map.insert(fd, sid);
        fd
    }

    /// `socket(2)`: create a socket for `pid`.
    pub fn socket(&mut self, pid: Pid, protocol: TransportProtocol) -> Result<Fd, KernelError> {
        if self.procs.process(pid).is_none() {
            return Err(KernelError::NoSuchProcess);
        }
        let sid = self.alloc_socket_id();
        let iss = self.rng.gen::<u32>();
        let sock = Socket::new(sid, protocol, (Ipv4Addr::UNSPECIFIED, 0), iss);
        self.sockets.insert(sid, sock);
        self.socket_owner.insert(sid, pid);
        Ok(self.alloc_fd(pid, sid))
    }

    /// `bind(2)`.
    pub fn bind(&mut self, pid: Pid, fd: Fd, ip: Ipv4Addr, port: u16) -> Result<(), KernelError> {
        let sid = self.sid(pid, fd)?;
        let proto = self.sockets[&sid].protocol;
        match proto {
            TransportProtocol::Tcp => {
                if self.tcp_listeners.contains_key(&(ip, port)) {
                    return Err(KernelError::AddrInUse);
                }
            }
            TransportProtocol::Udp => {
                if self.udp_bound.contains_key(&(ip, port)) {
                    return Err(KernelError::AddrInUse);
                }
                self.udp_bound.insert((ip, port), sid);
            }
        }
        let sock = self.sockets.get_mut(&sid).expect("sid resolved");
        sock.local = (ip, port);
        Ok(())
    }

    /// `listen(2)`.
    pub fn listen(&mut self, pid: Pid, fd: Fd, backlog: usize) -> Result<(), KernelError> {
        let sid = self.sid(pid, fd)?;
        let sock = self.sockets.get_mut(&sid).ok_or(KernelError::BadFd)?;
        if sock.protocol != TransportProtocol::Tcp {
            return Err(KernelError::Invalid("listen on non-TCP socket"));
        }
        if sock.local.1 == 0 {
            return Err(KernelError::Invalid("listen before bind"));
        }
        sock.state = SocketState::Listen;
        sock.backlog = backlog;
        self.tcp_listeners.insert(sock.local, sid);
        Ok(())
    }

    /// `connect(2)`. For TCP this sends a SYN and parks the thread
    /// ([`SyscallOutcome::WouldBlock`]); a [`WakeupKind::Connected`] follows
    /// when the SYN+ACK arrives. For UDP it just sets the peer.
    pub fn connect(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        local_ip: Ipv4Addr,
        dst: (Ipv4Addr, u16),
    ) -> SyscallOutcome<()> {
        let base = DurationNs(self.cfg.base_syscall_ns);
        let sid = match self.sid(pid, fd) {
            Ok(s) => s,
            Err(err) => {
                return SyscallOutcome::Error {
                    err,
                    duration: base,
                }
            }
        };
        let eph = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(32768);
        let sock = self.sockets.get_mut(&sid).expect("sid resolved");
        if sock.remote.is_some() {
            return SyscallOutcome::Error {
                err: KernelError::AlreadyConnected,
                duration: base,
            };
        }
        if sock.local.1 == 0 {
            sock.local = (local_ip, eph);
        }
        sock.remote = Some(dst);
        match sock.protocol {
            TransportProtocol::Udp => {
                let tuple = sock.five_tuple().expect("remote just set");
                self.by_tuple.insert(tuple, sid);
                SyscallOutcome::Complete {
                    value: (),
                    duration: base,
                }
            }
            TransportProtocol::Tcp => {
                sock.state = SocketState::SynSent;
                let tuple = sock.five_tuple().expect("remote just set");
                let seg = Segment {
                    five_tuple: tuple,
                    seq: sock.iss,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: sock.window(),
                    payload: Bytes::new(),
                    is_retransmission: false,
                };
                sock.snd_nxt = sock.iss.wrapping_add(1);
                self.by_tuple.insert(tuple, sid);
                self.outbox.push(seg);
                self.parked_connecters.insert(sid, tid);
                self.set_thread_state(tid, ThreadState::BlockedOnRecv);
                SyscallOutcome::WouldBlock
            }
        }
    }

    /// `accept(2)`: pop an established connection or park.
    pub fn accept(&mut self, tid: Tid, pid: Pid, fd: Fd) -> SyscallOutcome<Fd> {
        let base = DurationNs(self.cfg.base_syscall_ns);
        let sid = match self.sid(pid, fd) {
            Ok(s) => s,
            Err(err) => {
                return SyscallOutcome::Error {
                    err,
                    duration: base,
                }
            }
        };
        let Some(listener) = self.sockets.get_mut(&sid) else {
            return SyscallOutcome::Error {
                err: KernelError::BadFd,
                duration: base,
            };
        };
        if listener.state != SocketState::Listen {
            return SyscallOutcome::Error {
                err: KernelError::Invalid("accept on non-listening socket"),
                duration: base,
            };
        }
        if let Some(child) = listener.accept_queue.pop_front() {
            let child_fd = self.alloc_fd(pid, child);
            self.socket_owner.insert(child, pid);
            SyscallOutcome::Complete {
                value: child_fd,
                duration: base,
            }
        } else {
            self.parked_accepters.entry(sid).or_default().push(tid);
            self.set_thread_state(tid, ThreadState::BlockedOnRecv);
            SyscallOutcome::WouldBlock
        }
    }

    /// An egress (Table 3 send-family) syscall. Fires enter/exit hooks,
    /// segmentizes onto the outbox, returns bytes written.
    ///
    /// `dst` carries the explicit destination for unconnected `sendto`.
    // Mirrors the syscall ABI surface; bundling into a struct would only
    // move the argument list one call up.
    #[allow(clippy::too_many_arguments)]
    pub fn syscall_send(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        payload: Bytes,
        abi: SyscallAbi,
        dst: Option<(Ipv4Addr, u16)>,
        now: TimeNs,
    ) -> SyscallOutcome<usize> {
        debug_assert_eq!(abi.direction(), Direction::Egress, "send with recv ABI");
        let base = DurationNs(self.cfg.base_syscall_ns);
        let sid = match self.sid(pid, fd) {
            Ok(s) => s,
            Err(err) => {
                return SyscallOutcome::Error {
                    err,
                    duration: base,
                }
            }
        };
        // Unconnected UDP sendto: the destination is per-datagram; it must
        // NOT bind the socket (a DNS server answers many peers through one
        // bound socket).
        let (tuple, tcp_seq, proto) = {
            let sock = &self.sockets[&sid];
            let tuple = match (sock.protocol, dst) {
                (TransportProtocol::Udp, Some(d)) if sock.remote.is_none() => Some(FiveTuple {
                    src_ip: sock.local.0,
                    src_port: sock.local.1,
                    dst_ip: d.0,
                    dst_port: d.1,
                    protocol: TransportProtocol::Udp,
                }),
                _ => sock.five_tuple(),
            };
            (tuple, sock.snd_nxt, sock.protocol)
        };
        let tcp_seq = if proto == TransportProtocol::Udp {
            0
        } else {
            tcp_seq
        };
        // --- enter hook ---
        let enter_cost = self.fire_syscall_hook(
            HookPhase::Enter,
            abi,
            now,
            pid,
            tid,
            sid,
            tuple,
            Some(tcp_seq),
            payload.len(),
            Some(&payload),
            true,
        );
        // --- kernel work ---
        let n = payload.len();
        if proto == TransportProtocol::Udp {
            // Datagram path: one segment, no sequence machinery.
            let Some(t) = tuple else {
                return SyscallOutcome::Error {
                    err: KernelError::NotConnected,
                    duration: base + enter_cost,
                };
            };
            self.outbox.push(Segment {
                five_tuple: t,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
                window: 0,
                payload: payload.clone(),
                is_retransmission: false,
            });
        } else {
            let result = {
                let sock = self.sockets.get_mut(&sid).expect("sid resolved");
                sock.segmentize(payload.clone())
            };
            let segments = match result {
                Ok(s) => s,
                Err(err) => {
                    return SyscallOutcome::Error {
                        err,
                        duration: base + enter_cost,
                    }
                }
            };
            self.outbox.extend(segments);
        }
        // --- exit hook ---
        let exit_now = now + base + enter_cost;
        let exit_cost = self.fire_syscall_hook(
            HookPhase::Exit,
            abi,
            exit_now,
            pid,
            tid,
            sid,
            tuple,
            Some(tcp_seq),
            n,
            Some(&payload),
            true,
        );
        SyscallOutcome::Complete {
            value: n,
            duration: base + enter_cost + exit_cost,
        }
    }

    /// An ingress (Table 3 recv-family) syscall. On first attempt fires the
    /// enter hook; if no data, parks ([`SyscallOutcome::WouldBlock`]) and the
    /// caller retries after a [`WakeupKind::Readable`] — at which point the
    /// exit hook fires.
    pub fn syscall_recv(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max: usize,
        abi: SyscallAbi,
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult> {
        debug_assert_eq!(abi.direction(), Direction::Ingress, "recv with send ABI");
        let base = DurationNs(self.cfg.base_syscall_ns);
        let sid = match self.sid(pid, fd) {
            Ok(s) => s,
            Err(err) => {
                return SyscallOutcome::Error {
                    err,
                    duration: base,
                }
            }
        };
        let tuple = self.sockets[&sid].five_tuple();
        // --- enter hook: once per logical syscall, not per retry ---
        let mut enter_cost = DurationNs::ZERO;
        if let Some(pending) = self.pending_enter.get(&tid) {
            debug_assert_eq!(pending.abi, abi, "retry must reuse the blocked ABI");
        } else {
            enter_cost = self.fire_syscall_hook(
                HookPhase::Enter,
                abi,
                now,
                pid,
                tid,
                sid,
                tuple,
                None,
                max,
                None,
                false,
            );
            self.pending_enter.insert(tid, PendingEnter { abi });
        }
        // --- kernel work ---
        let read = {
            let sock = self.sockets.get_mut(&sid).expect("sid resolved");
            sock.read(max)
        };
        match read {
            Ok(ReadOutcome {
                data,
                seq,
                msg_start,
                peer,
            }) => {
                self.pending_enter.remove(&tid);
                // Unconnected UDP sockets have no bound five-tuple; derive
                // the per-datagram one from the recorded peer so the hook
                // context is complete (the agent keys flows on it).
                let exit_tuple = tuple.or_else(|| {
                    let sock = &self.sockets[&sid];
                    peer.map(|p| FiveTuple {
                        src_ip: sock.local.0,
                        src_port: sock.local.1,
                        dst_ip: p.0,
                        dst_port: p.1,
                        protocol: sock.protocol,
                    })
                });
                let exit_cost = self.fire_syscall_hook(
                    HookPhase::Exit,
                    abi,
                    now + base + enter_cost,
                    pid,
                    tid,
                    sid,
                    exit_tuple,
                    Some(seq),
                    data.len(),
                    Some(&data),
                    msg_start,
                );
                SyscallOutcome::Complete {
                    value: RecvResult {
                        data,
                        tcp_seq: seq,
                        msg_start,
                        peer,
                    },
                    duration: base + enter_cost + exit_cost,
                }
            }
            Err(KernelError::WouldBlock) => {
                self.parked_readers.entry(sid).or_default().push(tid);
                self.set_thread_state(tid, ThreadState::BlockedOnRecv);
                SyscallOutcome::WouldBlock
            }
            Err(err) => {
                self.pending_enter.remove(&tid);
                SyscallOutcome::Error {
                    err,
                    duration: base + enter_cost,
                }
            }
        }
    }

    /// Invoke a user-space function, firing any uprobe/uretprobe attached to
    /// `symbol` (instrumentation extension, §3.2.1 — e.g. `ssl_read` to see
    /// plaintext before TLS). Returns the virtual instrumentation overhead.
    pub fn invoke_user_fn(
        &mut self,
        tid: Tid,
        pid: Pid,
        symbol: &'static str,
        payload: &[u8],
        fd: Option<Fd>,
        now: TimeNs,
    ) -> DurationNs {
        let (socket_id, tuple, tcp_seq) = match fd.and_then(|f| self.sid(pid, f).ok()) {
            Some(sid) => {
                let s = &self.sockets[&sid];
                (Some(sid), s.five_tuple(), Some(s.snd_nxt))
            }
            None => (None, None, None),
        };
        let name = self.process_name(pid);
        let coroutine = self.procs.thread(tid).and_then(|t| t.current_coroutine);
        let snap = payload.len().min(self.cfg.snap_len);
        let mut total = DurationNs::ZERO;
        for (point, phase) in [
            (AttachPoint::UserFnEnter(symbol), HookPhase::Enter),
            (AttachPoint::UserFnExit(symbol), HookPhase::Exit),
        ] {
            if !self.hooks.is_attached(&point) {
                continue;
            }
            let ctx = HookContext {
                phase,
                abi: None,
                symbol: Some(symbol),
                ts: now + total,
                pid,
                tid,
                coroutine,
                process_name: &name,
                node: self.cfg.node,
                socket_id,
                five_tuple: tuple,
                tcp_seq,
                direction: None,
                byte_len: payload.len(),
                payload: Some(&payload[..snap]),
                first_syscall: true,
            };
            total += self.hooks.fire(&point, &ctx);
        }
        total
    }

    /// `close(2)`: orderly shutdown (FIN).
    pub fn close(&mut self, pid: Pid, fd: Fd) -> Result<(), KernelError> {
        let sid = self.sid(pid, fd)?;
        if let Some(table) = self.fd_tables.get_mut(&pid) {
            table.map.remove(&fd);
        }
        // Release any listener/bind registrations so the address becomes
        // reusable.
        {
            let sock = self.sockets.get(&sid).ok_or(KernelError::BadFd)?;
            match sock.protocol {
                TransportProtocol::Tcp => {
                    if sock.state == SocketState::Listen {
                        self.tcp_listeners.remove(&sock.local);
                    }
                }
                TransportProtocol::Udp => {
                    if self.udp_bound.get(&sock.local) == Some(&sid) {
                        self.udp_bound.remove(&sock.local);
                    }
                }
            }
        }
        let sock = self.sockets.get_mut(&sid).ok_or(KernelError::BadFd)?;
        if sock.protocol == TransportProtocol::Tcp
            && matches!(
                sock.state,
                SocketState::Established | SocketState::CloseWait
            )
        {
            let tuple = sock.five_tuple().expect("established socket");
            let seg = Segment {
                five_tuple: tuple,
                seq: sock.snd_nxt,
                ack: sock.rcv_nxt,
                flags: TcpFlags::FIN_ACK,
                window: sock.window(),
                payload: Bytes::new(),
                is_retransmission: false,
            };
            sock.snd_nxt = sock.snd_nxt.wrapping_add(1);
            sock.state = SocketState::FinWait;
            self.outbox.push(seg);
        }
        Ok(())
    }

    /// Abort a connection (RST), e.g. a broker shedding load.
    pub fn abort(&mut self, pid: Pid, fd: Fd) -> Result<(), KernelError> {
        let sid = self.sid(pid, fd)?;
        let sock = self.sockets.get_mut(&sid).ok_or(KernelError::BadFd)?;
        if let Some(tuple) = sock.five_tuple() {
            self.outbox.push(Segment {
                five_tuple: tuple,
                seq: sock.snd_nxt,
                ack: sock.rcv_nxt,
                flags: TcpFlags::RST,
                window: 0,
                payload: Bytes::new(),
                is_retransmission: false,
            });
        }
        sock.state = SocketState::Reset;
        Ok(())
    }

    /// Deliver an inbound segment. Returns the threads to resume.
    pub fn deliver(&mut self, seg: &Segment, _now: TimeNs) -> Vec<Wakeup> {
        let mut wakeups = Vec::new();
        let local_tuple = seg.five_tuple.reversed();
        let f = seg.flags;

        if f.syn && !f.ack {
            self.handle_syn(seg, local_tuple);
            return wakeups;
        }

        // Route to an existing socket.
        let sid = match self.by_tuple.get(&local_tuple).copied() {
            Some(s) => s,
            None => {
                // UDP to a bound socket.
                if seg.five_tuple.protocol == TransportProtocol::Udp {
                    if let Some(&usid) = self
                        .udp_bound
                        .get(&(local_tuple.src_ip, local_tuple.src_port))
                    {
                        usid
                    } else {
                        return wakeups;
                    }
                } else {
                    // Unknown TCP flow: answer data with RST (unless this IS a RST).
                    if !f.rst && !seg.payload.is_empty() {
                        self.outbox.push(Segment {
                            five_tuple: local_tuple,
                            seq: seg.ack,
                            ack: seg.end_seq(),
                            flags: TcpFlags::RST,
                            window: 0,
                            payload: Bytes::new(),
                            is_retransmission: false,
                        });
                    }
                    return wakeups;
                }
            }
        };

        if f.rst {
            let sock = self.sockets.get_mut(&sid).expect("routed socket");
            sock.state = SocketState::Reset;
            for tid in self.parked_readers.remove(&sid).unwrap_or_default() {
                self.set_thread_state(tid, ThreadState::Running);
                wakeups.push(Wakeup {
                    tid,
                    kind: WakeupKind::Reset,
                    socket: sid,
                });
            }
            if let Some(tid) = self.parked_connecters.remove(&sid) {
                self.set_thread_state(tid, ThreadState::Running);
                wakeups.push(Wakeup {
                    tid,
                    kind: WakeupKind::ConnectFailed,
                    socket: sid,
                });
            }
            return wakeups;
        }

        if f.syn && f.ack {
            // SYN+ACK completing an active open.
            let sock = self.sockets.get_mut(&sid).expect("routed socket");
            if sock.state == SocketState::SynSent {
                sock.state = SocketState::Established;
                sock.rcv_nxt = seg.seq.wrapping_add(1);
                let tuple = sock.five_tuple().expect("connected");
                let ack = Segment {
                    five_tuple: tuple,
                    seq: sock.snd_nxt,
                    ack: sock.rcv_nxt,
                    flags: TcpFlags::ACK,
                    window: sock.window(),
                    payload: Bytes::new(),
                    is_retransmission: false,
                };
                self.outbox.push(ack);
                if let Some(tid) = self.parked_connecters.remove(&sid) {
                    self.set_thread_state(tid, ThreadState::Running);
                    wakeups.push(Wakeup {
                        tid,
                        kind: WakeupKind::Connected,
                        socket: sid,
                    });
                }
            }
            return wakeups;
        }

        if f.fin {
            let sock = self.sockets.get_mut(&sid).expect("routed socket");
            if matches!(sock.state, SocketState::Established) {
                sock.state = SocketState::CloseWait;
            } else if matches!(sock.state, SocketState::FinWait) {
                sock.state = SocketState::Closed;
            }
            sock.rcv_nxt = sock.rcv_nxt.wrapping_add(1);
            for tid in self.parked_readers.remove(&sid).unwrap_or_default() {
                self.set_thread_state(tid, ThreadState::Running);
                wakeups.push(Wakeup {
                    tid,
                    kind: WakeupKind::Readable,
                    socket: sid,
                });
            }
            return wakeups;
        }

        if seg.payload.is_empty() {
            // Pure ACK: may complete a passive open.
            let (became_established, parent) = {
                let sock = self.sockets.get_mut(&sid).expect("routed socket");
                if sock.state == SocketState::SynReceived {
                    sock.state = SocketState::Established;
                    (true, sock.parent_listener)
                } else {
                    (false, None)
                }
            };
            if became_established {
                if let Some(lsid) = parent {
                    if let Some(listener) = self.sockets.get_mut(&lsid) {
                        listener.accept_queue.push_back(sid);
                    }
                    if let Some(tids) = self.parked_accepters.get_mut(&lsid) {
                        if !tids.is_empty() {
                            let tid = tids.remove(0);
                            self.set_thread_state(tid, ThreadState::Running);
                            wakeups.push(Wakeup {
                                tid,
                                kind: WakeupKind::Acceptable,
                                socket: lsid,
                            });
                        }
                    }
                }
            }
            return wakeups;
        }

        // Data segment.
        let peer = Some((seg.five_tuple.src_ip, seg.five_tuple.src_port));
        let (readable, window_zero, hard_overflow) = {
            let sock = self.sockets.get_mut(&sid).expect("routed socket");
            // Implicitly complete a passive open on first data (piggybacked ACK).
            let mut completed_open = None;
            if sock.state == SocketState::SynReceived {
                sock.state = SocketState::Established;
                completed_open = sock.parent_listener;
            }
            let readable = sock.receive_data_from(seg, peer);
            let wz = sock.window() == 0;
            let hard = sock.recv_buffered > sock.recv_capacity.saturating_mul(4);
            if let Some(lsid) = completed_open {
                if let Some(listener) = self.sockets.get_mut(&lsid) {
                    listener.accept_queue.push_back(sid);
                }
                if let Some(tids) = self.parked_accepters.get_mut(&lsid) {
                    if !tids.is_empty() {
                        let tid = tids.remove(0);
                        wakeups.push(Wakeup {
                            tid,
                            kind: WakeupKind::Acceptable,
                            socket: lsid,
                        });
                    }
                }
            }
            (readable, wz, hard)
        };
        for w in &wakeups {
            self.set_thread_state(w.tid, ThreadState::Running);
        }
        if hard_overflow {
            // Receiver hopelessly backlogged: abort the connection. This is
            // the RabbitMQ-style failure of Fig. 12 (queue backlog → RST).
            let sock = self.sockets.get_mut(&sid).expect("routed socket");
            sock.state = SocketState::Reset;
            let tuple = sock.five_tuple().expect("established");
            let rst = Segment {
                five_tuple: tuple,
                seq: sock.snd_nxt,
                ack: sock.rcv_nxt,
                flags: TcpFlags::RST,
                window: 0,
                payload: Bytes::new(),
                is_retransmission: false,
            };
            self.outbox.push(rst);
            for tid in self.parked_readers.remove(&sid).unwrap_or_default() {
                self.set_thread_state(tid, ThreadState::Running);
                wakeups.push(Wakeup {
                    tid,
                    kind: WakeupKind::Reset,
                    socket: sid,
                });
            }
            return wakeups;
        }
        if window_zero {
            // Advertise the stall so taps can observe it.
            let sock = &self.sockets[&sid];
            if let Some(tuple) = sock.five_tuple() {
                self.outbox.push(Segment {
                    five_tuple: tuple,
                    seq: sock.snd_nxt,
                    ack: sock.rcv_nxt,
                    flags: TcpFlags::ACK,
                    window: 0,
                    payload: Bytes::new(),
                    is_retransmission: false,
                });
            }
        }
        if readable {
            for tid in self.parked_readers.remove(&sid).unwrap_or_default() {
                self.set_thread_state(tid, ThreadState::Running);
                wakeups.push(Wakeup {
                    tid,
                    kind: WakeupKind::Readable,
                    socket: sid,
                });
            }
        }
        wakeups
    }

    fn handle_syn(&mut self, seg: &Segment, local_tuple: FiveTuple) {
        // Retransmitted SYN for an in-progress handshake?
        if let Some(&sid) = self.by_tuple.get(&local_tuple) {
            let sock = &self.sockets[&sid];
            if sock.state == SocketState::SynReceived {
                let tuple = sock.five_tuple().expect("syn-received socket");
                self.outbox.push(Segment {
                    five_tuple: tuple,
                    seq: sock.iss,
                    ack: sock.rcv_nxt,
                    flags: TcpFlags::SYN_ACK,
                    window: sock.window(),
                    payload: Bytes::new(),
                    is_retransmission: true,
                });
            }
            return;
        }
        let dst = (local_tuple.src_ip, local_tuple.src_port);
        let listener_sid = self
            .tcp_listeners
            .get(&dst)
            .or_else(|| self.tcp_listeners.get(&(Ipv4Addr::UNSPECIFIED, dst.1)))
            .copied();
        let Some(lsid) = listener_sid else {
            // Nothing listening: refuse.
            self.outbox.push(Segment {
                five_tuple: local_tuple,
                seq: 0,
                ack: seg.seq.wrapping_add(1),
                flags: TcpFlags::RST,
                window: 0,
                payload: Bytes::new(),
                is_retransmission: false,
            });
            return;
        };
        // Backlog full: drop the SYN (client will retry — SYN retries are a
        // flow metric).
        let backlog_full = {
            let l = &self.sockets[&lsid];
            l.accept_queue.len() >= l.backlog
        };
        if backlog_full {
            return;
        }
        let child_id = self.alloc_socket_id();
        let iss = self.rng.gen::<u32>();
        let mut child = Socket::new(child_id, TransportProtocol::Tcp, dst, iss);
        // Children inherit the listener's receive capacity (apps shrink it
        // to model backlogged consumers, e.g. the Fig. 12 broker).
        child.recv_capacity = self.sockets[&lsid].recv_capacity;
        child.remote = Some((seg.five_tuple.src_ip, seg.five_tuple.src_port));
        child.state = SocketState::SynReceived;
        child.rcv_nxt = seg.seq.wrapping_add(1);
        child.snd_nxt = iss.wrapping_add(1);
        child.parent_listener = Some(lsid);
        let tuple = child.five_tuple().expect("remote set");
        self.outbox.push(Segment {
            five_tuple: tuple,
            seq: iss,
            ack: child.rcv_nxt,
            flags: TcpFlags::SYN_ACK,
            window: child.window(),
            payload: Bytes::new(),
            is_retransmission: false,
        });
        if let Some(owner) = self.socket_owner.get(&lsid).copied() {
            self.socket_owner.insert(child_id, owner);
        }
        self.by_tuple.insert(tuple, child_id);
        self.sockets.insert(child_id, child);
    }

    /// Take all outbound segments produced since the last drain.
    pub fn drain_outbox(&mut self) -> Vec<Segment> {
        std::mem::take(&mut self.outbox)
    }

    /// Resolve an fd to its socket id.
    pub fn sid(&self, pid: Pid, fd: Fd) -> Result<SocketId, KernelError> {
        self.fd_tables
            .get(&pid)
            .and_then(|t| t.map.get(&fd))
            .copied()
            .ok_or(KernelError::BadFd)
    }

    /// Inspect a socket.
    pub fn socket_ref(&self, sid: SocketId) -> Option<&Socket> {
        self.sockets.get(&sid)
    }

    /// The configured payload snap length.
    pub fn snap_len(&self) -> usize {
        self.cfg.snap_len
    }

    /// Shrink/grow a socket's receive buffer (SO_RCVBUF). Listener children
    /// inherit it.
    pub fn set_recv_capacity(
        &mut self,
        pid: Pid,
        fd: Fd,
        capacity: usize,
    ) -> Result<(), KernelError> {
        let sid = self.sid(pid, fd)?;
        let sock = self.sockets.get_mut(&sid).ok_or(KernelError::BadFd)?;
        sock.recv_capacity = capacity.max(1);
        Ok(())
    }

    fn process_name(&self, pid: Pid) -> String {
        self.procs
            .process(pid)
            .map(|p| p.name.clone())
            .unwrap_or_else(|| "?".to_string())
    }

    fn set_thread_state(&mut self, tid: Tid, state: ThreadState) {
        if let Some(t) = self.procs.thread_mut(tid) {
            t.state = state;
        }
    }

    /// Fire enter or exit hooks for a syscall ABI; returns virtual overhead.
    #[allow(clippy::too_many_arguments)]
    fn fire_syscall_hook(
        &mut self,
        phase: HookPhase,
        abi: SyscallAbi,
        ts: TimeNs,
        pid: Pid,
        tid: Tid,
        sid: SocketId,
        tuple: Option<FiveTuple>,
        tcp_seq: Option<u32>,
        byte_len: usize,
        payload: Option<&Bytes>,
        first_syscall: bool,
    ) -> DurationNs {
        let point = match phase {
            HookPhase::Enter => AttachPoint::SyscallEnter(abi),
            HookPhase::Exit => AttachPoint::SyscallExit(abi),
        };
        if !self.hooks.is_attached(&point) {
            return DurationNs::ZERO;
        }
        let name = self.process_name(pid);
        let coroutine = self.procs.thread(tid).and_then(|t| t.current_coroutine);
        let snapped = payload.map(|p| {
            let n = p.len().min(self.cfg.snap_len);
            &p[..n]
        });
        let ctx = HookContext {
            phase,
            abi: Some(abi),
            symbol: None,
            ts,
            pid,
            tid,
            coroutine,
            process_name: &name,
            node: self.cfg.node,
            socket_id: Some(sid),
            five_tuple: tuple,
            tcp_seq,
            direction: Some(abi.direction()),
            byte_len,
            payload: snapped,
            first_syscall,
        };
        self.hooks.fire(&point, &ctx)
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("node", &self.cfg.node)
            .field("hostname", &self.cfg.hostname)
            .field("sockets", &self.sockets.len())
            .field("processes", &self.procs.process_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuttle segments between two kernels until quiescent, collecting
    /// wakeups. A miniature fabric for kernel-level tests.
    fn pump(a: &mut Kernel, b: &mut Kernel, now: TimeNs) -> Vec<Wakeup> {
        let mut wakeups = Vec::new();
        loop {
            let out_a = a.drain_outbox();
            let out_b = b.drain_outbox();
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
            for seg in out_a {
                wakeups.extend(b.deliver(&seg, now));
            }
            for seg in out_b {
                wakeups.extend(a.deliver(&seg, now));
            }
        }
        wakeups
    }

    fn two_kernels() -> (Kernel, Kernel) {
        let ca = KernelConfig {
            node: NodeId(1),
            ..Default::default()
        };
        let cb = KernelConfig {
            node: NodeId(2),
            ..Default::default()
        };
        (Kernel::new(ca), Kernel::new(cb))
    }

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Establish a client(A)→server(B) connection; returns
    /// (client pid/tid/fd, server pid/tid/server_fd).
    fn establish(a: &mut Kernel, b: &mut Kernel) -> ((Pid, Tid, Fd), (Pid, Tid, Fd)) {
        let (spid, stid) = b.procs.spawn_process("server");
        let lfd = b.socket(spid, TransportProtocol::Tcp).unwrap();
        b.bind(spid, lfd, IP_B, 80).unwrap();
        b.listen(spid, lfd, 128).unwrap();
        assert!(matches!(
            b.accept(stid, spid, lfd),
            SyscallOutcome::WouldBlock
        ));

        let (cpid, ctid) = a.procs.spawn_process("client");
        let cfd = a.socket(cpid, TransportProtocol::Tcp).unwrap();
        assert!(matches!(
            a.connect(ctid, cpid, cfd, IP_A, (IP_B, 80)),
            SyscallOutcome::WouldBlock
        ));
        let wakeups = pump(a, b, TimeNs(0));
        assert!(wakeups
            .iter()
            .any(|w| w.kind == WakeupKind::Connected && w.tid == ctid));
        assert!(wakeups
            .iter()
            .any(|w| w.kind == WakeupKind::Acceptable && w.tid == stid));
        let (sfd, _) = b.accept(stid, spid, lfd).unwrap_complete();
        ((cpid, ctid, cfd), (spid, stid, sfd))
    }

    #[test]
    fn three_way_handshake_establishes_both_ends() {
        let (mut a, mut b) = two_kernels();
        let ((cpid, _, cfd), (spid, _, sfd)) = establish(&mut a, &mut b);
        let csid = a.sid(cpid, cfd).unwrap();
        let ssid = b.sid(spid, sfd).unwrap();
        assert_eq!(a.socket_ref(csid).unwrap().state, SocketState::Established);
        assert_eq!(b.socket_ref(ssid).unwrap().state, SocketState::Established);
        // socket ids are globally unique across nodes
        assert_ne!(csid, ssid);
        assert_eq!(csid.raw() >> 32, 1);
        assert_eq!(ssid.raw() >> 32, 2);
    }

    #[test]
    fn data_round_trip_with_sequence_continuity() {
        let (mut a, mut b) = two_kernels();
        let ((cpid, ctid, cfd), (spid, stid, sfd)) = establish(&mut a, &mut b);
        // client sends a request
        let (n, _) = a
            .syscall_send(
                ctid,
                cpid,
                cfd,
                Bytes::from_static(b"GET / HTTP/1.1\r\n\r\n"),
                SyscallAbi::Write,
                None,
                TimeNs(1000),
            )
            .unwrap_complete();
        assert_eq!(n, 18);
        // server blocks on read, then data arrives
        assert!(matches!(
            b.syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Read, TimeNs(1100)),
            SyscallOutcome::WouldBlock
        ));
        let wk = pump(&mut a, &mut b, TimeNs(1200));
        assert!(wk
            .iter()
            .any(|w| w.kind == WakeupKind::Readable && w.tid == stid));
        let (req, _) = b
            .syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Read, TimeNs(1300))
            .unwrap_complete();
        assert_eq!(&req.data[..], b"GET / HTTP/1.1\r\n\r\n");
        assert!(req.msg_start);
        // server replies
        b.syscall_send(
            stid,
            spid,
            sfd,
            Bytes::from_static(b"HTTP/1.1 200 OK\r\n\r\n"),
            SyscallAbi::Write,
            None,
            TimeNs(1400),
        )
        .unwrap_complete();
        assert!(matches!(
            a.syscall_recv(ctid, cpid, cfd, 4096, SyscallAbi::Read, TimeNs(1500)),
            SyscallOutcome::WouldBlock
        ));
        pump(&mut a, &mut b, TimeNs(1600));
        let (resp, _) = a
            .syscall_recv(ctid, cpid, cfd, 4096, SyscallAbi::Read, TimeNs(1700))
            .unwrap_complete();
        assert_eq!(&resp.data[..], b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn tcp_seq_is_preserved_sender_to_receiver() {
        let (mut a, mut b) = two_kernels();
        let ((cpid, ctid, cfd), (spid, stid, sfd)) = establish(&mut a, &mut b);
        let csid = a.sid(cpid, cfd).unwrap();
        let send_seq = a.socket_ref(csid).unwrap().snd_nxt;
        a.syscall_send(
            ctid,
            cpid,
            cfd,
            Bytes::from_static(b"payload"),
            SyscallAbi::Sendto,
            None,
            TimeNs(0),
        )
        .unwrap_complete();
        b.syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Recvfrom, TimeNs(0));
        pump(&mut a, &mut b, TimeNs(0));
        let (got, _) = b
            .syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Recvfrom, TimeNs(0))
            .unwrap_complete();
        // The receiver observes the same TCP sequence the sender assigned —
        // the §3.3.2 inter-component association invariant.
        assert_eq!(got.tcp_seq, send_seq);
    }

    #[test]
    fn connect_to_closed_port_is_refused() {
        let (mut a, mut b) = two_kernels();
        let (cpid, ctid) = a.procs.spawn_process("client");
        let cfd = a.socket(cpid, TransportProtocol::Tcp).unwrap();
        assert!(matches!(
            a.connect(ctid, cpid, cfd, IP_A, (IP_B, 9999)),
            SyscallOutcome::WouldBlock
        ));
        let wk = pump(&mut a, &mut b, TimeNs(0));
        assert!(wk
            .iter()
            .any(|w| w.kind == WakeupKind::ConnectFailed && w.tid == ctid));
    }

    #[test]
    fn fin_close_yields_eof_read() {
        let (mut a, mut b) = two_kernels();
        let ((cpid, _ctid, cfd), (spid, stid, sfd)) = establish(&mut a, &mut b);
        // server parks reading; client closes.
        assert!(matches!(
            b.syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Read, TimeNs(0)),
            SyscallOutcome::WouldBlock
        ));
        a.close(cpid, cfd).unwrap();
        let wk = pump(&mut a, &mut b, TimeNs(0));
        assert!(wk
            .iter()
            .any(|w| w.kind == WakeupKind::Readable && w.tid == stid));
        let (eof, _) = b
            .syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Read, TimeNs(0))
            .unwrap_complete();
        assert!(eof.data.is_empty());
    }

    #[test]
    fn abort_resets_peer_reader() {
        let (mut a, mut b) = two_kernels();
        let ((cpid, _ctid, cfd), (spid, stid, sfd)) = establish(&mut a, &mut b);
        assert!(matches!(
            b.syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Read, TimeNs(0)),
            SyscallOutcome::WouldBlock
        ));
        a.abort(cpid, cfd).unwrap();
        let wk = pump(&mut a, &mut b, TimeNs(0));
        assert!(wk
            .iter()
            .any(|w| w.kind == WakeupKind::Reset && w.tid == stid));
        assert!(matches!(
            b.syscall_recv(stid, spid, sfd, 4096, SyscallAbi::Read, TimeNs(0)),
            SyscallOutcome::Error {
                err: KernelError::ConnectionReset,
                ..
            }
        ));
    }

    #[test]
    fn udp_bound_socket_receives_datagrams_with_peer() {
        let (mut a, mut b) = two_kernels();
        let (spid, stid) = b.procs.spawn_process("dns");
        let sfd = b.socket(spid, TransportProtocol::Udp).unwrap();
        b.bind(spid, sfd, IP_B, 53).unwrap();

        let (cpid, ctid) = a.procs.spawn_process("client");
        let cfd = a.socket(cpid, TransportProtocol::Udp).unwrap();
        a.connect(ctid, cpid, cfd, IP_A, (IP_B, 53))
            .unwrap_complete();
        a.syscall_send(
            ctid,
            cpid,
            cfd,
            Bytes::from_static(b"dns-query"),
            SyscallAbi::Sendto,
            None,
            TimeNs(0),
        )
        .unwrap_complete();
        pump(&mut a, &mut b, TimeNs(0));
        let (dgram, _) = b
            .syscall_recv(stid, spid, sfd, 512, SyscallAbi::Recvfrom, TimeNs(0))
            .unwrap_complete();
        assert_eq!(&dgram.data[..], b"dns-query");
        let peer = dgram.peer.expect("datagram peer recorded");
        assert_eq!(peer.0, IP_A);
    }

    #[test]
    fn send_on_bad_fd_errors() {
        let (mut a, _b) = two_kernels();
        let (pid, tid) = a.procs.spawn_process("x");
        assert!(matches!(
            a.syscall_send(
                tid,
                pid,
                99,
                Bytes::from_static(b"x"),
                SyscallAbi::Write,
                None,
                TimeNs(0)
            ),
            SyscallOutcome::Error {
                err: KernelError::BadFd,
                ..
            }
        ));
    }

    #[test]
    fn full_backlog_drops_syns() {
        let (mut a, mut b) = two_kernels();
        let (spid, _stid) = b.procs.spawn_process("busy-server");
        let lfd = b.socket(spid, TransportProtocol::Tcp).unwrap();
        b.bind(spid, lfd, IP_B, 80).unwrap();
        b.listen(spid, lfd, 1).unwrap(); // backlog of one, never accepted

        let (cpid, _) = a.procs.spawn_process("clients");
        let mut connected = 0;
        for i in 0..3 {
            let tid = if i == 0 {
                a.procs.process(cpid).unwrap().threads[0]
            } else {
                a.procs.spawn_thread(cpid).unwrap()
            };
            let fd = a.socket(cpid, TransportProtocol::Tcp).unwrap();
            a.connect(tid, cpid, fd, IP_A, (IP_B, 80));
            let wk = pump(&mut a, &mut b, TimeNs(0));
            connected += wk
                .iter()
                .filter(|w| w.kind == WakeupKind::Connected)
                .count();
        }
        // Only the first connection fits the backlog; later SYNs are
        // dropped silently (the client would retry — a syn_retries signal
        // at the taps).
        assert_eq!(connected, 1, "backlog of 1 admits exactly one connect");
    }

    #[test]
    fn close_is_idempotent_and_frees_the_fd() {
        let (mut a, mut b) = two_kernels();
        let ((cpid, _ctid, cfd), _) = establish(&mut a, &mut b);
        a.close(cpid, cfd).unwrap();
        // fd is gone: closing again is BadFd, as is writing.
        assert_eq!(a.close(cpid, cfd), Err(KernelError::BadFd));
        assert!(matches!(
            a.syscall_send(
                Tid(999),
                cpid,
                cfd,
                Bytes::from_static(b"x"),
                SyscallAbi::Write,
                None,
                TimeNs(0)
            ),
            SyscallOutcome::Error {
                err: KernelError::BadFd,
                ..
            }
        ));
    }

    #[test]
    fn bind_conflicts_are_rejected() {
        let (_a, mut b) = two_kernels();
        let (pid, _tid) = b.procs.spawn_process("srv");
        let fd1 = b.socket(pid, TransportProtocol::Tcp).unwrap();
        b.bind(pid, fd1, IP_B, 80).unwrap();
        b.listen(pid, fd1, 16).unwrap();
        let fd2 = b.socket(pid, TransportProtocol::Tcp).unwrap();
        assert_eq!(b.bind(pid, fd2, IP_B, 80), Err(KernelError::AddrInUse));
        // Closing the listener frees the address for rebinding.
        b.close(pid, fd1).unwrap();
        let fd3 = b.socket(pid, TransportProtocol::Tcp).unwrap();
        b.bind(pid, fd3, IP_B, 80).unwrap();
        b.listen(pid, fd3, 16).unwrap();
    }
}
