//! Kernel error type (errno-shaped).

use std::fmt;

/// Errors returned by kernel operations, mirroring the errnos a real kernel
/// would produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Bad file descriptor (`EBADF`).
    BadFd,
    /// The operation would block (`EAGAIN`) — the caller should park the
    /// thread and retry on wake-up.
    WouldBlock,
    /// The socket is not connected (`ENOTCONN`).
    NotConnected,
    /// Connection reset by peer (`ECONNRESET`).
    ConnectionReset,
    /// Broken pipe — writing to a closed connection (`EPIPE`).
    BrokenPipe,
    /// No such process/thread (`ESRCH`).
    NoSuchThread,
    /// No such process (`ESRCH`).
    NoSuchProcess,
    /// Address already in use (`EADDRINUSE`).
    AddrInUse,
    /// Nothing is listening at the destination (`ECONNREFUSED`).
    ConnectionRefused,
    /// The socket is already connected (`EISCONN`).
    AlreadyConnected,
    /// Invalid argument (`EINVAL`).
    Invalid(&'static str),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadFd => write!(f, "bad file descriptor"),
            KernelError::WouldBlock => write!(f, "operation would block"),
            KernelError::NotConnected => write!(f, "socket not connected"),
            KernelError::ConnectionReset => write!(f, "connection reset by peer"),
            KernelError::BrokenPipe => write!(f, "broken pipe"),
            KernelError::NoSuchThread => write!(f, "no such thread"),
            KernelError::NoSuchProcess => write!(f, "no such process"),
            KernelError::AddrInUse => write!(f, "address already in use"),
            KernelError::ConnectionRefused => write!(f, "connection refused"),
            KernelError::AlreadyConnected => write!(f, "socket already connected"),
            KernelError::Invalid(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for KernelError {}
