//! Process / thread / coroutine model.
//!
//! DeepFlow's span construction associates syscall enter/exit by
//! `(Pid, Tid)` (paper §3.3.1) and, for coroutine languages, tracks
//! coroutine creation to build a "pseudo-thread structure". The kernel
//! therefore must know, at every hook firing, which process, thread and
//! coroutine is on-CPU — that is what this module maintains.

use df_types::{CoroutineId, Pid, Tid};
use std::collections::HashMap;

/// Scheduling state of a thread as the mesh event loop sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable or running.
    Running,
    /// Parked waiting for socket readability (blocking ingress syscall).
    BlockedOnRecv,
    /// Parked waiting for socket writability (flow-control stall).
    BlockedOnSend,
    /// Exited.
    Dead,
}

/// A thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id (unique within the node, like Linux).
    pub tid: Tid,
    /// Owning process.
    pub pid: Pid,
    /// Scheduling state.
    pub state: ThreadState,
    /// The coroutine currently scheduled on this thread, if the process
    /// runs a coroutine runtime.
    pub current_coroutine: Option<CoroutineId>,
}

/// A process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Executable name (`comm`).
    pub name: String,
    /// Threads belonging to the process.
    pub threads: Vec<Tid>,
}

/// A coroutine-lifecycle event observable by the agent (uprobe on the
/// runtime's spawn function, paper §3.3.1: "DeepFlow monitors the creation
/// of coroutines to save the parent-child coroutine relationship").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoroutineEvent {
    /// A coroutine was created by another (or by the root of a thread).
    Created {
        /// The process whose runtime spawned it.
        pid: Pid,
        /// The new coroutine.
        child: CoroutineId,
        /// The spawning coroutine (None = spawned from thread main).
        parent: Option<CoroutineId>,
    },
    /// A coroutine finished.
    Finished {
        /// The process.
        pid: Pid,
        /// The coroutine.
        coroutine: CoroutineId,
    },
}

/// Table of processes and threads for one kernel.
#[derive(Debug, Default)]
pub struct ProcessTable {
    processes: HashMap<Pid, Process>,
    threads: HashMap<Tid, Thread>,
    next_pid: u32,
    next_tid: u32,
    next_coroutine: u64,
    /// Parent of each coroutine (None = thread-main spawned).
    coroutine_parent: HashMap<(Pid, CoroutineId), Option<CoroutineId>>,
    /// Coroutine lifecycle events pending agent consumption.
    pending_events: Vec<CoroutineEvent>,
}

impl ProcessTable {
    /// Empty table.
    pub fn new() -> Self {
        ProcessTable {
            next_pid: 1,
            next_tid: 1,
            next_coroutine: 1,
            ..Default::default()
        }
    }

    /// Spawn a process with one initial thread. Returns `(pid, main_tid)`.
    pub fn spawn_process(&mut self, name: &str) -> (Pid, Tid) {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.threads.insert(
            tid,
            Thread {
                tid,
                pid,
                state: ThreadState::Running,
                current_coroutine: None,
            },
        );
        self.processes.insert(
            pid,
            Process {
                pid,
                name: name.to_string(),
                threads: vec![tid],
            },
        );
        (pid, tid)
    }

    /// Spawn an additional thread in an existing process.
    pub fn spawn_thread(&mut self, pid: Pid) -> Option<Tid> {
        let proc = self.processes.get_mut(&pid)?;
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        proc.threads.push(tid);
        self.threads.insert(
            tid,
            Thread {
                tid,
                pid,
                state: ThreadState::Running,
                current_coroutine: None,
            },
        );
        Some(tid)
    }

    /// Create a coroutine in `pid`, spawned by `parent` (or thread-main).
    /// Records the lifecycle event for the agent.
    pub fn spawn_coroutine(&mut self, pid: Pid, parent: Option<CoroutineId>) -> CoroutineId {
        let cid = CoroutineId(self.next_coroutine);
        self.next_coroutine += 1;
        self.coroutine_parent.insert((pid, cid), parent);
        self.pending_events.push(CoroutineEvent::Created {
            pid,
            child: cid,
            parent,
        });
        cid
    }

    /// Mark a coroutine finished.
    pub fn finish_coroutine(&mut self, pid: Pid, coroutine: CoroutineId) {
        self.pending_events
            .push(CoroutineEvent::Finished { pid, coroutine });
    }

    /// Schedule `coroutine` (or none) onto `tid` — what the runtime's
    /// scheduler does between poll points.
    pub fn set_current_coroutine(
        &mut self,
        tid: Tid,
        coroutine: Option<CoroutineId>,
    ) -> Result<(), crate::KernelError> {
        let t = self
            .threads
            .get_mut(&tid)
            .ok_or(crate::KernelError::NoSuchThread)?;
        t.current_coroutine = coroutine;
        Ok(())
    }

    /// Look up the parent of a coroutine.
    pub fn coroutine_parent(&self, pid: Pid, coroutine: CoroutineId) -> Option<CoroutineId> {
        self.coroutine_parent
            .get(&(pid, coroutine))
            .copied()
            .flatten()
    }

    /// The root ancestor of a coroutine chain (follows parents until a
    /// thread-main-spawned coroutine). Used to derive pseudo-thread ids.
    pub fn coroutine_root(&self, pid: Pid, coroutine: CoroutineId) -> CoroutineId {
        let mut cur = coroutine;
        let mut hops = 0usize;
        while let Some(parent) = self.coroutine_parent(pid, cur) {
            cur = parent;
            hops += 1;
            if hops > 1_000_000 {
                break; // defensive: corrupted parent chain
            }
        }
        cur
    }

    /// Drain pending coroutine lifecycle events (agent consumption).
    pub fn drain_coroutine_events(&mut self) -> Vec<CoroutineEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// Thread lookup.
    pub fn thread(&self, tid: Tid) -> Option<&Thread> {
        self.threads.get(&tid)
    }

    /// Mutable thread lookup.
    pub fn thread_mut(&mut self, tid: Tid) -> Option<&mut Thread> {
        self.threads.get_mut(&tid)
    }

    /// Process lookup.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_process_allocates_distinct_ids() {
        let mut t = ProcessTable::new();
        let (p1, t1) = t.spawn_process("nginx");
        let (p2, t2) = t.spawn_process("redis");
        assert_ne!(p1, p2);
        assert_ne!(t1, t2);
        assert_eq!(t.process(p1).unwrap().name, "nginx");
        assert_eq!(t.thread(t1).unwrap().pid, p1);
        assert_eq!(t.process_count(), 2);
    }

    #[test]
    fn spawn_thread_joins_existing_process() {
        let mut t = ProcessTable::new();
        let (pid, main_tid) = t.spawn_process("worker");
        let extra = t.spawn_thread(pid).unwrap();
        assert_ne!(main_tid, extra);
        assert_eq!(t.process(pid).unwrap().threads.len(), 2);
        assert!(t.spawn_thread(Pid(999)).is_none());
    }

    #[test]
    fn coroutine_parent_chain_resolves_to_root() {
        let mut t = ProcessTable::new();
        let (pid, _) = t.spawn_process("go-svc");
        let root = t.spawn_coroutine(pid, None);
        let mid = t.spawn_coroutine(pid, Some(root));
        let leaf = t.spawn_coroutine(pid, Some(mid));
        assert_eq!(t.coroutine_root(pid, leaf), root);
        assert_eq!(t.coroutine_root(pid, root), root);
        assert_eq!(t.coroutine_parent(pid, mid), Some(root));
        assert_eq!(t.coroutine_parent(pid, root), None);
    }

    #[test]
    fn coroutine_events_are_recorded_and_drained() {
        let mut t = ProcessTable::new();
        let (pid, _) = t.spawn_process("go-svc");
        let c = t.spawn_coroutine(pid, None);
        t.finish_coroutine(pid, c);
        let events = t.drain_coroutine_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], CoroutineEvent::Created { child, .. } if child == c));
        assert!(matches!(events[1], CoroutineEvent::Finished { coroutine, .. } if coroutine == c));
        assert!(t.drain_coroutine_events().is_empty());
    }

    #[test]
    fn set_current_coroutine_updates_thread() {
        let mut t = ProcessTable::new();
        let (pid, tid) = t.spawn_process("go-svc");
        let c = t.spawn_coroutine(pid, None);
        t.set_current_coroutine(tid, Some(c)).unwrap();
        assert_eq!(t.thread(tid).unwrap().current_coroutine, Some(c));
        t.set_current_coroutine(tid, None).unwrap();
        assert_eq!(t.thread(tid).unwrap().current_coroutine, None);
        assert!(t.set_current_coroutine(Tid(42), None).is_err());
    }
}
