//! The eBPF-style hook engine (paper Figure 5).
//!
//! Programs attach to [`AttachPoint`]s — syscall enter/exit (as kprobes or
//! tracepoints) and user-space function enter/exit (uprobes/uretprobes).
//! When the kernel executes an instrumented operation it builds a
//! [`HookContext`] and [`HookEngine::fire`]s it; every matching program runs
//! synchronously (eBPF programs run on the calling CPU) and may publish
//! events into the shared perf ring buffer.
//!
//! The engine accounts two costs:
//!
//! * **virtual overhead** — an [`HookOverheadModel`] charges each firing a
//!   per-probe-kind latency which the kernel adds to the syscall's virtual
//!   duration. This is how instrumentation overhead propagates into the
//!   end-to-end experiments (Figures 16 and 19);
//! * **real cost** — the criterion bench for Figure 13 measures the actual
//!   wall-clock cost of this dispatch machinery.

use crate::ringbuf::PerfRingBuffer;
use crate::verifier::{self, ProgramSpec, VerifierError};
use df_types::message::MessageData;
use df_types::time::{DurationNs, TimeNs};
use df_types::{CoroutineId, Direction, FiveTuple, NodeId, Pid, SocketId, SyscallAbi, Tid};

/// How a program is attached (determines base overhead; Figure 13(a)
/// contrasts kprobe and tracepoint costs, 13(b) adds uprobes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Dynamic kernel probe (int3/ftrace patching) — slower.
    Kprobe,
    /// Static tracepoint — cheaper.
    Tracepoint,
    /// User-space probe (uprobe) — most expensive (trap into kernel).
    Uprobe,
    /// User-space return probe.
    Uretprobe,
    /// Classic BPF socket filter (cBPF path, per-packet).
    SocketFilter,
}

/// Where a program is attached.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttachPoint {
    /// Fire when a Table 3 syscall enters the kernel.
    SyscallEnter(SyscallAbi),
    /// Fire when it exits.
    SyscallExit(SyscallAbi),
    /// Fire on entry of a user-space function (e.g. `ssl_read`).
    UserFnEnter(&'static str),
    /// Fire on return of a user-space function.
    UserFnExit(&'static str),
}

/// Phase of the firing (mirrors enter/exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookPhase {
    /// Entering the kernel (arguments available).
    Enter,
    /// Leaving the kernel (return value available).
    Exit,
}

/// Everything a program can observe at a firing — the four §3.2.1
/// information categories.
#[derive(Debug, Clone)]
pub struct HookContext<'a> {
    /// Enter or exit.
    pub phase: HookPhase,
    /// Which syscall, for syscall probes.
    pub abi: Option<SyscallAbi>,
    /// Which user function, for uprobes.
    pub symbol: Option<&'static str>,
    /// Firing timestamp.
    pub ts: TimeNs,
    /// Process id.
    pub pid: Pid,
    /// Thread id.
    pub tid: Tid,
    /// Current coroutine on the thread, if any.
    pub coroutine: Option<CoroutineId>,
    /// Process name.
    pub process_name: &'a str,
    /// Node id (for the agent's capture metadata).
    pub node: NodeId,
    /// Globally unique socket id, when the operation touches a socket.
    pub socket_id: Option<SocketId>,
    /// Socket five-tuple.
    pub five_tuple: Option<FiveTuple>,
    /// TCP sequence of the first byte moved by this operation.
    pub tcp_seq: Option<u32>,
    /// Table 3 direction, when applicable.
    pub direction: Option<Direction>,
    /// Requested length (enter) or transferred length (exit).
    pub byte_len: usize,
    /// Payload prefix (bounded by the kernel's snap length).
    pub payload: Option<&'a [u8]>,
    /// Whether this is the first syscall of a message (paper §3.3.1 —
    /// continuations are counted but not captured).
    pub first_syscall: bool,
}

/// Events crossing the kernel→user-space boundary through the perf ring.
// Message records dominate real rings; boxing them would add a pointer
// chase on the hot path for no space win in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum KernelEvent {
    /// A fully combined enter+exit message record (what DeepFlow's syscall
    /// programs emit after their in-kernel hashmap join).
    Message(MessageData),
    /// Anything else a custom program wants to report.
    Custom {
        /// Emitting program name.
        program: String,
        /// Opaque payload.
        payload: Vec<u8>,
    },
}

/// A BPF program: verified spec + run body. Programs keep their own state
/// ("maps") in `self`.
pub trait BpfProgram: Send {
    /// Static properties checked by the verifier at attach time.
    fn spec(&self) -> &ProgramSpec;
    /// Execute on a firing. May publish into the perf ring.
    fn run(&mut self, ctx: &HookContext<'_>, ring: &mut PerfRingBuffer<KernelEvent>);
}

/// Per-probe-kind virtual latency model. Defaults are calibrated to the
/// paper's Figure 13: each syscall hook pair adds a few hundred ns; uprobes
/// cost microseconds.
#[derive(Debug, Clone)]
pub struct HookOverheadModel {
    /// Base cost of a kprobe firing.
    pub kprobe_ns: u64,
    /// Base cost of a tracepoint firing.
    pub tracepoint_ns: u64,
    /// Base cost of a uprobe firing (includes the user→kernel trap).
    pub uprobe_ns: u64,
    /// Base cost of a uretprobe firing.
    pub uretprobe_ns: u64,
    /// Base cost of a socket-filter evaluation.
    pub socket_filter_ns: u64,
    /// Added cost per program executed at the point.
    pub per_program_ns: u64,
    /// Added cost per 64 bytes of payload copied to the ring.
    pub per_64b_copied_ns: u64,
}

impl Default for HookOverheadModel {
    fn default() -> Self {
        // Calibrated so an instrumented ABI pays ~280–590 ns per enter+exit
        // pair with one program attached (paper §5.1: 277–889 ns per event
        // including the inherent probe overhead; ≤588 ns added by DeepFlow).
        HookOverheadModel {
            kprobe_ns: 160,
            tracepoint_ns: 90,
            uprobe_ns: 2900,
            uretprobe_ns: 3200,
            socket_filter_ns: 60,
            per_program_ns: 120,
            per_64b_copied_ns: 10,
        }
    }
}

impl HookOverheadModel {
    /// Virtual cost of one firing of `kind` running `programs` programs over
    /// `copied_bytes` of captured payload.
    pub fn cost(&self, kind: ProbeKind, programs: usize, copied_bytes: usize) -> DurationNs {
        if programs == 0 {
            return DurationNs::ZERO;
        }
        let base = match kind {
            ProbeKind::Kprobe => self.kprobe_ns,
            ProbeKind::Tracepoint => self.tracepoint_ns,
            ProbeKind::Uprobe => self.uprobe_ns,
            ProbeKind::Uretprobe => self.uretprobe_ns,
            ProbeKind::SocketFilter => self.socket_filter_ns,
        };
        let copy = (copied_bytes as u64).div_ceil(64) * self.per_64b_copied_ns;
        DurationNs(base + programs as u64 * self.per_program_ns + copy)
    }
}

struct Attachment {
    point: AttachPoint,
    kind: ProbeKind,
    program: Box<dyn BpfProgram>,
    invocations: u64,
}

/// The per-kernel hook engine: attachments plus the shared perf ring.
pub struct HookEngine {
    attachments: Vec<Attachment>,
    /// The perf ring buffer the agent drains.
    pub ring: PerfRingBuffer<KernelEvent>,
    overhead: HookOverheadModel,
    total_virtual_overhead: DurationNs,
    total_firings: u64,
}

impl HookEngine {
    /// New engine with a ring of `ring_capacity` events.
    pub fn new(ring_capacity: usize, overhead: HookOverheadModel) -> Self {
        HookEngine {
            attachments: Vec::new(),
            ring: PerfRingBuffer::new(ring_capacity),
            overhead,
            total_virtual_overhead: DurationNs::ZERO,
            total_firings: 0,
        }
    }

    /// Attach a program after verification. Rejected programs never attach —
    /// the eBPF safety contract (§2.3.1).
    pub fn attach(
        &mut self,
        point: AttachPoint,
        kind: ProbeKind,
        program: Box<dyn BpfProgram>,
    ) -> Result<(), VerifierError> {
        verifier::verify(program.spec())?;
        self.attachments.push(Attachment {
            point,
            kind,
            program,
            invocations: 0,
        });
        Ok(())
    }

    /// Detach every program at a point. Returns how many were removed.
    /// (eBPF detachment is in-flight — no process restarts, §3.2.2.)
    pub fn detach_all(&mut self, point: &AttachPoint) -> usize {
        let before = self.attachments.len();
        self.attachments.retain(|a| &a.point != point);
        before - self.attachments.len()
    }

    /// Number of attachments.
    pub fn attachment_count(&self) -> usize {
        self.attachments.len()
    }

    /// Whether anything is attached at `point` (lets the kernel skip context
    /// construction entirely when uninstrumented — the "no agent" baseline).
    pub fn is_attached(&self, point: &AttachPoint) -> bool {
        self.attachments.iter().any(|a| &a.point == point)
    }

    /// Whether any syscall probe is attached at all.
    pub fn any_syscall_probes(&self) -> bool {
        self.attachments.iter().any(|a| {
            matches!(
                a.point,
                AttachPoint::SyscallEnter(_) | AttachPoint::SyscallExit(_)
            )
        })
    }

    /// Fire all programs attached at `point`. Returns the modelled virtual
    /// overhead of the firing (zero when nothing is attached).
    pub fn fire(&mut self, point: &AttachPoint, ctx: &HookContext<'_>) -> DurationNs {
        let mut total = DurationNs::ZERO;
        let mut matched: Option<ProbeKind> = None;
        let mut programs = 0usize;
        for a in &mut self.attachments {
            if &a.point == point {
                a.program.run(ctx, &mut self.ring);
                a.invocations += 1;
                programs += 1;
                matched = Some(a.kind);
            }
        }
        if let Some(kind) = matched {
            let copied = ctx.payload.map(<[u8]>::len).unwrap_or(0);
            total = self.overhead.cost(kind, programs, copied);
            self.total_virtual_overhead += total;
            self.total_firings += 1;
        }
        total
    }

    /// Total virtual overhead charged so far.
    pub fn total_virtual_overhead(&self) -> DurationNs {
        self.total_virtual_overhead
    }

    /// Total firings with at least one program.
    pub fn total_firings(&self) -> u64 {
        self.total_firings
    }

    /// Per-program invocation counts `(name, count)`.
    pub fn invocation_counts(&self) -> Vec<(String, u64)> {
        self.attachments
            .iter()
            .map(|a| (a.program.spec().name.clone(), a.invocations))
            .collect()
    }
}

impl std::fmt::Debug for HookEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookEngine")
            .field("attachments", &self.attachments.len())
            .field("ring_len", &self.ring.len())
            .field("total_firings", &self.total_firings)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts its own firings; the simplest useful program.
    struct Counter {
        spec: ProgramSpec,
        count: u64,
    }

    impl Counter {
        fn new() -> Self {
            Counter {
                spec: ProgramSpec::small("counter"),
                count: 0,
            }
        }
    }

    impl BpfProgram for Counter {
        fn spec(&self) -> &ProgramSpec {
            &self.spec
        }
        fn run(&mut self, _ctx: &HookContext<'_>, ring: &mut PerfRingBuffer<KernelEvent>) {
            self.count += 1;
            ring.push(KernelEvent::Custom {
                program: "counter".into(),
                payload: vec![],
            });
        }
    }

    fn ctx(phase: HookPhase) -> HookContext<'static> {
        HookContext {
            phase,
            abi: Some(SyscallAbi::Read),
            symbol: None,
            ts: TimeNs(100),
            pid: Pid(1),
            tid: Tid(1),
            coroutine: None,
            process_name: "test",
            node: NodeId(1),
            socket_id: Some(SocketId(1)),
            five_tuple: None,
            tcp_seq: Some(0),
            direction: Some(Direction::Ingress),
            byte_len: 128,
            payload: None,
            first_syscall: true,
        }
    }

    #[test]
    fn fire_runs_attached_programs_and_charges_overhead() {
        let mut eng = HookEngine::new(64, HookOverheadModel::default());
        eng.attach(
            AttachPoint::SyscallEnter(SyscallAbi::Read),
            ProbeKind::Kprobe,
            Box::new(Counter::new()),
        )
        .unwrap();
        let cost = eng.fire(
            &AttachPoint::SyscallEnter(SyscallAbi::Read),
            &ctx(HookPhase::Enter),
        );
        assert!(cost > DurationNs::ZERO);
        assert_eq!(eng.ring.len(), 1);
        assert_eq!(eng.total_firings(), 1);
        // No program at exit point → zero cost, nothing emitted.
        let cost2 = eng.fire(
            &AttachPoint::SyscallExit(SyscallAbi::Read),
            &ctx(HookPhase::Exit),
        );
        assert_eq!(cost2, DurationNs::ZERO);
        assert_eq!(eng.ring.len(), 1);
    }

    #[test]
    fn tracepoint_cheaper_than_kprobe_cheaper_than_uprobe() {
        let m = HookOverheadModel::default();
        let tp = m.cost(ProbeKind::Tracepoint, 1, 0);
        let kp = m.cost(ProbeKind::Kprobe, 1, 0);
        let up = m.cost(ProbeKind::Uprobe, 1, 0);
        assert!(tp < kp, "{tp} < {kp}");
        assert!(kp < up, "{kp} < {up}");
    }

    #[test]
    fn payload_copy_adds_cost() {
        let m = HookOverheadModel::default();
        let none = m.cost(ProbeKind::Kprobe, 1, 0);
        let some = m.cost(ProbeKind::Kprobe, 1, 1024);
        assert!(some > none);
        // zero programs: free (nothing attached)
        assert_eq!(m.cost(ProbeKind::Kprobe, 0, 1024), DurationNs::ZERO);
    }

    #[test]
    fn unverifiable_program_cannot_attach() {
        let mut eng = HookEngine::new(8, HookOverheadModel::default());
        struct Bad(ProgramSpec);
        impl BpfProgram for Bad {
            fn spec(&self) -> &ProgramSpec {
                &self.0
            }
            fn run(&mut self, _: &HookContext<'_>, _: &mut PerfRingBuffer<KernelEvent>) {}
        }
        let mut spec = ProgramSpec::small("bad");
        spec.unchecked_memory_access = true;
        let err = eng
            .attach(
                AttachPoint::SyscallEnter(SyscallAbi::Read),
                ProbeKind::Kprobe,
                Box::new(Bad(spec)),
            )
            .unwrap_err();
        assert_eq!(err, VerifierError::UncheckedMemoryAccess);
        assert_eq!(eng.attachment_count(), 0);
    }

    #[test]
    fn detach_is_scoped_to_point() {
        let mut eng = HookEngine::new(8, HookOverheadModel::default());
        eng.attach(
            AttachPoint::SyscallEnter(SyscallAbi::Read),
            ProbeKind::Kprobe,
            Box::new(Counter::new()),
        )
        .unwrap();
        eng.attach(
            AttachPoint::SyscallExit(SyscallAbi::Read),
            ProbeKind::Kprobe,
            Box::new(Counter::new()),
        )
        .unwrap();
        assert!(eng.any_syscall_probes());
        assert_eq!(
            eng.detach_all(&AttachPoint::SyscallEnter(SyscallAbi::Read)),
            1
        );
        assert!(!eng.is_attached(&AttachPoint::SyscallEnter(SyscallAbi::Read)));
        assert!(eng.is_attached(&AttachPoint::SyscallExit(SyscallAbi::Read)));
    }
}
