//! The Table 3 syscall surface, with ABI-faithful shapes.
//!
//! [`Kernel::syscall_send`]/[`Kernel::syscall_recv`] implement the shared
//! machinery; this module exposes each of the ten ABIs with its own calling
//! convention (scatter/gather for `readv`/`writev`, multi-message for
//! `recvmmsg`/`sendmmsg`, explicit peer for `sendto`/`recvfrom`) so the mesh
//! layer — and the Figure 13 bench, which must exercise *every* ABI — calls
//! exactly the interface an application would.

use crate::kernel::{Fd, Kernel, RecvResult, SyscallOutcome};
use bytes::Bytes;
use df_types::time::{DurationNs, TimeNs};
use df_types::{Pid, SyscallAbi, Tid};
use std::net::Ipv4Addr;

/// The ten-ABI surface as an extension trait on [`Kernel`].
pub trait SyscallSurface {
    /// `read(2)`.
    fn sys_read(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max: usize,
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult>;
    /// `readv(2)`: scatter read into `iov_sizes`-shaped buffers; the result
    /// is the concatenation (we return it whole, plus per-iov split points).
    fn sys_readv(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        iov_sizes: &[usize],
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult>;
    /// `recvfrom(2)`.
    fn sys_recvfrom(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max: usize,
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult>;
    /// `recvmsg(2)`.
    fn sys_recvmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max: usize,
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult>;
    /// `recvmmsg(2)`: receive up to `max_msgs` messages in one call.
    fn sys_recvmmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max_msgs: usize,
        max_bytes_each: usize,
        now: TimeNs,
    ) -> SyscallOutcome<Vec<RecvResult>>;
    /// `write(2)`.
    fn sys_write(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        data: Bytes,
        now: TimeNs,
    ) -> SyscallOutcome<usize>;
    /// `writev(2)`: gather write.
    fn sys_writev(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        iovs: &[Bytes],
        now: TimeNs,
    ) -> SyscallOutcome<usize>;
    /// `sendto(2)` with optional explicit destination (UDP).
    fn sys_sendto(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        data: Bytes,
        dst: Option<(Ipv4Addr, u16)>,
        now: TimeNs,
    ) -> SyscallOutcome<usize>;
    /// `sendmsg(2)`.
    fn sys_sendmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        data: Bytes,
        now: TimeNs,
    ) -> SyscallOutcome<usize>;
    /// `sendmmsg(2)`: send multiple messages in one call. Each message gets
    /// its own hook firing (each is a distinct L7 message).
    fn sys_sendmmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        msgs: &[Bytes],
        now: TimeNs,
    ) -> SyscallOutcome<usize>;
}

impl SyscallSurface for Kernel {
    fn sys_read(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max: usize,
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult> {
        self.syscall_recv(tid, pid, fd, max, SyscallAbi::Read, now)
    }

    fn sys_readv(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        iov_sizes: &[usize],
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult> {
        let total: usize = iov_sizes.iter().sum();
        self.syscall_recv(tid, pid, fd, total, SyscallAbi::Readv, now)
    }

    fn sys_recvfrom(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max: usize,
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult> {
        self.syscall_recv(tid, pid, fd, max, SyscallAbi::Recvfrom, now)
    }

    fn sys_recvmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max: usize,
        now: TimeNs,
    ) -> SyscallOutcome<RecvResult> {
        self.syscall_recv(tid, pid, fd, max, SyscallAbi::Recvmsg, now)
    }

    fn sys_recvmmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        max_msgs: usize,
        max_bytes_each: usize,
        now: TimeNs,
    ) -> SyscallOutcome<Vec<RecvResult>> {
        // First message may block; subsequent ones are best-effort (like the
        // real ABI, which returns however many are immediately available).
        let mut out = Vec::new();
        let mut duration = DurationNs::ZERO;
        let mut t = now;
        for i in 0..max_msgs.max(1) {
            match self.syscall_recv(tid, pid, fd, max_bytes_each, SyscallAbi::Recvmmsg, t) {
                SyscallOutcome::Complete { value, duration: d } => {
                    duration += d;
                    t += d;
                    let eof = value.data.is_empty();
                    out.push(value);
                    if eof {
                        break;
                    }
                }
                SyscallOutcome::WouldBlock => {
                    if i == 0 {
                        return SyscallOutcome::WouldBlock;
                    }
                    break;
                }
                SyscallOutcome::Error { err, duration: d } => {
                    if out.is_empty() {
                        return SyscallOutcome::Error {
                            err,
                            duration: duration + d,
                        };
                    }
                    break;
                }
            }
        }
        SyscallOutcome::Complete {
            value: out,
            duration,
        }
    }

    fn sys_write(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        data: Bytes,
        now: TimeNs,
    ) -> SyscallOutcome<usize> {
        self.syscall_send(tid, pid, fd, data, SyscallAbi::Write, None, now)
    }

    fn sys_writev(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        iovs: &[Bytes],
        now: TimeNs,
    ) -> SyscallOutcome<usize> {
        // Gather: one message from all iovecs (one hook firing, like the
        // kernel's single vfs_writev path).
        let mut buf = Vec::with_capacity(iovs.iter().map(Bytes::len).sum());
        for iov in iovs {
            buf.extend_from_slice(iov);
        }
        self.syscall_send(
            tid,
            pid,
            fd,
            Bytes::from(buf),
            SyscallAbi::Writev,
            None,
            now,
        )
    }

    fn sys_sendto(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        data: Bytes,
        dst: Option<(Ipv4Addr, u16)>,
        now: TimeNs,
    ) -> SyscallOutcome<usize> {
        self.syscall_send(tid, pid, fd, data, SyscallAbi::Sendto, dst, now)
    }

    fn sys_sendmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        data: Bytes,
        now: TimeNs,
    ) -> SyscallOutcome<usize> {
        self.syscall_send(tid, pid, fd, data, SyscallAbi::Sendmsg, None, now)
    }

    fn sys_sendmmsg(
        &mut self,
        tid: Tid,
        pid: Pid,
        fd: Fd,
        msgs: &[Bytes],
        now: TimeNs,
    ) -> SyscallOutcome<usize> {
        let mut total = 0usize;
        let mut duration = DurationNs::ZERO;
        let mut t = now;
        for m in msgs {
            match self.syscall_send(tid, pid, fd, m.clone(), SyscallAbi::Sendmmsg, None, t) {
                SyscallOutcome::Complete { value, duration: d } => {
                    total += value;
                    duration += d;
                    t += d;
                }
                SyscallOutcome::WouldBlock => return SyscallOutcome::WouldBlock,
                SyscallOutcome::Error { err, duration: d } => {
                    if total == 0 {
                        return SyscallOutcome::Error {
                            err,
                            duration: duration + d,
                        };
                    }
                    break;
                }
            }
        }
        SyscallOutcome::Complete {
            value: total,
            duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelConfig, Wakeup};
    use df_types::net::TransportProtocol;
    use df_types::NodeId;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pump(a: &mut Kernel, b: &mut Kernel) -> Vec<Wakeup> {
        let mut wk = Vec::new();
        loop {
            let oa = a.drain_outbox();
            let ob = b.drain_outbox();
            if oa.is_empty() && ob.is_empty() {
                break;
            }
            for s in oa {
                wk.extend(b.deliver(&s, TimeNs(0)));
            }
            for s in ob {
                wk.extend(a.deliver(&s, TimeNs(0)));
            }
        }
        wk
    }

    type Endpoint = (Pid, Tid, Fd);

    fn connected_pair() -> (Kernel, Kernel, Endpoint, Endpoint) {
        let mut a = Kernel::new(KernelConfig {
            node: NodeId(1),
            ..Default::default()
        });
        let mut b = Kernel::new(KernelConfig {
            node: NodeId(2),
            ..Default::default()
        });
        let (spid, stid) = b.procs.spawn_process("server");
        let lfd = b.socket(spid, TransportProtocol::Tcp).unwrap();
        b.bind(spid, lfd, IP_B, 80).unwrap();
        b.listen(spid, lfd, 16).unwrap();
        b.accept(stid, spid, lfd);
        let (cpid, ctid) = a.procs.spawn_process("client");
        let cfd = a.socket(cpid, TransportProtocol::Tcp).unwrap();
        a.connect(ctid, cpid, cfd, IP_A, (IP_B, 80));
        pump(&mut a, &mut b);
        let (sfd, _) = b.accept(stid, spid, lfd).unwrap_complete();
        (a, b, (cpid, ctid, cfd), (spid, stid, sfd))
    }

    #[test]
    fn writev_gathers_iovecs_into_one_message() {
        let (mut a, mut b, (cpid, ctid, cfd), (spid, stid, sfd)) = connected_pair();
        let iovs = [
            Bytes::from_static(b"GET / "),
            Bytes::from_static(b"HTTP/1.1"),
            Bytes::from_static(b"\r\n\r\n"),
        ];
        let (n, _) = a
            .sys_writev(ctid, cpid, cfd, &iovs, TimeNs(0))
            .unwrap_complete();
        assert_eq!(n, 18);
        b.sys_read(stid, spid, sfd, 4096, TimeNs(0));
        pump(&mut a, &mut b);
        let (r, _) = b
            .sys_read(stid, spid, sfd, 4096, TimeNs(0))
            .unwrap_complete();
        assert_eq!(&r.data[..], b"GET / HTTP/1.1\r\n\r\n");
        assert!(r.msg_start, "gathered write is one message");
    }

    #[test]
    fn sendmmsg_sends_each_message_separately() {
        let (mut a, mut b, (cpid, ctid, cfd), (spid, stid, sfd)) = connected_pair();
        let msgs = [Bytes::from_static(b"one"), Bytes::from_static(b"two")];
        let (n, _) = a
            .sys_sendmmsg(ctid, cpid, cfd, &msgs, TimeNs(0))
            .unwrap_complete();
        assert_eq!(n, 6);
        b.sys_recvmsg(stid, spid, sfd, 4096, TimeNs(0));
        pump(&mut a, &mut b);
        // Two distinct messages: reads stop at boundaries.
        let (r1, _) = b
            .sys_recvmsg(stid, spid, sfd, 4096, TimeNs(0))
            .unwrap_complete();
        assert_eq!(&r1.data[..], b"one");
        let (r2, _) = b
            .sys_recvmsg(stid, spid, sfd, 4096, TimeNs(0))
            .unwrap_complete();
        assert_eq!(&r2.data[..], b"two");
        assert!(r2.msg_start);
    }

    #[test]
    fn recvmmsg_batches_available_messages() {
        let (mut a, mut b, (cpid, ctid, cfd), (spid, stid, sfd)) = connected_pair();
        let msgs = [
            Bytes::from_static(b"alpha"),
            Bytes::from_static(b"beta"),
            Bytes::from_static(b"gamma"),
        ];
        a.sys_sendmmsg(ctid, cpid, cfd, &msgs, TimeNs(0))
            .unwrap_complete();
        // Park, deliver, retry: recvmmsg picks up everything available.
        assert!(matches!(
            b.sys_recvmmsg(stid, spid, sfd, 8, 4096, TimeNs(0)),
            SyscallOutcome::WouldBlock
        ));
        pump(&mut a, &mut b);
        let (batch, _) = b
            .sys_recvmmsg(stid, spid, sfd, 8, 4096, TimeNs(0))
            .unwrap_complete();
        assert_eq!(batch.len(), 3);
        assert_eq!(&batch[0].data[..], b"alpha");
        assert_eq!(&batch[2].data[..], b"gamma");
    }

    #[test]
    fn readv_reads_up_to_total_iov_capacity() {
        let (mut a, mut b, (cpid, ctid, cfd), (spid, stid, sfd)) = connected_pair();
        a.sys_write(ctid, cpid, cfd, Bytes::from_static(b"abcdefgh"), TimeNs(0))
            .unwrap_complete();
        b.sys_readv(stid, spid, sfd, &[4, 2], TimeNs(0));
        pump(&mut a, &mut b);
        let (r, _) = b
            .sys_readv(stid, spid, sfd, &[4, 2], TimeNs(0))
            .unwrap_complete();
        assert_eq!(&r.data[..], b"abcdef"); // capped at 6 = 4+2
    }
}
