//! Integration tests for the tiered hot/cold span store: spill, page-in
//! through the buffer pool, query equivalence against an all-hot oracle,
//! and the frame-budget acceptance check (≥1M spans ingested, resident
//! set bounded by the pool's frame count).

use df_check::sync::Arc;
use df_storage::persist;
use df_storage::{BufferPool, BufferPoolConfig, EvictionPolicy, ShardPolicy, SpanQuery, SpanStore};
use df_types::ids::{AgentId, FlowId, NodeId, SpanId};
use df_types::l7::L7Protocol;
use df_types::net::FiveTuple;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::TimeNs;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Unique per-test temp dir, removed on drop.
struct TestDir {
    path: PathBuf,
}

fn test_dir(tag: &str) -> TestDir {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos();
    let path =
        std::env::temp_dir().join(format!("df-tiering-{tag}-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&path).expect("create test dir");
    TestDir { path }
}

impl TestDir {
    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A span with deterministic association keys so the hash indexes (and
/// their segment images) carry real entries.
fn span(i: u64) -> Span {
    Span {
        span_id: SpanId(0),
        kind: SpanKind::Sys,
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: TapSide::ClientProcess,
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(i),
        five_tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 0, (i % 8) as u8, 1),
            40000 + (i % 100) as u16,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        ),
        l7_protocol: L7Protocol::Http1,
        endpoint: format!("GET /api/endpoint-{}", i % 16),
        req_time: TimeNs(i * 10_000_000), // 10 ms apart → 100 per 1 s bucket
        resp_time: TimeNs(i * 10_000_000 + 1_000_000),
        status: SpanStatus::Ok,
        status_code: Some(200),
        req_bytes: 10,
        resp_bytes: 20,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: Some(df_types::ids::SysTraceId(1_000 + i / 2)),
        systrace_id_resp: None,
        pseudo_thread_id: if i.is_multiple_of(3) {
            Some(df_types::ids::PseudoThreadId(500 + i / 3))
        } else {
            None
        },
        x_request_id_req: if i.is_multiple_of(4) {
            Some(df_types::ids::XRequestId(7_000 + i as u128))
        } else {
            None
        },
        x_request_id_resp: None,
        tcp_seq_req: Some(90_000 + (i / 2) as u32),
        tcp_seq_resp: None,
        otel_trace_id: None,
        otel_span_id: None,
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

/// A stripped-down span for the bulk 1M-row test: no association keys, a
/// short endpoint, `bucket` selected directly.
fn bulk_span(i: u64, bucket: u64) -> Span {
    Span {
        span_id: SpanId(0),
        kind: SpanKind::Net,
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: TapSide::ClientNodeNic,
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(i),
        five_tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 1, 0, 1),
            40000,
            Ipv4Addr::new(10, 1, 0, 2),
            80,
        ),
        l7_protocol: L7Protocol::Http1,
        endpoint: String::new(),
        req_time: TimeNs(bucket * 1_000_000_000 + (i % 1_000_000)),
        resp_time: TimeNs(bucket * 1_000_000_000 + (i % 1_000_000) + 1),
        status: SpanStatus::Ok,
        status_code: None,
        req_bytes: 0,
        resp_bytes: 0,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: None,
        systrace_id_resp: None,
        pseudo_thread_id: None,
        x_request_id_req: None,
        x_request_id_resp: None,
        tcp_seq_req: None,
        tcp_seq_resp: None,
        otel_trace_id: None,
        otel_span_id: None,
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

fn tiered_pair(n: u64) -> (SpanStore, SpanStore) {
    let mut hot = SpanStore::new();
    let mut tiered = SpanStore::new();
    for i in 0..n {
        hot.insert(span(i));
        tiered.insert(span(i));
    }
    (hot, tiered)
}

#[test]
fn spill_flips_old_buckets_and_preserves_every_read_path() {
    let dir = test_dir("equiv");
    let (hot, mut tiered) = tiered_pair(400); // 4 one-second buckets
    let policy = ShardPolicy::single();
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(8)));

    // Spill buckets 0 and 1 (watermark = start of bucket 2).
    let stats = tiered
        .spill_before(&policy, TimeNs(2_000_000_000), &pool, dir.path(), 0)
        .expect("spill succeeds");
    assert_eq!(stats.segments, 2, "one segment per cold bucket");
    assert_eq!(stats.spans, 200);
    assert!(stats.bytes > 0);
    assert_eq!(tiered.cold_rows(), 200);
    assert_eq!(tiered.hot_rows(), 200);
    assert_eq!(hot.len(), tiered.len());

    // get() by id pages cold rows in transparently.
    for i in 0..400u64 {
        let id = SpanId(i + 1);
        let want = hot.get(id).expect("oracle has id");
        let got = tiered.get(id).expect("tiered store serves cold ids");
        assert_eq!(*want, *got, "span {id:?} identical across tiers");
    }

    // Window queries straddling the hot/cold boundary match the oracle.
    let q = SpanQuery::window(TimeNs(1_500_000_000), TimeNs(2_500_000_000));
    let want: Vec<SpanId> = hot.query(&q).iter().map(|s| s.span_id).collect();
    let got: Vec<SpanId> = tiered.query(&q).iter().map(|s| s.span_id).collect();
    assert_eq!(want, got, "straddling window query matches all-hot oracle");

    // Association probes still resolve on cold rows, and the rows they
    // name materialise to the oracle's spans.
    for i in 0..400u64 {
        let key = 1_000 + i / 2;
        let rows = tiered.find_by_systrace(key).to_vec();
        assert_eq!(rows, hot.find_by_systrace(key).to_vec());
        for row in rows {
            assert_eq!(
                *tiered.span_at(row).expect("probe row exists"),
                *hot.span_at(row).expect("oracle row exists")
            );
        }
    }

    // Full iteration agrees.
    let want: Vec<Span> = hot.iter().map(|s| s.into_owned()).collect();
    let got: Vec<Span> = tiered.iter().map(|s| s.into_owned()).collect();
    assert_eq!(want, got, "iter() identical across tiers");

    // The pool actually serviced the cold reads.
    let ps = pool.stats();
    assert!(ps.misses >= 2, "both segments paged in at least once");
    assert!(ps.hits > 0, "repeat reads hit resident frames");
}

#[test]
fn tombstones_survive_spill_and_compaction_pages_in() {
    let dir = test_dir("tombstone");
    let (mut hot, mut tiered) = tiered_pair(300);
    let policy = ShardPolicy::single();
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(4)));

    // Tombstone every 7th span *before* the spill: tombstoned rows still
    // spill (the segment is an image of the rows), but stay masked.
    let doomed: Vec<SpanId> = (0..300u64)
        .filter(|i| i.is_multiple_of(7))
        .map(|i| SpanId(i + 1))
        .collect();
    for &id in &doomed {
        hot.tombstone(id);
        tiered.tombstone(id);
    }
    tiered
        .spill_before(&policy, TimeNs(2_000_000_000), &pool, dir.path(), 0)
        .expect("spill succeeds");

    let q = SpanQuery::window(TimeNs(0), TimeNs(3_000_000_000));
    let want: Vec<SpanId> = hot.query(&q).iter().map(|s| s.span_id).collect();
    let got: Vec<SpanId> = tiered.query(&q).iter().map(|s| s.span_id).collect();
    assert_eq!(want, got, "tombstone mask identical across tiers");
    assert!(!got.contains(&SpanId(1)), "tombstoned span filtered");

    // Index compaction over cold rows pages them in to erase their keys.
    let evicted_hot = hot.evict_tombstoned();
    let evicted_tiered = tiered.evict_tombstoned();
    assert_eq!(evicted_hot, evicted_tiered);
    for i in (0..300u64).filter(|i| i.is_multiple_of(7)) {
        let key = 1_000 + i / 2;
        assert_eq!(
            tiered.find_by_systrace(key).to_vec(),
            hot.find_by_systrace(key).to_vec(),
            "compacted probe agrees for key {key}"
        );
    }
}

#[test]
fn incomplete_spans_never_spill() {
    let dir = test_dir("incomplete");
    let mut st = SpanStore::new();
    let policy = ShardPolicy::single();
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(4)));

    for i in 0..100u64 {
        let mut s = span(i);
        if i.is_multiple_of(5) {
            s.status = SpanStatus::Incomplete;
        }
        st.insert(s);
    }
    let stats = st
        .spill_before(&policy, TimeNs(u64::MAX), &pool, dir.path(), 0)
        .expect("spill succeeds");
    assert_eq!(stats.spans, 80, "incomplete spans stay hot");
    assert_eq!(st.hot_rows(), 20);

    // The half-open exchange can still be completed in place.
    let mut resp = span(0);
    resp.resp_time = TimeNs(99_000_000_000);
    assert!(st.complete_span(SpanId(1), &resp), "hot row completes");
}

#[test]
fn repeated_spill_is_idempotent_and_new_buckets_spill_later() {
    let dir = test_dir("idempotent");
    let (_, mut st) = tiered_pair(200);
    let policy = ShardPolicy::single();
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(4)));

    let first = st
        .spill_before(&policy, TimeNs(1_000_000_000), &pool, dir.path(), 0)
        .expect("spill succeeds");
    assert_eq!(first.spans, 100);
    let again = st
        .spill_before(&policy, TimeNs(1_000_000_000), &pool, dir.path(), 0)
        .expect("re-spill succeeds");
    assert_eq!(again.spans, 0, "already-cold rows are not re-spilled");
    assert_eq!(again.segments, 0);

    let rest = st
        .spill_before(&policy, TimeNs(2_000_000_000), &pool, dir.path(), 0)
        .expect("later spill succeeds");
    assert_eq!(rest.spans, 100, "the newer bucket spills once eligible");
    assert_eq!(st.cold_rows(), 200);
}

#[test]
fn all_pinned_pool_serves_reads_through_the_bypass_path() {
    let dir = test_dir("bypass");
    let pool = BufferPool::new(BufferPoolConfig {
        frames: 1,
        k: 2,
        policy: EvictionPolicy::LruK,
        queue_depth: 8,
    });

    // Two one-span segments behind a one-frame pool.
    let mut paths = Vec::new();
    for seg in 0..2u64 {
        let spans = vec![span(seg)];
        let bytes = persist::encode_span_segment(&spans, &[seg as u32]);
        let path = dir.path().join(format!("seg{seg}.dfspan"));
        pool.scheduler()
            .write(path.clone(), bytes)
            .wait()
            .expect("segment written");
        let id = pool.alloc_segment();
        pool.register(id, path.clone());
        paths.push(id);
    }

    let pinned = pool.fetch(paths[0]).expect("first segment pages in");
    assert_eq!(pinned.len(), 1);
    // The only frame is pinned: reading the other segment cannot evict,
    // so read_span falls back to a direct scheduler read.
    let s = pool.read_span(paths[1], 0);
    assert_eq!(s.flow_id, FlowId(1));
    let stats = pool.stats();
    assert_eq!(stats.bypass_reads, 1, "bypass read counted");
    assert_eq!(pool.resident_frames(), 1);
    drop(pinned);

    // With the pin released the second segment evicts the first normally.
    let _second = pool.fetch(paths[1]).expect("evicts the unpinned frame");
    assert!(pool.stats().evictions >= 1);
}

#[test]
fn crash_recovery_reregisters_segments_and_rebuilds_reads() {
    let dir = test_dir("recovery");
    let policy = ShardPolicy::single();

    // First incarnation: ingest 3 one-second buckets, spill them all.
    let (oracle, mut first) = tiered_pair(300);
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(8)));
    let spilled = first
        .spill_before(&policy, TimeNs(3_000_000_000), &pool, dir.path(), 7)
        .expect("spill succeeds");
    assert_eq!(spilled.segments, 3);
    assert_eq!(spilled.spans, 300);
    drop(first);
    drop(pool); // crash: all in-memory state gone

    // Plant a corrupt file matching the shard's naming scheme: recovery
    // must count it, not die on it.
    std::fs::write(
        dir.path()
            .join("shard0007-b000000000099-seg00009999.dfspan"),
        b"torn spill",
    )
    .expect("write corrupt file");

    // Second incarnation: fresh pool, fresh store, recover from disk.
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(8)));
    let mut revived = SpanStore::new();
    let recovered = revived
        .recover_cold_segments(&pool, dir.path(), 7)
        .expect("recovery succeeds");
    assert_eq!(recovered.segments, 3, "every DFSPANS1 file re-registered");
    assert_eq!(recovered.rejected_segments, 1, "corrupt file counted");
    assert_eq!(recovered.rows, 300);
    assert_eq!(recovered.orphan_rows, 0);
    assert_eq!(revived.len(), 300);
    assert_eq!(revived.cold_rows(), 300);

    // Every read path agrees with the never-crashed oracle.
    for i in 0..300u64 {
        let id = SpanId(i + 1);
        assert_eq!(
            *oracle.get(id).expect("oracle has id"),
            *revived.get(id).expect("revived store serves id"),
        );
    }
    let q = SpanQuery::window(TimeNs(500_000_000), TimeNs(2_500_000_000));
    let want: Vec<SpanId> = oracle.query(&q).iter().map(|s| s.span_id).collect();
    let got: Vec<SpanId> = revived.query(&q).iter().map(|s| s.span_id).collect();
    assert_eq!(want, got, "window query identical after recovery");
    for i in 0..300u64 {
        let key = 1_000 + i / 2;
        assert_eq!(
            revived.find_by_systrace(key).to_vec(),
            oracle.find_by_systrace(key).to_vec(),
            "association probe identical after recovery"
        );
    }
    assert!(pool.stats().misses >= 3, "reads went through the new pool");
}

#[test]
fn recovery_with_a_lost_middle_segment_adopts_only_the_prefix() {
    let dir = test_dir("recovery-gap");
    let policy = ShardPolicy::single();
    let (_, mut first) = tiered_pair(300);
    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(8)));
    first
        .spill_before(&policy, TimeNs(3_000_000_000), &pool, dir.path(), 0)
        .expect("spill succeeds");
    drop(first);
    drop(pool);

    // Lose the middle bucket's segment (rows 100..200).
    let victim = std::fs::read_dir(dir.path())
        .expect("read dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.to_str().unwrap().contains("-b000000000001-"))
        .expect("middle segment exists");
    std::fs::remove_file(&victim).expect("remove middle segment");

    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(8)));
    let mut revived = SpanStore::new();
    let recovered = revived
        .recover_cold_segments(&pool, dir.path(), 0)
        .expect("recovery succeeds");
    assert_eq!(recovered.segments, 2);
    assert_eq!(recovered.rows, 100, "contiguous prefix only");
    assert_eq!(
        recovered.orphan_rows, 100,
        "post-gap rows left for backfill"
    );
    assert_eq!(revived.len(), 100);
    let mut want = span(99);
    want.span_id = SpanId(100);
    assert_eq!(*revived.get(SpanId(100)).expect("prefix row serves"), want);
}

/// The ISSUE's acceptance check: ingest ≥1M spans under a small frame
/// budget, spill everything but the newest bucket, touch every cold
/// segment, and assert the resident set never exceeds the budget.
#[test]
fn million_span_ingest_stays_within_frame_budget() {
    let dir = test_dir("budget-1m");
    const TOTAL: u64 = 1_000_000;
    const BUCKETS: u64 = 8;

    let mut st = SpanStore::new();
    let policy = ShardPolicy::single(); // 1 s buckets
    st.insert_batch(
        (0..TOTAL)
            .map(|i| bulk_span(i, i % BUCKETS))
            .collect::<Vec<_>>(),
    );
    assert_eq!(st.len() as u64, TOTAL);

    let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(4)));
    // Keep only the newest bucket hot: 7 cold buckets → 7 segments.
    let stats = st
        .spill_before(
            &policy,
            TimeNs((BUCKETS - 1) * 1_000_000_000),
            &pool,
            dir.path(),
            0,
        )
        .expect("bulk spill succeeds");
    assert_eq!(stats.segments, (BUCKETS - 1) as usize);
    assert_eq!(stats.spans as u64, TOTAL / BUCKETS * (BUCKETS - 1));
    assert_eq!(st.hot_rows() as u64, TOTAL / BUCKETS);
    assert_eq!(st.cold_rows() as u64, TOTAL - TOTAL / BUCKETS);

    // Touch one span per cold bucket, twice around: every touch pages the
    // segment in, and the resident set must stay within the frame budget
    // the whole time.
    assert_eq!(pool.frame_budget(), 4);
    for round in 0..2 {
        for b in 0..(BUCKETS - 1) {
            // Row layout is insertion order: bucket b starts at row b.
            let row = b as u32 + round * 8;
            let s = st.span_at(row).expect("cold row pages in");
            assert_eq!(s.flow_id, FlowId(row as u64));
            assert!(
                pool.resident_frames() <= pool.frame_budget(),
                "resident set within the frame budget"
            );
        }
    }
    let ps = pool.stats();
    assert!(
        ps.misses >= (BUCKETS - 1) as usize,
        "every segment paged in"
    );
    assert!(
        ps.evictions >= 3,
        "the pool recycled frames to stay in budget"
    );
}
