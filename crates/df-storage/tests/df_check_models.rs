//! df-check model tests for the buffer pool's two safety invariants:
//!
//! 1. **Eviction never selects a pinned frame.** The pool pins a frame
//!    (`pins += 1`) and marks it non-evictable in the replacer inside one
//!    critical section; eviction consults the replacer inside another.
//!    The models drive the *real* [`df_storage::bufferpool::Replacer`]
//!    through racing pin/unpin and evict threads — the shipped discipline
//!    admits no schedule that evicts a pinned frame, and the mutation
//!    that forgets `set_evictable(false)` on pin is caught, with a
//!    deterministic replay.
//!
//! 2. **Page-out writes before it flips.** `SpanStore::spill_before`
//!    waits for every segment write's completion *before* flipping rows
//!    `Hot → Cold`, so a concurrent reader that observes a cold row can
//!    always page the segment in — it can never be served a stale or
//!    missing row. The model checks the write-then-flip ordering
//!    exhaustively and shows the flip-before-write mutation loses.
//!
//! The suite runs checked in the default workspace test run because
//! df-storage's dev-dependency on df-check enables the `checked`
//! feature. Budgets respect `DF_CHECK_MAX_SCHEDULES` /
//! `DF_CHECK_MAX_PREEMPTIONS` so CI can bound wall-clock (see `ci.sh`).

use df_check::model::{self, CheckConfig, FailureKind};
use df_check::sync::{Arc, Mutex};
use df_storage::bufferpool::{EvictionPolicy, Replacer};

fn budget() -> CheckConfig {
    CheckConfig::default().env_budget()
}

/// All model tests no-op when the shims compile as plain std re-exports
/// (they only explore schedules under the `checked` feature).
fn checked_or_skip() -> bool {
    if df_check::is_checked() {
        true
    } else {
        eprintln!("skipped: df-check built without the `checked` feature");
        false
    }
}

// ---------------------------------------------------------------------
// Invariant 1: eviction never selects a pinned frame.
// ---------------------------------------------------------------------

/// Replacer state plus the pin counts the pool keeps next to it — one
/// lock, exactly like `bufferpool::Inner`.
struct PoolState {
    replacer: Replacer,
    pins: [usize; 2],
}

/// One round of the *shipped* pin discipline over the real [`Replacer`]:
/// pin = `pins += 1` and `set_evictable(false)` in one critical section,
/// unpin the mirror image, eviction asserts the victim is unpinned.
/// `honest_pin` selects the shipped discipline; `false` is the mutation
/// where the pinner forgets to mark the frame non-evictable.
fn pin_discipline_round(honest_pin: bool) {
    let state = Arc::new(Mutex::new(PoolState {
        replacer: Replacer::new(EvictionPolicy::LruK, 2),
        pins: [0, 0],
    }));
    {
        // Two installed, unpinned, evictable frames.
        let mut s = state.lock().expect("pool lock");
        for f in 0..2 {
            s.replacer.record_access(f);
            s.replacer.set_evictable(f, true);
        }
    }

    let pinner = {
        let state = Arc::clone(&state);
        model::spawn(move || {
            {
                let mut s = state.lock().expect("pool lock");
                s.pins[0] += 1;
                if honest_pin {
                    s.replacer.set_evictable(0, false);
                }
            }
            {
                let mut s = state.lock().expect("pool lock");
                s.pins[0] -= 1;
                s.replacer.set_evictable(0, true);
            }
        })
    };
    let evictor = {
        let state = Arc::clone(&state);
        model::spawn(move || {
            let mut s = state.lock().expect("pool lock");
            if let Some(victim) = s.replacer.evict() {
                assert_eq!(
                    s.pins[victim], 0,
                    "evicted a pinned frame: frame {victim} has readers"
                );
            }
        })
    };
    pinner.join();
    evictor.join();
}

#[test]
fn eviction_never_selects_a_pinned_frame_under_any_schedule() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), || pin_discipline_round(true));
    assert!(report.complete, "schedule space must be exhausted");
    assert!(report.schedules >= 2, "interleavings actually explored");
    assert!(report.lock_cycles.is_empty(), "no lock-order inversions");
}

#[test]
fn forgetting_set_evictable_on_pin_is_caught_and_replays() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || pin_discipline_round(false));
    let failure = report
        .failure
        .expect("pin without set_evictable(false) must lose a schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("evicted a pinned frame"),
        "failure names the invariant: {}",
        failure.message
    );
    assert!(
        !failure.schedule.is_empty(),
        "counterexample has a schedule"
    );
    assert!(!failure.trace.is_empty(), "counterexample has a trace");

    let replayed = model::replay(failure.schedule.clone(), || pin_discipline_round(false));
    let rf = replayed.failure.expect("replay reproduces the failure");
    assert_eq!(rf.kind, FailureKind::Panic);
    assert_eq!(replayed.schedules, 1, "replay runs exactly one schedule");
}

// ---------------------------------------------------------------------
// Invariant 2: page-out writes the segment durably BEFORE flipping the
// row cold, so a page-in racing the spill never sees a cold row whose
// segment is missing (and never serves a stale payload).
// ---------------------------------------------------------------------

/// A row is either hot with its payload resident, or cold with the
/// payload only on "disk".
#[derive(Clone, Copy, PartialEq, Eq)]
enum Row {
    Hot(u32),
    Cold,
}

/// One spill racing one reader. `write_first` selects the shipped
/// ordering (segment write completion awaited, then flip) vs the mutation
/// (flip first, write later). The reader must obtain payload 7 on every
/// schedule, whichever tier it reads from.
fn page_out_ordering_round(write_first: bool) {
    let disk = Arc::new(Mutex::new(None::<u32>)); // segment file
    let row = Arc::new(Mutex::new(Row::Hot(7))); // RowSlot

    let spiller = {
        let disk = Arc::clone(&disk);
        let row = Arc::clone(&row);
        model::spawn(move || {
            if write_first {
                *disk.lock().expect("disk lock") = Some(7); // wait() returned Ok
                *row.lock().expect("row lock") = Row::Cold; // then flip
            } else {
                *row.lock().expect("row lock") = Row::Cold; // flip early (bug)
                *disk.lock().expect("disk lock") = Some(7);
            }
        })
    };
    let reader = {
        let disk = Arc::clone(&disk);
        let row = Arc::clone(&row);
        model::spawn(move || {
            let tier = *row.lock().expect("row lock");
            let payload = match tier {
                Row::Hot(v) => v,
                Row::Cold => disk
                    .lock()
                    .expect("disk lock")
                    .expect("cold row with no durable segment: page-in would serve a stale row"),
            };
            assert_eq!(payload, 7, "page-in must serve the spilled payload");
        })
    };
    spiller.join();
    reader.join();
}

#[test]
fn write_then_flip_ordering_admits_no_stale_page_in() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), || page_out_ordering_round(true));
    assert!(report.complete, "schedule space must be exhausted");
    assert!(report.schedules >= 2, "interleavings actually explored");
    assert!(report.lock_cycles.is_empty(), "no lock-order inversions");
}

#[test]
fn flip_before_write_is_caught_and_replays() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || page_out_ordering_round(false));
    let failure = report
        .failure
        .expect("flipping before the write completes must lose a schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("cold row with no durable segment"),
        "failure names the invariant: {}",
        failure.message
    );

    let replayed = model::replay(failure.schedule.clone(), || page_out_ordering_round(false));
    let rf = replayed.failure.expect("replay reproduces the failure");
    assert_eq!(rf.kind, FailureKind::Panic);
    assert_eq!(replayed.schedules, 1, "replay runs exactly one schedule");
}
