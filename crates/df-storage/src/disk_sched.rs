//! Background disk scheduler: a dedicated IO thread servicing read/write
//! requests from a bounded queue.
//!
//! The tiered store (see [`crate::bufferpool`]) must never do file IO on
//! an ingest worker or an assembling reader directly — those threads hold
//! shard locks, and a slow disk would stall every producer behind the
//! lock. Instead, all segment IO is expressed as a [`DiskOp`] queued to
//! the scheduler thread; the requester gets a [`Completion`] it can
//! wait on (spill waits before flipping rows cold — the page-out ordering
//! invariant the df-check model test pins down — and a page-in waits
//! because it cannot proceed without the bytes). Queueing decouples
//! *submission* from *service*: a spill submits every segment write up
//! front and the encode of segment *n+1* overlaps the write of segment
//! *n*.
//!
//! This is the `disk_scheduler.rs` shape of the bustub-style buffer pool
//! the ROADMAP points at, minus `io_uring`: one worker thread, a bounded
//! MPSC queue, one completion channel per request.
//!
//! Together with [`crate::persist`], this module is one of the two places
//! in the sync-scoped crates allowed to touch `std::fs` — `df-lint`
//! enforces that confinement.

use df_check::sync::atomic::{AtomicUsize, Ordering};
use df_check::sync::mpsc::{sync_channel, Receiver, SyncSender};
use df_check::sync::Arc;
use std::io;
use std::path::PathBuf;
use std::thread;

/// One queued IO operation.
#[derive(Debug)]
pub enum DiskOp {
    /// Read the whole file at `path`.
    Read {
        /// File to read.
        path: PathBuf,
    },
    /// Create/overwrite the file at `path` with `bytes` (parent
    /// directories are created as needed).
    Write {
        /// File to write.
        path: PathBuf,
        /// Contents to write.
        bytes: Vec<u8>,
    },
}

/// A request on the scheduler's queue: the operation plus the completion
/// channel the worker answers on.
#[derive(Debug)]
struct DiskRequest {
    op: DiskOp,
    done: SyncSender<io::Result<Vec<u8>>>,
}

/// Handle to a scheduled request; [`Completion::wait`] blocks until the
/// IO thread has serviced it.
#[derive(Debug)]
pub struct Completion {
    rx: Receiver<io::Result<Vec<u8>>>,
}

impl Completion {
    /// Block until the request is serviced. Reads resolve to the file
    /// bytes; writes resolve to an empty vec. A scheduler shut down with
    /// the request still queued resolves to an error.
    pub fn wait(self) -> io::Result<Vec<u8>> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "disk scheduler shut down before servicing the request",
            ))
        })
    }
}

/// Counters the scheduler thread maintains (monotonic).
#[derive(Debug)]
struct SchedCounters {
    reads: AtomicUsize,
    writes: AtomicUsize,
    read_bytes: AtomicUsize,
    written_bytes: AtomicUsize,
}

impl SchedCounters {
    fn new() -> Self {
        SchedCounters {
            reads: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            read_bytes: AtomicUsize::new(0),
            written_bytes: AtomicUsize::new(0),
        }
    }
}

/// Snapshot of [`DiskScheduler`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Read requests serviced.
    pub reads: usize,
    /// Write requests serviced.
    pub writes: usize,
    /// Total bytes read.
    pub read_bytes: usize,
    /// Total bytes written.
    pub written_bytes: usize,
}

/// The background disk scheduler: one owned IO thread draining a bounded
/// request queue. Dropping the scheduler disconnects the queue and joins
/// the thread (queued requests are serviced first; their completions
/// resolve normally).
#[derive(Debug)]
pub struct DiskScheduler {
    tx: Option<SyncSender<DiskRequest>>,
    worker: Option<thread::JoinHandle<()>>,
    counters: Arc<SchedCounters>,
}

impl Default for DiskScheduler {
    fn default() -> Self {
        DiskScheduler::new(128)
    }
}

impl DiskScheduler {
    /// Scheduler with a queue holding at most `queue_depth` outstanding
    /// requests; a full queue blocks the submitter (backpressure), which
    /// bounds the memory pinned by in-flight write payloads.
    pub fn new(queue_depth: usize) -> Self {
        let (tx, rx) = sync_channel::<DiskRequest>(queue_depth.max(1));
        let counters = Arc::new(SchedCounters::new());
        let worker_counters = Arc::clone(&counters);
        let worker = thread::Builder::new()
            .name("df-disk-sched".to_string())
            .spawn(move || service_loop(rx, worker_counters))
            .expect("spawn disk scheduler thread");
        DiskScheduler {
            tx: Some(tx),
            worker: Some(worker),
            counters,
        }
    }

    /// Queue a read of the whole file at `path`.
    pub fn read(&self, path: PathBuf) -> Completion {
        self.schedule(DiskOp::Read { path })
    }

    /// Queue a create/overwrite of `path` with `bytes`.
    pub fn write(&self, path: PathBuf, bytes: Vec<u8>) -> Completion {
        self.schedule(DiskOp::Write { path, bytes })
    }

    /// Queue an arbitrary [`DiskOp`].
    pub fn schedule(&self, op: DiskOp) -> Completion {
        // Rendezvous completion: the worker's send blocks until the
        // requester waits (or parks the result if the requester is late).
        let (done, rx) = sync_channel::<io::Result<Vec<u8>>>(1);
        let req = DiskRequest { op, done };
        let alive = self
            .tx
            .as_ref()
            .expect("scheduler queue present until drop")
            .send(req);
        if alive.is_err() {
            // Unreachable while `self` owns the worker, but keep the
            // contract total: the completion resolves to an error.
            // (The request carried `done`; dropping it disconnects `rx`.)
        }
        Completion { rx }
    }

    /// Monotonic IO counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.counters.reads.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            read_bytes: self.counters.read_bytes.load(Ordering::Relaxed),
            written_bytes: self.counters.written_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for DiskScheduler {
    fn drop(&mut self) {
        self.tx = None; // disconnect: the worker drains and exits
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The IO thread: service requests until every sender is gone. This is
/// the only function in the tiered-storage stack that touches the
/// filesystem at runtime (persist.rs holds the other, offline, IO entry
/// points).
fn service_loop(rx: Receiver<DiskRequest>, counters: Arc<SchedCounters>) {
    while let Ok(req) = rx.recv() {
        let result = match req.op {
            DiskOp::Read { path } => {
                let r = std::fs::read(&path);
                if let Ok(bytes) = &r {
                    counters.reads.fetch_add(1, Ordering::Relaxed);
                    counters
                        .read_bytes
                        .fetch_add(bytes.len(), Ordering::Relaxed);
                }
                r
            }
            DiskOp::Write { path, bytes } => {
                let n = bytes.len();
                let r = write_all(&path, &bytes);
                if r.is_ok() {
                    counters.writes.fetch_add(1, Ordering::Relaxed);
                    counters.written_bytes.fetch_add(n, Ordering::Relaxed);
                }
                r.map(|()| Vec::new())
            }
        };
        // A requester that dropped its Completion without waiting is fine.
        let _ = req.done.send(result);
    }
}

fn write_all(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::test_dir;

    #[test]
    fn write_then_read_round_trips_off_the_io_thread() {
        let dir = test_dir("disk-sched-rw");
        let path = dir.path().join("nested/dir/blob.bin");
        let sched = DiskScheduler::new(4);
        sched
            .write(path.clone(), vec![1, 2, 3, 4])
            .wait()
            .expect("write serviced");
        let back = sched.read(path).wait().expect("read serviced");
        assert_eq!(back, vec![1, 2, 3, 4]);
        let st = sched.stats();
        assert_eq!((st.reads, st.writes), (1, 1));
        assert_eq!(st.written_bytes, 4);
        assert_eq!(st.read_bytes, 4);
    }

    #[test]
    fn read_of_missing_file_resolves_to_an_error() {
        let dir = test_dir("disk-sched-missing");
        let sched = DiskScheduler::default();
        let err = sched.read(dir.path().join("nope.bin")).wait();
        assert!(err.is_err());
    }

    #[test]
    fn queued_requests_survive_drop_and_many_waiters_interleave() {
        let dir = test_dir("disk-sched-drop");
        let sched = DiskScheduler::new(2);
        let completions: Vec<Completion> = (0..8)
            .map(|i| sched.write(dir.path().join(format!("f{i}")), vec![i as u8; 16]))
            .collect();
        drop(sched); // drains the queue before joining
        for c in completions {
            c.wait().expect("queued write serviced before shutdown");
        }
        for i in 0..8 {
            let meta = std::fs::metadata(dir.path().join(format!("f{i}"))).expect("file exists");
            assert_eq!(meta.len(), 16);
        }
    }
}
