//! Typed columns with byte-accurate memory accounting and a compact binary
//! serialisation (the "disk" of Fig. 14).

use std::collections::HashMap;

/// A typed column.
#[derive(Debug, Clone)]
pub enum Column {
    /// Fixed-width 32-bit integers (smart-encoded tags).
    U32(Vec<u32>),
    /// Fixed-width 64-bit integers (timestamps, ids).
    U64(Vec<u64>),
    /// Plain strings (direct insertion).
    Str(Vec<String>),
    /// Dictionary-encoded strings (ClickHouse LowCardinality analogue):
    /// a per-column dictionary plus per-row codes.
    LowCard {
        /// Distinct values, in insertion order.
        dict: Vec<String>,
        /// Value → code lookup used during ingestion.
        index: HashMap<String, u32>,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
}

/// Size/shape statistics for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Rows stored.
    pub rows: usize,
    /// Resident memory estimate in bytes (data + dictionaries + hash index).
    pub memory_bytes: usize,
    /// Serialised on-disk size in bytes.
    pub disk_bytes: usize,
}

impl Column {
    /// New empty low-cardinality column.
    pub fn new_lowcard() -> Column {
        Column::LowCard {
            dict: Vec::new(),
            index: HashMap::new(),
            codes: Vec::new(),
        }
    }

    /// Push an integer (only for `U32`/`U64`).
    pub fn push_int(&mut self, v: u64) {
        match self {
            Column::U32(c) => c.push(v as u32),
            Column::U64(c) => c.push(v),
            _ => panic!("push_int on a string column"),
        }
    }

    /// Push a string (only for `Str`/`LowCard`).
    pub fn push_str(&mut self, v: &str) {
        match self {
            Column::Str(c) => c.push(v.to_string()),
            Column::LowCard { dict, index, codes } => {
                let code = match index.get(v) {
                    Some(c) => *c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(v.to_string());
                        index.insert(v.to_string(), c);
                        c
                    }
                };
                codes.push(code);
            }
            _ => panic!("push_str on an integer column"),
        }
    }

    /// Rows stored.
    pub fn len(&self) -> usize {
        match self {
            Column::U32(c) => c.len(),
            Column::U64(c) => c.len(),
            Column::Str(c) => c.len(),
            Column::LowCard { codes, .. } => codes.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident memory estimate.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::U32(c) => c.capacity() * 4,
            Column::U64(c) => c.capacity() * 8,
            Column::Str(c) => {
                c.capacity() * std::mem::size_of::<String>()
                    + c.iter().map(|s| s.capacity()).sum::<usize>()
            }
            Column::LowCard { dict, index, codes } => {
                codes.capacity() * 4
                    + dict.capacity() * std::mem::size_of::<String>()
                    + dict.iter().map(|s| s.capacity()).sum::<usize>()
                    // HashMap entry ≈ key String header + heap + bucket slot
                    + index.capacity()
                        * (std::mem::size_of::<String>() + 4 + 16)
                    + index.keys().map(|s| s.capacity()).sum::<usize>()
            }
        }
    }

    /// Serialise to the on-disk byte format.
    pub fn to_disk(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Column::U32(c) => {
                out.push(0u8);
                out.extend_from_slice(&(c.len() as u64).to_le_bytes());
                for v in c {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::U64(c) => {
                out.push(1u8);
                out.extend_from_slice(&(c.len() as u64).to_le_bytes());
                for v in c {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::Str(c) => {
                out.push(2u8);
                out.extend_from_slice(&(c.len() as u64).to_le_bytes());
                for s in c {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
            Column::LowCard { dict, codes, .. } => {
                out.push(3u8);
                out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
                for s in dict {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                out.extend_from_slice(&(codes.len() as u64).to_le_bytes());
                // Code width adapts to dictionary size, like ClickHouse.
                if dict.len() <= u8::MAX as usize + 1 {
                    out.push(1);
                    for c in codes {
                        out.push(*c as u8);
                    }
                } else if dict.len() <= u16::MAX as usize + 1 {
                    out.push(2);
                    for c in codes {
                        out.extend_from_slice(&(*c as u16).to_le_bytes());
                    }
                } else {
                    out.push(4);
                    for c in codes {
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Deserialise from the on-disk byte format.
    pub fn from_disk(buf: &[u8]) -> Option<(Column, usize)> {
        let tag = *buf.first()?;
        let mut off = 1usize;
        let read_u64 = |buf: &[u8], off: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(buf.get(*off..*off + 8)?.try_into().ok()?);
            *off += 8;
            Some(v)
        };
        match tag {
            0 => {
                let n = read_u64(buf, &mut off)? as usize;
                let mut c = Vec::with_capacity(n);
                for _ in 0..n {
                    c.push(u32::from_le_bytes(buf.get(off..off + 4)?.try_into().ok()?));
                    off += 4;
                }
                Some((Column::U32(c), off))
            }
            1 => {
                let n = read_u64(buf, &mut off)? as usize;
                let mut c = Vec::with_capacity(n);
                for _ in 0..n {
                    c.push(u64::from_le_bytes(buf.get(off..off + 8)?.try_into().ok()?));
                    off += 8;
                }
                Some((Column::U64(c), off))
            }
            2 => {
                let n = read_u64(buf, &mut off)? as usize;
                let mut c = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = u32::from_le_bytes(buf.get(off..off + 4)?.try_into().ok()?) as usize;
                    off += 4;
                    let s = std::str::from_utf8(buf.get(off..off + len)?).ok()?;
                    off += len;
                    c.push(s.to_string());
                }
                Some((Column::Str(c), off))
            }
            3 => {
                let dn = read_u64(buf, &mut off)? as usize;
                let mut dict = Vec::with_capacity(dn);
                for _ in 0..dn {
                    let len = u32::from_le_bytes(buf.get(off..off + 4)?.try_into().ok()?) as usize;
                    off += 4;
                    let s = std::str::from_utf8(buf.get(off..off + len)?).ok()?;
                    off += len;
                    dict.push(s.to_string());
                }
                let cn = read_u64(buf, &mut off)? as usize;
                let width = *buf.get(off)?;
                off += 1;
                let mut codes = Vec::with_capacity(cn);
                for _ in 0..cn {
                    let code = match width {
                        1 => {
                            let v = u32::from(*buf.get(off)?);
                            off += 1;
                            v
                        }
                        2 => {
                            let v = u32::from(u16::from_le_bytes(
                                buf.get(off..off + 2)?.try_into().ok()?,
                            ));
                            off += 2;
                            v
                        }
                        _ => {
                            let v = u32::from_le_bytes(buf.get(off..off + 4)?.try_into().ok()?);
                            off += 4;
                            v
                        }
                    };
                    codes.push(code);
                }
                let index = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.clone(), i as u32))
                    .collect();
                Some((Column::LowCard { dict, index, codes }, off))
            }
            _ => None,
        }
    }

    /// Read row `i` as a display string (for query results).
    pub fn get_display(&self, i: usize) -> Option<String> {
        match self {
            Column::U32(c) => c.get(i).map(u32::to_string),
            Column::U64(c) => c.get(i).map(u64::to_string),
            Column::Str(c) => c.get(i).cloned(),
            Column::LowCard { dict, codes, .. } => codes
                .get(i)
                .and_then(|code| dict.get(*code as usize))
                .cloned(),
        }
    }

    /// Full statistics.
    pub fn stats(&self) -> ColumnStats {
        ColumnStats {
            rows: self.len(),
            memory_bytes: self.memory_bytes(),
            disk_bytes: self.to_disk().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_columns_round_trip() {
        let mut c = Column::U32(Vec::new());
        for v in [1u64, 2, 3, u32::MAX as u64] {
            c.push_int(v);
        }
        let disk = c.to_disk();
        let (back, used) = Column::from_disk(&disk).unwrap();
        assert_eq!(used, disk.len());
        assert_eq!(back.get_display(3), Some(u32::MAX.to_string()));
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn str_column_round_trip() {
        let mut c = Column::Str(Vec::new());
        c.push_str("pod-a");
        c.push_str("pod-b");
        let disk = c.to_disk();
        let (back, _) = Column::from_disk(&disk).unwrap();
        assert_eq!(back.get_display(1), Some("pod-b".to_string()));
    }

    #[test]
    fn lowcard_deduplicates_and_round_trips() {
        let mut c = Column::new_lowcard();
        for _ in 0..1000 {
            c.push_str("prod-cluster");
            c.push_str("stage-cluster");
        }
        let Column::LowCard { dict, codes, .. } = &c else {
            unreachable!()
        };
        assert_eq!(dict.len(), 2);
        assert_eq!(codes.len(), 2000);
        let disk = c.to_disk();
        let (back, _) = Column::from_disk(&disk).unwrap();
        assert_eq!(back.get_display(0), Some("prod-cluster".to_string()));
        assert_eq!(back.get_display(1), Some("stage-cluster".to_string()));
    }

    #[test]
    fn lowcard_disk_is_smaller_than_plain_for_repetitive_data() {
        let mut plain = Column::Str(Vec::new());
        let mut lc = Column::new_lowcard();
        for i in 0..10_000 {
            let v = format!("value-{}", i % 10);
            plain.push_str(&v);
            lc.push_str(&v);
        }
        assert!(
            lc.to_disk().len() < plain.to_disk().len() / 4,
            "lowcard {} vs plain {}",
            lc.to_disk().len(),
            plain.to_disk().len()
        );
    }

    #[test]
    fn smart_int_disk_is_smaller_than_lowcard_for_high_cardinality() {
        // High-cardinality tags (e.g. pod ids in a big cluster) defeat
        // dictionary encoding — the paper's reason smart-encoding wins.
        let mut smart = Column::U32(Vec::new());
        let mut lc = Column::new_lowcard();
        for i in 0..10_000u32 {
            smart.push_int(u64::from(i));
            lc.push_str(&format!("pod-name-with-long-suffix-{i}"));
        }
        assert!(smart.to_disk().len() < lc.to_disk().len() / 3);
        assert!(smart.memory_bytes() < lc.memory_bytes() / 3);
    }

    #[test]
    fn lowcard_code_width_grows_with_dictionary() {
        let mut small = Column::new_lowcard();
        for i in 0..100 {
            small.push_str(&format!("v{}", i % 10));
        }
        let mut big = Column::new_lowcard();
        for i in 0..1000 {
            big.push_str(&format!("v{i}"));
        }
        // 10-entry dict → 1-byte codes; 1000-entry dict → 2-byte codes.
        let (sb, bb) = (small.to_disk(), big.to_disk());
        let (s, _) = Column::from_disk(&sb).unwrap();
        let (b, _) = Column::from_disk(&bb).unwrap();
        assert_eq!(s.len(), 100);
        assert_eq!(b.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "push_int on a string column")]
    fn type_confusion_panics() {
        let mut c = Column::Str(Vec::new());
        c.push_int(1);
    }

    #[test]
    fn from_disk_rejects_garbage() {
        assert!(Column::from_disk(&[]).is_none());
        assert!(Column::from_disk(&[9, 0, 0]).is_none());
        assert!(Column::from_disk(&[0, 1, 0, 0, 0, 0, 0, 0, 0, 1]).is_none()); // truncated
    }
}
