//! Sharding policy for a partitioned span corpus.
//!
//! The paper's deployment stores spans from many nodes in a ClickHouse
//! cluster; this crate's [`SpanStore`](crate::SpanStore) is the single-node
//! analogue. To scale the corpus past one store, the server partitions it
//! into shards and [`ShardPolicy`] decides, per span, which shard owns it:
//!
//! * **Routing key** — the hash of the span's *canonical* flow five-tuple
//!   (FNV-1a over addresses, ports, protocol). Both directions of a
//!   connection canonicalise to the same tuple, and every capture point of
//!   one exchange observes the same flow, so the whole capture ladder of an
//!   exchange lands in one shard — the common-case probe during assembly
//!   stays shard-local. Spans without flow identity (an all-zero tuple,
//!   e.g. third-party app spans imported without network context) fall back
//!   to a span-id hash so they still spread evenly.
//! * **Time buckets** — [`ShardPolicy::bucket_of`] quantises a timestamp
//!   into a routing-table bucket. The sharded store keeps, per bucket, the
//!   set of shards holding spans in that bucket (so time-windowed queries
//!   skip shards with no data in the window) and a *generation counter*
//!   that the incremental trace cache uses for invalidation.
//! * **Eviction threshold** — how many tombstoned rows a shard accumulates
//!   before its association indexes are compacted
//!   ([`SpanStore::evict_tombstoned`](crate::SpanStore::evict_tombstoned)).

use crate::bufferpool::BufferPoolConfig;
use df_types::{DurationNs, Span, TimeNs};
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// How a sharded span corpus routes spans to shards.
///
/// # Examples
///
/// ```
/// use df_storage::ShardPolicy;
///
/// let policy = ShardPolicy::with_shards(4);
/// assert_eq!(policy.shards, 4);
/// // Bucketing quantises time into the routing-table granularity.
/// let b0 = policy.bucket_of(df_types::TimeNs::from_millis(10));
/// let b1 = policy.bucket_of(df_types::TimeNs::from_millis(990));
/// assert_eq!(b0, b1, "same 1 s default bucket");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Number of shards. One shard degrades to a plain [`crate::SpanStore`].
    pub shards: usize,
    /// Granularity of the time-bucketed routing table (and of trace-cache
    /// invalidation).
    pub time_bucket: DurationNs,
    /// Tombstoned-row count at which a shard's association indexes are
    /// compacted (see [`crate::SpanStore::evict_tombstoned`]).
    pub evict_threshold: usize,
    /// Soft cap on rows per shard. When the preferred shard is full the
    /// router *clamps*: the span is routed to the least-loaded shard
    /// instead (and the owner counts the clamp) rather than panicking or
    /// overflowing the `u32` row space the routing table addresses rows
    /// with. Defaults to the full `u32` row space; tests shrink it to
    /// exercise the clamp path.
    pub max_shard_rows: usize,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            shards: 4,
            time_bucket: DurationNs::from_secs(1),
            evict_threshold: 4096,
            max_shard_rows: u32::MAX as usize,
        }
    }
}

impl ShardPolicy {
    /// A single-shard policy (behaviourally a plain [`crate::SpanStore`]).
    pub fn single() -> Self {
        Self::with_shards(1)
    }

    /// Default policy with `shards` shards (at least one).
    pub fn with_shards(shards: usize) -> Self {
        ShardPolicy {
            shards: shards.max(1),
            ..Default::default()
        }
    }

    /// The shard owning `span`: hash of the canonical flow five-tuple, so
    /// every capture point of an exchange routes identically; spans with no
    /// flow identity hash their id instead.
    pub fn route(&self, span: &Span) -> usize {
        let t = span.five_tuple.canonical();
        let zero = Ipv4Addr::new(0, 0, 0, 0);
        let h = if t.src_ip == zero && t.dst_ip == zero && t.src_port == 0 && t.dst_port == 0 {
            fnv1a(&span.span_id.raw().to_le_bytes())
        } else {
            let mut bytes = [0u8; 13];
            bytes[0..4].copy_from_slice(&t.src_ip.octets());
            bytes[4..8].copy_from_slice(&t.dst_ip.octets());
            bytes[8..10].copy_from_slice(&t.src_port.to_le_bytes());
            bytes[10..12].copy_from_slice(&t.dst_port.to_le_bytes());
            bytes[12] = t.protocol as u8;
            fnv1a(&bytes)
        };
        (h % self.shards as u64) as usize
    }

    /// The routing-table time bucket containing `t`.
    pub fn bucket_of(&self, t: TimeNs) -> u64 {
        t.slot(self.time_bucket)
    }
}

/// How a sharded corpus tiers spans between RAM and disk.
///
/// One [`crate::BufferPool`] (and so one frame budget and one background
/// disk scheduler) is shared by every shard; `dir` is where the spilled
/// segment files live, and `hot_buckets` is the spill horizon: buckets
/// older than the newest `hot_buckets` buckets are eligible to spill.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Directory holding this store's segment files.
    pub dir: PathBuf,
    /// Buffer-pool sizing and replacement policy.
    pub pool: BufferPoolConfig,
    /// How many of the most recent time buckets stay hot under
    /// automatic spilling (at least 1 — the bucket currently being
    /// ingested never spills).
    pub hot_buckets: u64,
}

impl TierConfig {
    /// Tiering into `dir` with default pool sizing and a 4-bucket hot
    /// horizon.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TierConfig {
            dir: dir.into(),
            pool: BufferPoolConfig::default(),
            hot_buckets: 4,
        }
    }

    /// Replace the pool config.
    pub fn with_pool(mut self, pool: BufferPoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Replace the hot-bucket horizon (clamped to at least 1).
    pub fn with_hot_buckets(mut self, hot_buckets: u64) -> Self {
        self.hot_buckets = hot_buckets.max(1);
        self
    }
}

/// FNV-1a: tiny, deterministic across processes (unlike `DefaultHasher`),
/// and good enough dispersion for shard routing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::ids::{AgentId, FlowId, NodeId, SpanId};
    use df_types::l7::L7Protocol;
    use df_types::net::FiveTuple;
    use df_types::span::{CapturePoint, SpanKind, SpanStatus, TapSide};
    use df_types::tags::TagSet;

    fn span_with_tuple(t: FiveTuple) -> Span {
        Span {
            span_id: SpanId(7),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: TapSide::ClientProcess,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: t,
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".into(),
            req_time: TimeNs(0),
            resp_time: TimeNs(1),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 0,
            resp_bytes: 0,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    #[test]
    fn both_flow_directions_route_to_the_same_shard() {
        let p = ShardPolicy::with_shards(16);
        let fwd = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let a = p.route(&span_with_tuple(fwd));
        let b = p.route(&span_with_tuple(fwd.reversed()));
        assert_eq!(a, b);
        assert!(a < 16);
    }

    #[test]
    fn flowless_spans_spread_by_span_id() {
        let p = ShardPolicy::with_shards(16);
        let zero = FiveTuple::tcp(Ipv4Addr::new(0, 0, 0, 0), 0, Ipv4Addr::new(0, 0, 0, 0), 0);
        let mut shards = std::collections::HashSet::new();
        for id in 1..64u64 {
            let mut s = span_with_tuple(zero);
            s.span_id = SpanId(id);
            shards.insert(p.route(&s));
        }
        assert!(shards.len() > 4, "span-id fallback disperses: {shards:?}");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardPolicy::with_shards(0).shards, 1);
    }

    #[test]
    fn routing_spreads_distinct_flows() {
        let p = ShardPolicy::with_shards(8);
        let mut shards = std::collections::HashSet::new();
        for i in 0..64u16 {
            let t = FiveTuple::tcp(
                Ipv4Addr::new(10, 0, (i / 8) as u8, (i % 8) as u8),
                40000 + i,
                Ipv4Addr::new(10, 1, 0, 1),
                80,
            );
            shards.insert(p.route(&span_with_tuple(t)));
        }
        assert!(
            shards.len() >= 6,
            "64 flows hit most of 8 shards: {shards:?}"
        );
    }
}
