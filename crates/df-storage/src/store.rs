//! The span store the server runs Algorithm 1 against.
//!
//! Row-oriented storage of [`Span`]s plus hash indexes over every
//! implicit-context attribute (systrace ids, pseudo-thread ids,
//! X-Request-IDs, TCP sequences, third-party trace ids) and a time index
//! for span-list queries. Algorithm 1's `search_database(filter)` (line 12)
//! resolves to one index probe per attribute value — which is what makes
//! the iterative search terminate in interactive time (Fig. 15).
//!
//! Probes return borrowed row slices (`&[u32]`) so the assembly hot loop
//! never allocates per probe. The time index lives behind a mutex and is
//! sorted lazily, so `query` works through a shared reference: read paths
//! (span list, trace assembly) never need `&mut SpanStore`, and batch
//! ingest ([`SpanStore::insert_batch`]) defers the sort cost to the next
//! query instead of paying it per span.
//!
//! # Hot/cold tiering
//!
//! A row is either **hot** (the [`Span`] lives inline) or **cold** (the
//! span was spilled to a disk segment by [`SpanStore::spill_before`] and
//! only a [`ColdRef`] — segment id, in-segment offset, span id, request
//! time — remains resident). Everything that needs the full span goes
//! through [`SpanStore::span_at`], which returns a `Cow`: borrowed for
//! hot rows (the zero-copy fast path is unchanged), owned for cold rows
//! (a page-in through the shared [`BufferPool`]). The association and
//! time indexes keep cold rows, so `find_by_*` probes and time-window
//! scans are tier-blind; only *materialising* a cold row costs a pool
//! fetch. Spill never reorders, renumbers, or drops rows — it is
//! extensionally invisible to assembly, which the tiered differential
//! proptests pin down.

use crate::bufferpool::{BufferPool, SegmentId};
use crate::persist;
use crate::shard::ShardPolicy;
use df_check::sync::{Arc, Mutex};
use df_types::{Span, SpanId, TimeNs};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::Path;

/// A span-list query (the Fig. 15 "span list" request).
#[derive(Debug, Clone, Default)]
pub struct SpanQuery {
    /// Inclusive start of the time window.
    pub from: Option<TimeNs>,
    /// Exclusive end of the time window.
    pub to: Option<TimeNs>,
    /// Only error spans.
    pub errors_only: bool,
    /// Only spans of this endpoint.
    pub endpoint: Option<String>,
    /// Only spans observed by this pod (smart-encoded pod id).
    pub pod_id: Option<u32>,
    /// Result cap.
    pub limit: usize,
}

impl SpanQuery {
    /// Query a `[from, to)` window.
    pub fn window(from: TimeNs, to: TimeNs) -> Self {
        SpanQuery {
            from: Some(from),
            to: Some(to),
            limit: usize::MAX,
            ..Default::default()
        }
    }

    fn matches(&self, span: &Span) -> bool {
        if let Some(f) = self.from {
            if span.req_time < f {
                return false;
            }
        }
        if let Some(t) = self.to {
            if span.req_time >= t {
                return false;
            }
        }
        if self.errors_only && !span.status.is_error() {
            return false;
        }
        if let Some(ep) = &self.endpoint {
            if &span.endpoint != ep {
                return false;
            }
        }
        if let Some(pod) = self.pod_id {
            if span.tags.resource.pod_id != Some(pod) {
                return false;
            }
        }
        true
    }
}

/// Store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Spans stored.
    pub spans: usize,
    /// Total index entries.
    pub index_entries: usize,
}

/// `(req_time_ns, row)` pairs, appended on ingest and sorted lazily at the
/// next query. Lives behind a mutex so queries can sort through `&self`.
#[derive(Debug)]
struct TimeIndex {
    entries: Vec<(u64, u32)>,
    sorted: bool,
}

impl Default for TimeIndex {
    fn default() -> Self {
        TimeIndex {
            entries: Vec::new(),
            sorted: true,
        }
    }
}

/// Resident stub of a spilled span: enough to route probes (id, request
/// time) without touching disk, plus the address of the full span in the
/// cold tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdRef {
    /// Segment holding the span.
    pub segment: SegmentId,
    /// Offset of the span within the segment's span section.
    pub offset: u32,
    /// The span's id (kept resident so tombstone checks never page in).
    pub span_id: SpanId,
    /// The span's request time (kept resident for bucket accounting).
    pub req_time: TimeNs,
}

/// One row slot: the span inline, or a cold stub.
#[derive(Debug, Clone)]
enum RowSlot {
    Hot(Box<Span>),
    Cold(ColdRef),
}

/// What one [`SpanStore::spill_before`] call moved to the cold tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Segments written.
    pub segments: usize,
    /// Spans flipped cold.
    pub spans: usize,
    /// Encoded segment bytes written.
    pub bytes: u64,
}

impl SpillStats {
    /// Fold another spill's counts into this one.
    pub fn merge(&mut self, other: SpillStats) {
        self.segments += other.segments;
        self.spans += other.spans;
        self.bytes += other.bytes;
    }
}

/// What one [`SpanStore::recover_cold_segments`] call rebuilt from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverStats {
    /// Segment files re-registered.
    pub segments: usize,
    /// Candidate files rejected (bad header, torn body) — counted, never
    /// panicked over.
    pub rejected_segments: usize,
    /// Rows rebuilt as cold slots (the contiguous prefix from row 0).
    pub rows: usize,
    /// Spilled rows beyond the first row gap, unusable until the gap is
    /// backfilled — left out of the store (anti-entropy re-pulls them).
    pub orphan_rows: usize,
}

impl RecoverStats {
    /// Fold another recovery's counts into this one.
    pub fn merge(&mut self, other: RecoverStats) {
        self.segments += other.segments;
        self.rejected_segments += other.rejected_segments;
        self.rows += other.rows;
        self.orphan_rows += other.orphan_rows;
    }
}

/// The span store.
///
/// Ids come in two regimes. A store used standalone assigns its own ids
/// ([`SpanStore::insert`]): id = row + 1, so [`SpanStore::id_at`] and
/// [`SpanStore::get`] translate for free. A store embedded as one shard of
/// a sharded corpus receives spans whose (globally unique) ids were
/// assigned by the owner ([`SpanStore::insert_routed`]); the owner keeps
/// the id → (shard, row) map and talks to the shard in row terms
/// ([`SpanStore::get_row`], [`SpanStore::tombstone_row`],
/// [`SpanStore::complete_span_row`]). The two regimes must not be mixed in
/// one store.
#[derive(Debug, Default)]
pub struct SpanStore {
    /// Row slots: hot spans are boxed so a cold slot costs only the
    /// [`ColdRef`] stub, not a full `Span` footprint.
    rows: Vec<RowSlot>,
    /// Pool that pages cold rows back in; set lazily by the first spill
    /// (or by the sharded owner, which shares one pool across shards).
    cold_reader: Option<Arc<BufferPool>>,
    /// How many rows are currently cold.
    cold_count: usize,
    by_systrace: HashMap<u64, Vec<u32>>,
    by_pseudo_thread: HashMap<u64, Vec<u32>>,
    by_x_request: HashMap<u128, Vec<u32>>,
    by_tcp_seq: HashMap<u32, Vec<u32>>,
    by_otel_trace: HashMap<u128, Vec<u32>>,
    time_index: Mutex<TimeIndex>,
    /// Spans consumed by server-side re-aggregation; hidden from queries.
    tombstones: std::collections::HashSet<SpanId>,
    /// Tombstoned rows whose index entries have not been compacted away
    /// yet (drained by [`SpanStore::evict_tombstoned`]).
    pending_evict: Vec<u32>,
}

const EMPTY_ROWS: &[u32] = &[];

impl SpanStore {
    /// Empty store.
    pub fn new() -> Self {
        SpanStore::default()
    }

    /// The span id stored at a given row.
    pub fn id_at(row: u32) -> SpanId {
        SpanId(u64::from(row) + 1)
    }

    /// Fetch a **hot** row by index. Returns `None` for out-of-range rows
    /// *and* for rows spilled to the cold tier — tier-aware callers want
    /// [`SpanStore::span_at`], which pages cold rows back in.
    pub fn get_row(&self, row: u32) -> Option<&Span> {
        match self.rows.get(row as usize)? {
            RowSlot::Hot(s) => Some(s),
            RowSlot::Cold(_) => None,
        }
    }

    /// Fetch any row by index, paging it in from the cold tier if needed:
    /// borrowed (zero-copy) for hot rows, owned for cold ones.
    ///
    /// Panics if the row is cold and no cold reader is attached, or if
    /// the cold segment is unreadable — a spilled row must be
    /// recoverable; fabricating an absence would corrupt assembly.
    pub fn span_at(&self, row: u32) -> Option<Cow<'_, Span>> {
        match self.rows.get(row as usize)? {
            RowSlot::Hot(s) => Some(Cow::Borrowed(&**s)),
            RowSlot::Cold(c) => {
                let pool = self
                    .cold_reader
                    .as_ref()
                    .expect("cold rows require an attached cold reader");
                Some(Cow::Owned(pool.read_span(c.segment, c.offset)))
            }
        }
    }

    /// The span id stored at `row`, whatever its tier. Cold rows keep the
    /// id resident, so this never pages in — it is the probe-path filter
    /// (tombstones, dedup) that must stay cheap.
    pub fn stored_id(&self, row: u32) -> Option<SpanId> {
        match self.rows.get(row as usize)? {
            RowSlot::Hot(s) => Some(s.span_id),
            RowSlot::Cold(c) => Some(c.span_id),
        }
    }

    /// The request time stored at `row`, whatever its tier; never pages
    /// in (bucket accounting on the ingest path must stay cheap).
    pub fn req_time_at(&self, row: u32) -> Option<TimeNs> {
        match self.rows.get(row as usize)? {
            RowSlot::Hot(s) => Some(s.req_time),
            RowSlot::Cold(c) => Some(c.req_time),
        }
    }

    /// Number of rows currently hot (span resident inline).
    pub fn hot_rows(&self) -> usize {
        self.rows.len() - self.cold_count
    }

    /// Number of rows spilled to the cold tier.
    pub fn cold_rows(&self) -> usize {
        self.cold_count
    }

    /// Attach the buffer pool that pages this store's cold rows. The
    /// sharded owner shares one pool across shards so the frame budget is
    /// global.
    pub fn set_cold_reader(&mut self, pool: Arc<BufferPool>) {
        self.cold_reader = Some(pool);
    }

    /// Merge a late response's attributes into an incomplete span —
    /// server-side re-aggregation (§3.3.1). Updates the association
    /// indexes for the newly known response-side attributes, skipping
    /// values the request side already indexed (same dedup `insert`
    /// applies, so a span never appears twice in one index bucket).
    pub fn complete_span(&mut self, id: SpanId, resp: &Span) -> bool {
        let Some(row) = id.raw().checked_sub(1) else {
            return false;
        };
        let row = row as u32;
        if self.stored_id(row) != Some(id) {
            return false;
        }
        self.complete_span_row(row, resp)
    }

    /// Row-addressed [`SpanStore::complete_span`] for stores whose ids were
    /// assigned externally (see the type-level docs on id regimes).
    pub fn complete_span_row(&mut self, row: u32, resp: &Span) -> bool {
        // Cold rows are never completable: spill skips Incomplete spans
        // precisely so a late response can always find its request hot.
        let Some(RowSlot::Hot(span)) = self.rows.get_mut(row as usize) else {
            return false;
        };
        if span.status != df_types::span::SpanStatus::Incomplete {
            return false;
        }
        span.resp_time = resp.resp_time;
        span.status = match resp.status_code {
            Some(code) if (400..500).contains(&code) => df_types::span::SpanStatus::ClientError,
            Some(code) if code >= 500 => df_types::span::SpanStatus::ServerError,
            _ => df_types::span::SpanStatus::Ok,
        };
        span.status_code = resp.status_code;
        span.resp_bytes = resp.resp_bytes;
        span.systrace_id_resp = resp.systrace_id_resp;
        span.x_request_id_resp = resp.x_request_id_resp;
        span.tcp_seq_resp = resp.tcp_seq_resp;
        // Index the new response-side attributes, deduplicated against the
        // request-side values this row is already indexed under.
        let systrace_req = span.systrace_id_req;
        let x_request_req = span.x_request_id_req;
        let tcp_seq_req = span.tcp_seq_req;
        if let Some(v) = resp.systrace_id_resp {
            if Some(v) != systrace_req {
                self.by_systrace.entry(v.raw()).or_default().push(row);
            }
        }
        if let Some(v) = resp.x_request_id_resp {
            if Some(v) != x_request_req {
                self.by_x_request.entry(v.0).or_default().push(row);
            }
        }
        if let Some(v) = resp.tcp_seq_resp {
            if Some(v) != tcp_seq_req {
                self.by_tcp_seq.entry(v).or_default().push(row);
            }
        }
        true
    }

    /// Hide a span from queries (its content was merged elsewhere). The
    /// row is remembered for the next [`SpanStore::evict_tombstoned`]
    /// compaction.
    pub fn tombstone(&mut self, id: SpanId) {
        if let Some(row) = id.raw().checked_sub(1) {
            let row = row as u32;
            if self.stored_id(row) == Some(id) {
                self.tombstone_row(row);
                return;
            }
        }
        // Unknown id: hide it anyway (idempotent), nothing to evict.
        self.tombstones.insert(id);
    }

    /// Row-addressed [`SpanStore::tombstone`] for stores whose ids were
    /// assigned externally (see the type-level docs on id regimes).
    pub fn tombstone_row(&mut self, row: u32) {
        let Some(id) = self.stored_id(row) else {
            return;
        };
        if self.tombstones.insert(id) {
            self.pending_evict.push(row);
        }
    }

    /// Whether a span is tombstoned.
    pub fn is_tombstoned(&self, id: SpanId) -> bool {
        self.tombstones.contains(&id)
    }

    /// Tombstoned rows whose index entries are still awaiting compaction.
    pub fn pending_evictions(&self) -> usize {
        self.pending_evict.len()
    }

    /// Compact tombstoned rows out of the association and time indexes, so
    /// `find_by_*` probes stop returning (and paying for) rows that every
    /// read path would filter anyway. Invoked by the server after
    /// re-aggregation and by the sharded store when a shard crosses its
    /// [`crate::ShardPolicy::evict_threshold`]. Semantically a no-op:
    /// assembly and queries filter tombstones at probe time either way —
    /// the property tests assert eviction never changes an assembled
    /// trace. Returns the number of index entries removed.
    pub fn evict_tombstoned(&mut self) -> usize {
        if self.pending_evict.is_empty() {
            return 0;
        }
        let rows = std::mem::take(&mut self.pending_evict);
        let mut removed = 0usize;
        for &row in &rows {
            // Copy out the (small) key fields so the index maps stay
            // mutably borrowable. A cold row pages in here — eviction is
            // a background compaction, so the page-in cost is off the
            // ingest/probe paths.
            let s = {
                let s = self.span_at(row).expect("pending-evict row exists");
                (
                    s.systrace_id_req,
                    s.systrace_id_resp,
                    s.pseudo_thread_id,
                    s.x_request_id_req,
                    s.x_request_id_resp,
                    s.tcp_seq_req,
                    s.tcp_seq_resp,
                    s.otel_trace_id,
                )
            };
            let (sys_r, sys_p, pth, xr_r, xr_p, seq_r, seq_p, otel) = s;
            for v in [sys_r, sys_p].into_iter().flatten() {
                removed += Self::evict_entry(&mut self.by_systrace, v.raw(), row);
            }
            if let Some(p) = pth {
                removed += Self::evict_entry(&mut self.by_pseudo_thread, p.raw(), row);
            }
            for v in [xr_r, xr_p].into_iter().flatten() {
                removed += Self::evict_entry(&mut self.by_x_request, v.0, row);
            }
            for v in [seq_r, seq_p].into_iter().flatten() {
                removed += Self::evict_entry(&mut self.by_tcp_seq, v, row);
            }
            if let Some(t) = otel {
                removed += Self::evict_entry(&mut self.by_otel_trace, t.0, row);
            }
        }
        let dead: std::collections::HashSet<u32> = rows.into_iter().collect();
        let idx = self.time_index.get_mut().expect("time index lock poisoned");
        idx.entries.retain(|&(_, row)| !dead.contains(&row));
        removed
    }

    /// Remove every occurrence of `row` from the bucket at `key`, dropping
    /// the bucket when it empties. Returns how many entries were removed.
    fn evict_entry<K: std::hash::Hash + Eq>(
        index: &mut HashMap<K, Vec<u32>>,
        key: K,
        row: u32,
    ) -> usize {
        let Some(bucket) = index.get_mut(&key) else {
            return 0;
        };
        let before = bucket.len();
        bucket.retain(|&r| r != row);
        let removed = before - bucket.len();
        if bucket.is_empty() {
            index.remove(&key);
        }
        removed
    }

    /// Insert a span, assigning its id. Returns the id.
    pub fn insert(&mut self, span: Span) -> SpanId {
        self.insert_unsynced(span)
    }

    /// Insert a span that already carries an externally assigned id (one
    /// shard of a sharded corpus — the owner maps that id to the returned
    /// row). The span is indexed exactly like [`SpanStore::insert`]; only
    /// id assignment is skipped.
    pub fn insert_routed(&mut self, span: Span) -> u32 {
        let row = self.rows.len() as u32;
        self.index_and_push(span);
        row
    }

    /// Bulk [`SpanStore::insert_routed`]: append a whole routed batch (what
    /// one per-shard ingest worker drains from its queue per message),
    /// reserving row and time-index capacity once. Returns the row of the
    /// first appended span; rows are contiguous from there, which is the
    /// contract the sharded routing table relies on.
    pub fn insert_routed_batch(&mut self, spans: Vec<Span>) -> u32 {
        let first = self.rows.len() as u32;
        self.rows.reserve(spans.len());
        self.time_index
            .get_mut()
            .expect("time index lock poisoned")
            .entries
            .reserve(spans.len());
        for span in spans {
            self.index_and_push(span);
        }
        first
    }

    /// Insert a batch (what an agent ships per flush). Index maintenance is
    /// append-only here; the time index is re-sorted lazily by the next
    /// query, so ingest cost doesn't scale with query-side ordering.
    pub fn insert_batch(&mut self, spans: Vec<Span>) -> Vec<SpanId> {
        let mut ids = Vec::with_capacity(spans.len());
        self.rows.reserve(spans.len());
        self.time_index
            .get_mut()
            .expect("time index lock poisoned")
            .entries
            .reserve(spans.len());
        for span in spans {
            ids.push(self.insert_unsynced(span));
        }
        ids
    }

    fn insert_unsynced(&mut self, mut span: Span) -> SpanId {
        let id = Self::id_at(self.rows.len() as u32);
        span.span_id = id;
        self.index_and_push(span);
        id
    }

    /// Index every association attribute of `span` and append it, keeping
    /// whatever `span_id` it carries.
    fn index_and_push(&mut self, span: Span) {
        let row = self.rows.len() as u32;
        self.index_attrs(&span, row);
        self.push_time_entry(span.req_time.as_nanos(), row);
        self.rows.push(RowSlot::Hot(Box::new(span)));
    }

    /// Association-index maintenance shared by hot ingest and crash
    /// recovery: one entry per attribute value, request/response
    /// duplicates collapsed.
    fn index_attrs(&mut self, span: &Span, row: u32) {
        if let Some(s) = span.systrace_id_req {
            self.by_systrace.entry(s.raw()).or_default().push(row);
        }
        if let Some(s) = span.systrace_id_resp {
            if Some(s) != span.systrace_id_req {
                self.by_systrace.entry(s.raw()).or_default().push(row);
            }
        }
        if let Some(p) = span.pseudo_thread_id {
            self.by_pseudo_thread.entry(p.raw()).or_default().push(row);
        }
        if let Some(x) = span.x_request_id_req {
            self.by_x_request.entry(x.0).or_default().push(row);
        }
        if let Some(x) = span.x_request_id_resp {
            if Some(x) != span.x_request_id_req {
                self.by_x_request.entry(x.0).or_default().push(row);
            }
        }
        if let Some(t) = span.tcp_seq_req {
            self.by_tcp_seq.entry(t).or_default().push(row);
        }
        if let Some(t) = span.tcp_seq_resp {
            if Some(t) != span.tcp_seq_req {
                self.by_tcp_seq.entry(t).or_default().push(row);
            }
        }
        if let Some(t) = span.otel_trace_id {
            self.by_otel_trace.entry(t.0).or_default().push(row);
        }
    }

    /// Append a time-index entry, tracking sortedness.
    fn push_time_entry(&mut self, ts: u64, row: u32) {
        let idx = self.time_index.get_mut().expect("time index lock poisoned");
        if let Some((last, _)) = idx.entries.last() {
            if *last > ts {
                idx.sorted = false;
            }
        }
        idx.entries.push((ts, row));
    }

    /// Fetch by id (tier-aware: cold spans page in).
    pub fn get(&self, id: SpanId) -> Option<Cow<'_, Span>> {
        let row = id.raw().checked_sub(1)?;
        self.span_at(u32::try_from(row).ok()?)
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Span-list query (time window + filters). Sorts the time index
    /// lazily under its lock, so concurrent readers share one sort.
    /// Tier-aware: the time index covers cold rows, which page in as
    /// they are materialised (tombstones are filtered by resident id
    /// first, so hidden cold rows cost nothing).
    pub fn query(&self, q: &SpanQuery) -> Vec<Cow<'_, Span>> {
        let mut idx = self.time_index.lock().expect("time index lock poisoned");
        if !idx.sorted {
            idx.entries.sort_unstable();
            idx.sorted = true;
        }
        let start = match q.from {
            Some(f) => idx.entries.partition_point(|(ts, _)| *ts < f.as_nanos()),
            None => 0,
        };
        let mut out = Vec::new();
        for &(ts, row) in &idx.entries[start..] {
            if let Some(t) = q.to {
                if ts >= t.as_nanos() {
                    break;
                }
            }
            let id = self.stored_id(row).expect("time-indexed row exists");
            if self.tombstones.contains(&id) {
                continue;
            }
            let span = self.span_at(row).expect("time-indexed row exists");
            if q.matches(&span) {
                out.push(span);
                if out.len() >= q.limit {
                    break;
                }
            }
        }
        out
    }

    /// Index probes — Algorithm 1's `search_database` primitives. Each
    /// returns the rows sharing the given attribute value, borrowed
    /// straight from the index (no per-probe allocation); map a row to its
    /// span with [`SpanStore::get_row`] / [`SpanStore::id_at`].
    pub fn find_by_systrace(&self, v: u64) -> &[u32] {
        Self::rows_of(self.by_systrace.get(&v))
    }

    /// Spans sharing a pseudo-thread id.
    pub fn find_by_pseudo_thread(&self, v: u64) -> &[u32] {
        Self::rows_of(self.by_pseudo_thread.get(&v))
    }

    /// Spans sharing an X-Request-ID.
    pub fn find_by_x_request(&self, v: u128) -> &[u32] {
        Self::rows_of(self.by_x_request.get(&v))
    }

    /// Spans sharing a TCP sequence number.
    pub fn find_by_tcp_seq(&self, v: u32) -> &[u32] {
        Self::rows_of(self.by_tcp_seq.get(&v))
    }

    /// Spans sharing a third-party trace id.
    pub fn find_by_otel_trace(&self, v: u128) -> &[u32] {
        Self::rows_of(self.by_otel_trace.get(&v))
    }

    fn rows_of(rows: Option<&Vec<u32>>) -> &[u32] {
        rows.map(Vec::as_slice).unwrap_or(EMPTY_ROWS)
    }

    /// Statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            spans: self.rows.len(),
            index_entries: self.by_systrace.values().map(Vec::len).sum::<usize>()
                + self.by_pseudo_thread.values().map(Vec::len).sum::<usize>()
                + self.by_x_request.values().map(Vec::len).sum::<usize>()
                + self.by_tcp_seq.values().map(Vec::len).sum::<usize>()
                + self.by_otel_trace.values().map(Vec::len).sum::<usize>(),
        }
    }

    /// Iterate all spans (diagnostics / persistence). Tier-aware: cold
    /// rows page in as the iterator reaches them.
    pub fn iter(&self) -> impl Iterator<Item = Cow<'_, Span>> {
        (0..self.rows.len() as u32).map(|row| self.span_at(row).expect("row in range"))
    }

    /// Spill every hot, completed span with `req_time < watermark` to
    /// disk, one segment per `policy` time bucket, flipping the rows cold.
    ///
    /// Ordering is the load-bearing part: every segment write is queued
    /// to the pool's background [`crate::disk_sched::DiskScheduler`] and
    /// **waited for** before any row flips Hot → Cold, so a reader that
    /// observes a cold slot can always page the bytes back in (the
    /// df-check page-out/page-in model test proves the inverted order
    /// serves stale rows). If any write fails, nothing flips — orphan
    /// segment files are harmless.
    ///
    /// Spill is content-neutral: indexes and row numbering are untouched,
    /// so probes, queries, and assembly see the same corpus (the tiered
    /// differential proptests pin this down). Incomplete spans stay hot
    /// so late responses can still merge ([`SpanStore::complete_span_row`]
    /// does not reach into the cold tier); tombstoned spans may spill —
    /// they are filtered by resident id either way.
    ///
    /// `shard` only namespaces the segment file names so shards sharing
    /// `dir` never collide.
    pub fn spill_before(
        &mut self,
        policy: &ShardPolicy,
        watermark: TimeNs,
        pool: &Arc<BufferPool>,
        dir: &Path,
        shard: u16,
    ) -> io::Result<SpillStats> {
        if self.cold_reader.is_none() {
            self.cold_reader = Some(Arc::clone(pool));
        }
        // Group spillable hot rows by time bucket (BTreeMap: segments
        // come out in bucket order, deterministically).
        let mut buckets: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (row, slot) in self.rows.iter().enumerate() {
            let RowSlot::Hot(span) = slot else {
                continue;
            };
            if span.req_time >= watermark || span.status == df_types::span::SpanStatus::Incomplete {
                continue;
            }
            buckets
                .entry(policy.bucket_of(span.req_time))
                .or_default()
                .push(row as u32);
        }
        if buckets.is_empty() {
            return Ok(SpillStats::default());
        }

        // Phase 1: encode and queue every segment write up front — the
        // encode of bucket n+1 overlaps the disk write of bucket n.
        let mut pending = Vec::with_capacity(buckets.len());
        let mut stats = SpillStats::default();
        for (bucket, rows) in buckets {
            let spans: Vec<Span> = rows
                .iter()
                .map(|&row| match &self.rows[row as usize] {
                    RowSlot::Hot(s) => (**s).clone(),
                    RowSlot::Cold(_) => unreachable!("grouped rows are hot"),
                })
                .collect();
            let segment = pool.alloc_segment();
            let path = dir.join(format!(
                "shard{shard:04}-b{bucket:012}-seg{segment:08}.dfspan"
            ));
            let bytes = persist::encode_span_segment(&spans, &rows);
            stats.bytes += bytes.len() as u64;
            let completion = pool.scheduler().write(path.clone(), bytes);
            pending.push((segment, path, rows, completion));
        }

        // Phase 2: wait for every write to be durably serviced. Nothing
        // has flipped yet, so a failure leaves the store fully hot.
        let mut written = Vec::with_capacity(pending.len());
        let mut failure: Option<io::Error> = None;
        for (segment, path, rows, completion) in pending {
            match completion.wait() {
                Ok(_) => written.push((segment, path, rows)),
                Err(e) => failure = Some(failure.unwrap_or(e)),
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }

        // Phase 3: writes are on disk — register the segments and flip
        // the rows cold. Only now can a reader observe a Cold slot.
        for (segment, path, rows) in written {
            pool.register(segment, path);
            for (offset, &row) in rows.iter().enumerate() {
                let slot = &mut self.rows[row as usize];
                let RowSlot::Hot(span) = slot else {
                    unreachable!("spilled rows are hot until the flip");
                };
                let cold = ColdRef {
                    segment,
                    offset: offset as u32,
                    span_id: span.span_id,
                    req_time: span.req_time,
                };
                *slot = RowSlot::Cold(cold);
                self.cold_count += 1;
                stats.spans += 1;
            }
            stats.segments += 1;
        }
        Ok(stats)
    }

    /// Crash recovery: rebuild this (empty) store from the DFSPANS1
    /// segments a previous incarnation spilled for `shard` under `dir`.
    ///
    /// The segment catalog scan validates every candidate file's header;
    /// corrupt or torn files are counted in
    /// [`RecoverStats::rejected_segments`] and skipped — recovery never
    /// panics on bad input. Each valid segment is read through the pool's
    /// disk scheduler, re-registered under a fresh [`SegmentId`], and its
    /// rows rebuilt as cold slots at their original row numbers. Only the
    /// contiguous prefix from row 0 is adopted (rows beyond a gap —
    /// possible if a middle bucket's segment was lost — are counted as
    /// orphans and left for anti-entropy to re-pull, keeping the
    /// row-contiguity contract the reorder buffer relies on). Association
    /// and time indexes are rebuilt from the decoded spans with the same
    /// logic as hot ingest, so probe results are identical to a store
    /// that never crashed.
    pub fn recover_cold_segments(
        &mut self,
        pool: &Arc<BufferPool>,
        dir: &Path,
        shard: u16,
    ) -> io::Result<RecoverStats> {
        assert!(
            self.is_empty(),
            "recovery rebuilds a fresh store; refusing to splice into live rows"
        );
        let scan = persist::scan_span_segments(dir, shard)?;
        let mut stats = RecoverStats {
            rejected_segments: scan.rejected,
            ..RecoverStats::default()
        };
        // Original row → (segment, offset, span). BTreeMap so the
        // contiguous-prefix walk below is ordered.
        let mut recovered: BTreeMap<u32, (SegmentId, u32, Span)> = BTreeMap::new();
        for found in scan.segments {
            let bytes = match pool.scheduler().read(found.path.clone()).wait() {
                Ok(bytes) => bytes,
                Err(_) => {
                    stats.rejected_segments += 1;
                    continue;
                }
            };
            let seg = match persist::decode_span_segment(&bytes) {
                Ok(seg) => seg,
                Err(_) => {
                    stats.rejected_segments += 1;
                    continue;
                }
            };
            let segment = pool.alloc_segment();
            pool.register(segment, found.path);
            stats.segments += 1;
            for (offset, (row, span)) in seg.rows.iter().copied().zip(seg.spans).enumerate() {
                recovered
                    .entry(row)
                    .or_insert((segment, offset as u32, span));
            }
        }
        // Adopt the contiguous prefix from row 0.
        let mut next = 0u32;
        for &row in recovered.keys() {
            if row == next {
                next += 1;
            } else {
                break;
            }
        }
        stats.orphan_rows = recovered.len() - next as usize;
        stats.rows = next as usize;
        for row in 0..next {
            let (segment, offset, span) = recovered.remove(&row).expect("row in prefix");
            let cold = ColdRef {
                segment,
                offset,
                span_id: span.span_id,
                req_time: span.req_time,
            };
            self.index_attrs(&span, row);
            self.push_time_entry(span.req_time.as_nanos(), row);
            self.rows.push(RowSlot::Cold(cold));
            self.cold_count += 1;
        }
        self.cold_reader = Some(Arc::clone(pool));
        Ok(stats)
    }
}

// Interior-mutability audit (the concurrent sharded store shares shards
// across threads): the only interior mutability in `SpanStore` is the
// lazily-sorted time index behind its `Mutex` — every other field is
// mutated through `&mut self` only. `SpanStore` is therefore `Send + Sync`
// by composition, and the concurrent store may hand `&SpanStore` to scoped
// probe threads while a worker thread owns the `&mut` side behind an
// `RwLock`. The assertion makes that load-bearing property a compile error
// to lose (e.g. by adding a `Cell` or `Rc` field).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpanStore>();
};

/// Row-addressed access for callers that know the row exists **and is
/// hot** (an untiered sharded store's routing table guarantees both).
/// Panics on an out-of-range or cold row — tier-aware callers use
/// [`SpanStore::span_at`].
impl std::ops::Index<u32> for SpanStore {
    type Output = Span;
    fn index(&self, row: u32) -> &Span {
        self.get_row(row).expect("routed row exists and is hot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::ids::*;
    use df_types::l7::L7Protocol;
    use df_types::net::FiveTuple;
    use df_types::span::{CapturePoint, SpanKind, SpanStatus, TapSide};
    use df_types::tags::TagSet;
    use std::net::Ipv4Addr;

    fn span(req_ns: u64) -> Span {
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: TapSide::ClientProcess,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".to_string(),
            req_time: TimeNs(req_ns),
            resp_time: TimeNs(req_ns + 1000),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 10,
            resp_bytes: 20,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    #[test]
    fn insert_assigns_sequential_ids_and_get_works() {
        let mut st = SpanStore::new();
        let a = st.insert(span(100));
        let b = st.insert(span(200));
        assert_eq!(a, SpanId(1));
        assert_eq!(b, SpanId(2));
        assert_eq!(st.get(a).unwrap().req_time, TimeNs(100));
        assert!(st.get(SpanId(99)).is_none());
        assert!(st.get(SpanId(0)).is_none());
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let mut a = SpanStore::new();
        let mut b = SpanStore::new();
        let spans: Vec<Span> = [500u64, 100, 300].iter().map(|&t| span(t)).collect();
        let batch_ids = a.insert_batch(spans.clone());
        let one_ids: Vec<SpanId> = spans.into_iter().map(|s| b.insert(s)).collect();
        assert_eq!(batch_ids, one_ids);
        assert_eq!(a.len(), b.len());
        let q = SpanQuery::window(TimeNs(0), TimeNs(1000));
        let ta: Vec<u64> = a.query(&q).iter().map(|s| s.req_time.as_nanos()).collect();
        let tb: Vec<u64> = b.query(&q).iter().map(|s| s.req_time.as_nanos()).collect();
        assert_eq!(ta, tb);
        assert_eq!(ta, vec![100, 300, 500]);
    }

    #[test]
    fn time_window_query() {
        let mut st = SpanStore::new();
        for t in [100u64, 200, 300, 400, 500] {
            st.insert(span(t));
        }
        let got = st.query(&SpanQuery::window(TimeNs(200), TimeNs(401)));
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|s| s.req_time >= TimeNs(200)));
    }

    #[test]
    fn out_of_order_insert_still_queries_correctly() {
        let mut st = SpanStore::new();
        for t in [500u64, 100, 300, 200, 400] {
            st.insert(span(t));
        }
        // Query through a shared reference: lazy sort happens internally.
        let st = &st;
        let got = st.query(&SpanQuery::window(TimeNs(150), TimeNs(450)));
        let times: Vec<u64> = got.iter().map(|s| s.req_time.as_nanos()).collect();
        assert_eq!(times, vec![200, 300, 400]);
    }

    #[test]
    fn filters_compose() {
        let mut st = SpanStore::new();
        let mut err = span(100);
        err.status = SpanStatus::ServerError;
        err.endpoint = "GET /broken".to_string();
        st.insert(err);
        st.insert(span(110));
        let q = SpanQuery {
            errors_only: true,
            limit: usize::MAX,
            ..Default::default()
        };
        let got = st.query(&q);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].endpoint, "GET /broken");
    }

    #[test]
    fn limit_caps_results() {
        let mut st = SpanStore::new();
        for t in 0..100u64 {
            st.insert(span(t));
        }
        let q = SpanQuery {
            limit: 7,
            ..Default::default()
        };
        assert_eq!(st.query(&q).len(), 7);
    }

    #[test]
    fn association_indexes_resolve() {
        let mut st = SpanStore::new();
        let mut a = span(100);
        a.systrace_id_req = Some(SysTraceId(7));
        a.tcp_seq_req = Some(4242);
        let mut b = span(120);
        b.systrace_id_resp = Some(SysTraceId(7));
        b.x_request_id_req = Some(XRequestId(99));
        let mut c = span(140);
        c.otel_trace_id = Some(OtelTraceId(1234));
        c.tcp_seq_resp = Some(4242);
        let ia = st.insert(a);
        let ib = st.insert(b);
        let ic = st.insert(c);

        let ids =
            |rows: &[u32]| -> Vec<SpanId> { rows.iter().map(|&r| SpanStore::id_at(r)).collect() };
        assert_eq!(ids(st.find_by_systrace(7)), vec![ia, ib]);
        assert_eq!(ids(st.find_by_tcp_seq(4242)), vec![ia, ic]);
        assert_eq!(ids(st.find_by_x_request(99)), vec![ib]);
        assert_eq!(ids(st.find_by_otel_trace(1234)), vec![ic]);
        assert!(st.find_by_systrace(999).is_empty());
        assert!(st.stats().index_entries >= 6);
    }

    #[test]
    fn same_value_req_and_resp_not_double_indexed() {
        let mut st = SpanStore::new();
        let mut a = span(100);
        a.tcp_seq_req = Some(5);
        a.tcp_seq_resp = Some(5);
        let id = st.insert(a);
        assert_eq!(st.find_by_tcp_seq(5), &[0]);

        // The re-aggregation path gets the same dedup: completing an
        // Incomplete span with a response that repeats the request-side
        // values must not index the row a second time.
        let mut req_half = span(200);
        req_half.status = SpanStatus::Incomplete;
        req_half.tcp_seq_req = Some(9);
        req_half.systrace_id_req = Some(SysTraceId(31));
        let inc = st.insert(req_half);
        let mut resp_half = span(250);
        resp_half.status = SpanStatus::ResponseOnly;
        resp_half.tcp_seq_resp = Some(9);
        resp_half.systrace_id_resp = Some(SysTraceId(31));
        resp_half.x_request_id_resp = Some(XRequestId(77));
        assert!(st.complete_span(inc, &resp_half));
        let inc_row = (inc.raw() - 1) as u32;
        assert_eq!(st.find_by_tcp_seq(9), &[inc_row], "resp seq == req seq");
        assert_eq!(
            st.find_by_systrace(31),
            &[inc_row],
            "resp systrace == req systrace"
        );
        // A genuinely new response-side value still gets indexed once.
        assert_eq!(st.find_by_x_request(77), &[inc_row]);
        let _ = id;
    }

    #[test]
    fn evicted_rows_disappear_from_find_by_probes() {
        let mut st = SpanStore::new();
        let mut a = span(100);
        a.systrace_id_req = Some(SysTraceId(7));
        a.tcp_seq_req = Some(42);
        a.x_request_id_req = Some(XRequestId(9));
        a.otel_trace_id = Some(OtelTraceId(3));
        a.pseudo_thread_id = Some(PseudoThreadId(5));
        let ia = st.insert(a);
        let mut b = span(200);
        b.systrace_id_req = Some(SysTraceId(7));
        let ib = st.insert(b);

        st.tombstone(ia);
        assert_eq!(st.pending_evictions(), 1);
        // Before eviction the probes still return the tombstoned row
        // (filtered by the callers).
        assert_eq!(st.find_by_systrace(7).len(), 2);
        let removed = st.evict_tombstoned();
        assert_eq!(removed, 5, "one entry per indexed attribute");
        assert_eq!(st.pending_evictions(), 0);
        // The shared bucket kept the live row; exclusive buckets vanished.
        let ib_row = (ib.raw() - 1) as u32;
        assert_eq!(st.find_by_systrace(7), &[ib_row]);
        assert!(st.find_by_tcp_seq(42).is_empty());
        assert!(st.find_by_x_request(9).is_empty());
        assert!(st.find_by_otel_trace(3).is_empty());
        assert!(st.find_by_pseudo_thread(5).is_empty());
        // The span itself is still retrievable (tombstone ≠ delete), still
        // tombstoned, and gone from time-window queries.
        assert!(st.get(ia).is_some());
        assert!(st.is_tombstoned(ia));
        let q = SpanQuery::window(TimeNs(0), TimeNs(1000));
        assert_eq!(st.query(&q).len(), 1);
        // Eviction is idempotent.
        assert_eq!(st.evict_tombstoned(), 0);
    }

    #[test]
    fn eviction_dedups_req_resp_shared_values() {
        // A span indexed once for seq 5 (req == resp) must release exactly
        // that one entry.
        let mut st = SpanStore::new();
        let mut a = span(100);
        a.tcp_seq_req = Some(5);
        a.tcp_seq_resp = Some(5);
        let id = st.insert(a);
        st.tombstone(id);
        // req and resp both point at the same bucket entry; the second
        // sweep finds the bucket already gone.
        assert_eq!(st.evict_tombstoned(), 1);
        assert!(st.find_by_tcp_seq(5).is_empty());
    }

    #[test]
    fn insert_routed_batch_matches_per_span_routed_inserts() {
        let mut one = SpanStore::new();
        let mut bulk = SpanStore::new();
        let spans: Vec<Span> = [500u64, 100, 300]
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut s = span(t);
                s.span_id = SpanId(i as u64 + 10);
                s.tcp_seq_req = Some(77);
                s
            })
            .collect();
        let rows: Vec<u32> = spans
            .iter()
            .cloned()
            .map(|s| one.insert_routed(s))
            .collect();
        let first = bulk.insert_routed_batch(spans);
        assert_eq!(first, 0);
        assert_eq!(rows, vec![0, 1, 2], "rows are contiguous");
        assert_eq!(one.len(), bulk.len());
        assert_eq!(one.find_by_tcp_seq(77), bulk.find_by_tcp_seq(77));
        let q = SpanQuery::window(TimeNs(0), TimeNs(1000));
        let ta: Vec<u64> = one
            .query(&q)
            .iter()
            .map(|s| s.req_time.as_nanos())
            .collect();
        let tb: Vec<u64> = bulk
            .query(&q)
            .iter()
            .map(|s| s.req_time.as_nanos())
            .collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn pod_filter_uses_smart_encoded_tag() {
        let mut st = SpanStore::new();
        let mut a = span(100);
        a.tags.resource.pod_id = Some(42);
        st.insert(a);
        st.insert(span(100));
        let q = SpanQuery {
            pod_id: Some(42),
            limit: usize::MAX,
            ..Default::default()
        };
        assert_eq!(st.query(&q).len(), 1);
    }
}
