//! The Fig. 14 comparison substrate: one table of tag columns, ingested
//! under one of the three encodings, with CPU / memory / disk accounting.
//!
//! Also hosts [`WireTagInterner`], the bridge between DFW1 wire batches
//! (whose string tags arrive interned against a *batch-local* dictionary)
//! and the global SmartInt id space that [`TagEncoding::SmartInt`] tables
//! ingest.

use crate::column::Column;
use std::collections::HashMap;
use std::time::Instant;

/// How tag columns are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagEncoding {
    /// Direct insertion: plain strings.
    Plain,
    /// Per-column dictionary (ClickHouse LowCardinality).
    LowCardinality,
    /// Smart-encoding: values arrive as global dictionary ints (the
    /// string→int conversion happened once, off the ingest path — §3.4).
    SmartInt,
}

impl TagEncoding {
    /// Display name matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            TagEncoding::Plain => "direct",
            TagEncoding::LowCardinality => "low-cardinality",
            TagEncoding::SmartInt => "smart-encoding",
        }
    }
}

/// Aggregate resource accounting for an ingest run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// Rows ingested.
    pub rows: usize,
    /// Wall-clock CPU seconds spent in `ingest`.
    pub cpu_seconds: f64,
    /// Resident memory estimate after ingest (bytes).
    pub memory_bytes: usize,
    /// Serialised size (bytes).
    pub disk_bytes: usize,
}

/// A table of `width` tag columns under one encoding.
#[derive(Debug)]
pub struct TagTable {
    encoding: TagEncoding,
    columns: Vec<Column>,
    rows: usize,
    cpu_seconds: f64,
}

impl TagTable {
    /// Create a table with `width` tag columns.
    pub fn new(encoding: TagEncoding, width: usize) -> Self {
        let columns = (0..width)
            .map(|_| match encoding {
                TagEncoding::Plain => Column::Str(Vec::new()),
                TagEncoding::LowCardinality => Column::new_lowcard(),
                TagEncoding::SmartInt => Column::U32(Vec::new()),
            })
            .collect();
        TagTable {
            encoding,
            columns,
            rows: 0,
            cpu_seconds: 0.0,
        }
    }

    /// The encoding.
    pub fn encoding(&self) -> TagEncoding {
        self.encoding
    }

    /// Ingest rows of *string* tag values (Plain / LowCardinality): each row
    /// is one value per column. For SmartInt tables use
    /// [`TagTable::ingest_int_rows`] — handing strings to a smart-encoded
    /// table would charge it a conversion it does not perform on the ingest
    /// path.
    pub fn ingest_string_rows<'a, I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        assert_ne!(
            self.encoding,
            TagEncoding::SmartInt,
            "smart-encoded tables ingest ints"
        );
        let t0 = Instant::now();
        for row in rows {
            assert_eq!(row.len(), self.columns.len(), "row width mismatch");
            for (col, v) in self.columns.iter_mut().zip(row) {
                col.push_str(v);
            }
            self.rows += 1;
        }
        self.cpu_seconds += t0.elapsed().as_secs_f64();
    }

    /// Ingest rows of pre-encoded integer tags (SmartInt).
    pub fn ingest_int_rows<'a, I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        assert_eq!(self.encoding, TagEncoding::SmartInt);
        let t0 = Instant::now();
        for row in rows {
            assert_eq!(row.len(), self.columns.len(), "row width mismatch");
            for (col, v) in self.columns.iter_mut().zip(row) {
                col.push_int(u64::from(*v));
            }
            self.rows += 1;
        }
        self.cpu_seconds += t0.elapsed().as_secs_f64();
    }

    /// Rows ingested.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Serialise all columns (the "disk" bytes).
    pub fn to_disk(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for c in &self.columns {
            let bytes = c.to_disk();
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Resident memory estimate.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }

    /// Read one cell back as display text (sanity checks / scans).
    pub fn cell(&self, row: usize, col: usize) -> Option<String> {
        self.columns.get(col)?.get_display(row)
    }

    /// Full accounting.
    pub fn report(&self) -> IngestReport {
        let t0 = Instant::now();
        let disk = self.to_disk().len();
        let ser = t0.elapsed().as_secs_f64();
        IngestReport {
            rows: self.rows,
            cpu_seconds: self.cpu_seconds + ser,
            memory_bytes: self.memory_bytes(),
            disk_bytes: disk,
        }
    }
}

/// Bridges batch-local DFW1 tag dictionaries to global SmartInt ids.
///
/// A DFW1 batch carries its own tag dictionary: every string tag in the
/// batch is an index into that dictionary (interned once at encode time,
/// on the agent). The storage tier keeps one *global* string→id map; on
/// each arriving batch, [`WireTagInterner::map_batch`] translates the
/// batch-local index space to global ids in one pass over the (small)
/// dictionary, after which every tag of every span in the batch is a
/// plain `u32` ready for [`TagTable::ingest_int_rows`] — the string→int
/// conversion stays off the per-row ingest path (§3.4).
#[derive(Debug, Default)]
pub struct WireTagInterner {
    ids: HashMap<String, u32>,
}

impl WireTagInterner {
    /// An empty interner: no strings interned, next id is 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Intern one string, returning its stable global id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.ids.len()).expect("more than u32::MAX distinct tags");
        self.ids.insert(s.to_string(), id);
        id
    }

    /// Translate a batch-local dictionary (as borrowed from
    /// `WireBatch::dict`) into global ids: `result[i]` is the global id
    /// of batch-local id `i`. One interner lookup per *distinct* string
    /// in the batch, not per span.
    pub fn map_batch(&mut self, dict: &[&str]) -> Vec<u32> {
        dict.iter().map(|s| self.intern(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn string_rows(n: usize, width: usize, cardinality: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| {
                (0..width)
                    .map(|c| format!("tag{}-value-{}", c, (i * 31 + c) % cardinality))
                    .collect()
            })
            .collect()
    }

    fn int_rows(n: usize, width: usize, cardinality: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                (0..width)
                    .map(|c| ((i * 31 + c) % cardinality) as u32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_three_encodings_store_the_same_logical_rows() {
        let n = 500;
        let w = 4;
        let srows = string_rows(n, w, 10);
        let irows = int_rows(n, w, 10);

        let mut plain = TagTable::new(TagEncoding::Plain, w);
        plain.ingest_string_rows(srows.iter().map(|r| r.as_slice()));
        let mut lc = TagTable::new(TagEncoding::LowCardinality, w);
        lc.ingest_string_rows(srows.iter().map(|r| r.as_slice()));
        let mut smart = TagTable::new(TagEncoding::SmartInt, w);
        smart.ingest_int_rows(irows.iter().map(|r| r.as_slice()));

        assert_eq!(plain.rows(), n);
        assert_eq!(lc.rows(), n);
        assert_eq!(smart.rows(), n);
        // Cells readable under every encoding.
        assert_eq!(plain.cell(3, 1), lc.cell(3, 1));
        assert_eq!(smart.cell(3, 1), Some(format!("{}", (3 * 31 + 1) % 10)));
    }

    /// Production tag profile: a mix of low-cardinality locality tags
    /// (region/az/vpc/cluster) and high-cardinality identity tags (pod
    /// names, IPs — unique-ish per row). The mix is what makes
    /// smart-encoding win overall in Fig. 14: dictionary encoding degrades
    /// to storing every distinct string once anyway on the identity tags,
    /// while smart-encoding stays at 4 bytes per cell.
    fn production_profile() -> Vec<usize> {
        vec![4, 8, 16, 32, 1_000, 5_000, 20_000, 20_000]
    }

    fn production_string_rows(n: usize, cards: &[usize]) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| {
                cards
                    .iter()
                    .enumerate()
                    .map(|(c, card)| format!("k8s-tag{}-value-{:010}", c, (i * 31 + c) % card))
                    .collect()
            })
            .collect()
    }

    fn production_int_rows(n: usize, cards: &[usize]) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| {
                cards
                    .iter()
                    .enumerate()
                    .map(|(c, card)| ((i * 31 + c) % card) as u32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn resource_ordering_matches_fig14() {
        // smart < low-cardinality < direct, for disk, on production-shaped
        // tag data (mixed cardinality).
        let n = 20_000;
        let cards = production_profile();
        let w = cards.len();
        let srows = production_string_rows(n, &cards);
        let irows = production_int_rows(n, &cards);

        let mut plain = TagTable::new(TagEncoding::Plain, w);
        plain.ingest_string_rows(srows.iter().map(|r| r.as_slice()));
        let mut lc = TagTable::new(TagEncoding::LowCardinality, w);
        lc.ingest_string_rows(srows.iter().map(|r| r.as_slice()));
        let mut smart = TagTable::new(TagEncoding::SmartInt, w);
        smart.ingest_int_rows(irows.iter().map(|r| r.as_slice()));

        let (p, l, s) = (plain.report(), lc.report(), smart.report());
        assert!(
            s.disk_bytes < l.disk_bytes && l.disk_bytes < p.disk_bytes,
            "disk: smart {} < lowcard {} < direct {}",
            s.disk_bytes,
            l.disk_bytes,
            p.disk_bytes
        );
        assert!(
            s.memory_bytes < p.memory_bytes,
            "memory: smart {} < direct {}",
            s.memory_bytes,
            p.memory_bytes
        );
    }

    #[test]
    #[should_panic(expected = "smart-encoded tables ingest ints")]
    fn smart_table_rejects_string_ingest() {
        let rows = string_rows(1, 2, 2);
        let mut t = TagTable::new(TagEncoding::SmartInt, 2);
        t.ingest_string_rows(rows.iter().map(|r| r.as_slice()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TagTable::new(TagEncoding::Plain, 3);
        let row = vec!["a".to_string()];
        t.ingest_string_rows([row.as_slice()]);
    }

    #[test]
    fn interner_ids_are_stable_across_batches() {
        let mut interner = WireTagInterner::new();
        assert!(interner.is_empty());
        // Batch 1 dictionary: three distinct strings.
        let m1 = interner.map_batch(&["env", "prod", "team"]);
        assert_eq!(m1, vec![0, 1, 2]);
        // Batch 2 reuses two of them at *different* local indices and adds
        // one new string: known strings keep their global ids.
        let m2 = interner.map_batch(&["team", "staging", "env"]);
        assert_eq!(m2, vec![2, 3, 0]);
        assert_eq!(interner.len(), 4);
    }

    /// End-to-end wire → SmartInt path: encode spans with custom tags,
    /// decode the DFW1 batch, remap the batch-local dictionary to global
    /// ids, and feed the rows into a smart-encoded table. The cells read
    /// back as the global ids of the original strings.
    #[test]
    fn wire_dict_feeds_smart_int_ingest() {
        use df_types::wire;
        let mut spans = Vec::new();
        for i in 0..4u64 {
            let mut s =
                df_types::Span::synthetic(df_types::TapSide::ServerProcess, i * 10, i * 10 + 5);
            s.tags = std::mem::take(&mut s.tags)
                .with_label("env", if i % 2 == 0 { "prod" } else { "dev" });
            spans.push(s);
        }
        let bytes = wire::encode_batch(&spans);
        let batch = wire::WireBatch::parse(&bytes).expect("valid batch");

        let mut interner = WireTagInterner::new();
        // Seed the interner so global ids visibly differ from local ones.
        interner.intern("already-known");
        let global = interner.map_batch(batch.dict());

        // One ("env" → value) pair per span: remap each span's value id.
        let decoded = batch.decode_all().expect("decode");
        let rows: Vec<Vec<u32>> = decoded
            .iter()
            .map(|s| vec![interner.intern(s.tags.label("env").expect("env label"))])
            .collect();
        // Remapping via the decoded strings must agree with remapping via
        // the dictionary (same interner, same ids).
        for (row, s) in rows.iter().zip(&decoded) {
            let local = batch
                .dict()
                .iter()
                .position(|d| *d == s.tags.label("env").expect("env label"))
                .expect("value in dict");
            assert_eq!(row[0], global[local]);
        }

        let mut table = TagTable::new(TagEncoding::SmartInt, 1);
        table.ingest_int_rows(rows.iter().map(|r| r.as_slice()));
        assert_eq!(table.rows(), 4);
        assert_eq!(table.cell(0, 0), Some(format!("{}", rows[0][0])));
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(TagEncoding::Plain.label(), "direct");
        assert_eq!(TagEncoding::LowCardinality.label(), "low-cardinality");
        assert_eq!(TagEncoding::SmartInt.label(), "smart-encoding");
    }
}
