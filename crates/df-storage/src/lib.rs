//! # df-storage — embedded columnar span store
//!
//! The paper stores traces in ClickHouse and evaluates three ways of storing
//! the up-to-100 tags a trace carries (§5.2, Fig. 14):
//!
//! * **direct** — tags as plain strings ("storing a tag as a string requires
//!   more bytes (one char per digit) and thus more calculation and hardware
//!   resources");
//! * **low-cardinality** — ClickHouse's per-column dictionary encoding;
//! * **smart-encoding** — DeepFlow's scheme: tags arrive already as global
//!   dictionary integers (the string→int mapping happened *once*, at tag
//!   collection time — §3.4), so the store just writes fixed-width ints.
//!
//! This crate reproduces the comparison with an honest implementation of all
//! three ([`tagtable`]), plus the span store the server runs Algorithm 1
//! against ([`store`]): a row store with hash indexes over every
//! implicit-context attribute and a time index for span-list queries.
//!
//! At scale the corpus is partitioned: [`shard`] provides the routing
//! policy (hash of the canonical flow five-tuple, a time-bucketed routing
//! table, and the tombstone-eviction threshold) that `df-server`'s
//! `ShardedSpanStore` builds on, and [`store`] exposes the row-addressed
//! primitives (`insert_routed`, `tombstone_row`, `complete_span_row`,
//! `evict_tombstoned`) an embedded shard needs.
//!
//! Memory is bounded by **tiering**: cold time buckets spill to disk as
//! DFW1-encoded span segments ([`persist`]) and page back on demand
//! through a fixed-budget buffer pool with LRU-K eviction
//! ([`bufferpool`]), whose file IO runs on a background disk-scheduler
//! thread ([`disk_sched`]) so ingest workers never block on disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufferpool;
pub mod column;
pub mod disk_sched;
pub mod persist;
pub mod shard;
pub mod store;
pub mod tagtable;

pub use bufferpool::{BufferPool, BufferPoolConfig, EvictionPolicy, PoolStats, SegmentId};
pub use column::{Column, ColumnStats};
pub use disk_sched::DiskScheduler;
pub use shard::{ShardPolicy, TierConfig};
pub use store::{ColdRef, RecoverStats, SpanQuery, SpanStore, SpillStats, StoreStats};
pub use tagtable::{TagEncoding, TagTable, WireTagInterner};
