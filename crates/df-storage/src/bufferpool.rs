//! Buffer-pool manager for cold span segments: a fixed frame budget, a
//! pin/unpin discipline, and scan-resistant LRU-K eviction.
//!
//! Spilled time buckets live on disk as span segments (see
//! [`crate::persist`]); every access to a cold row goes through this pool
//! so that at most [`BufferPoolConfig::frames`] decoded segments are
//! resident at once, no matter how large the cold corpus grows. The
//! design follows the classic database buffer pool (the `bustub-rust`
//! lineage the ROADMAP points at):
//!
//! - **Frames**: `frames` slots, each holding one decoded segment as an
//!   `Arc<Vec<Span>>`. The frame budget is the memory ceiling.
//! - **Pins**: a fetched page is pinned until its [`PageRef`] drops; a
//!   pinned frame is never eviction-eligible (the df-check model test
//!   `pinned_frame_never_evicted` pins this down by exhaustive
//!   interleaving).
//! - **LRU-K** ([O'Neil et al., SIGMOD '93]): the victim is the
//!   evictable frame with the largest backward-K distance — frames with
//!   fewer than K recorded accesses count as infinitely distant and are
//!   evicted first (oldest first). A single full-corpus scan touches each
//!   segment once, so scan pages stay in the "< K accesses" class and
//!   evict each other, while the point-query working set (≥ K touches)
//!   survives. `K = 1` degenerates to plain LRU; FIFO is also provided so
//!   the `storage_tiered` bench can compare hit rates.
//! - **Miss handling**: a miss inserts a `Loading` placeholder and does
//!   the read *outside* the pool lock via the background
//!   [`DiskScheduler`]; concurrent fetchers of the same segment wait on a
//!   condvar instead of issuing duplicate IO.

use crate::disk_sched::DiskScheduler;
use crate::persist;
use df_check::sync::{Arc, Condvar, Mutex};
use df_types::span::Span;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::PathBuf;

/// Identifier of one spilled span segment (unique within a store).
pub type SegmentId = u64;

/// Page-replacement policy for the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Backward-K-distance eviction (scan-resistant). The default.
    LruK,
    /// Plain least-recently-used (`LruK` with K = 1).
    Lru,
    /// First-in-first-out by frame install time.
    Fifo,
}

/// Configuration for a [`BufferPool`].
#[derive(Debug, Clone, Copy)]
pub struct BufferPoolConfig {
    /// Frame budget: maximum resident decoded segments.
    pub frames: usize,
    /// K for LRU-K (ignored by `Lru`/`Fifo`).
    pub k: usize,
    /// Replacement policy.
    pub policy: EvictionPolicy,
    /// Disk-scheduler queue depth.
    pub queue_depth: usize,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        BufferPoolConfig {
            frames: 64,
            k: 2,
            policy: EvictionPolicy::LruK,
            queue_depth: 128,
        }
    }
}

impl BufferPoolConfig {
    /// Config with a specific frame budget, defaults elsewhere.
    pub fn with_frames(frames: usize) -> Self {
        BufferPoolConfig {
            frames: frames.max(1),
            ..BufferPoolConfig::default()
        }
    }
}

/// Why a pool operation failed.
#[derive(Debug)]
pub enum PoolError {
    /// Every frame is pinned; nothing can be evicted to make room.
    AllPinned,
    /// The segment id was never [`BufferPool::register`]ed.
    UnknownSegment(SegmentId),
    /// The segment file could not be read or decoded.
    Io(io::Error),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::AllPinned => write!(f, "all buffer-pool frames are pinned"),
            PoolError::UnknownSegment(seg) => write!(f, "unknown segment id {seg}"),
            PoolError::Io(e) => write!(f, "segment IO failed: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Per-frame replacement state.
#[derive(Debug)]
struct FrameHistory {
    /// Last up-to-K access ticks, oldest at the front.
    history: VecDeque<u64>,
    evictable: bool,
    /// Tick at which the frame was installed (FIFO key).
    inserted: u64,
}

/// Replacement bookkeeping, factored out of the pool so the df-check
/// model tests and the `storage_tiered` hit-rate comparison can drive it
/// directly. Not thread-safe on its own — the pool guards it with the
/// pool mutex.
#[derive(Debug)]
pub struct Replacer {
    policy: EvictionPolicy,
    k: usize,
    tick: u64,
    entries: HashMap<usize, FrameHistory>,
}

impl Replacer {
    /// Replacer with the given policy; `k` is clamped to at least 1.
    pub fn new(policy: EvictionPolicy, k: usize) -> Self {
        let k = match policy {
            EvictionPolicy::Lru | EvictionPolicy::Fifo => 1,
            EvictionPolicy::LruK => k.max(1),
        };
        Replacer {
            policy,
            k,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Record an access to `frame`, registering it on first touch.
    /// Newly registered frames are *not* evictable until
    /// [`Replacer::set_evictable`] says so.
    pub fn record_access(&mut self, frame: usize) {
        self.tick += 1;
        let tick = self.tick;
        let k = self.k;
        let entry = self.entries.entry(frame).or_insert_with(|| FrameHistory {
            history: VecDeque::with_capacity(k),
            evictable: false,
            inserted: tick,
        });
        if entry.history.len() == k {
            entry.history.pop_front();
        }
        entry.history.push_back(tick);
    }

    /// Mark `frame` evictable (pin count reached zero) or not (pinned).
    pub fn set_evictable(&mut self, frame: usize, evictable: bool) {
        if let Some(entry) = self.entries.get_mut(&frame) {
            entry.evictable = evictable;
        }
    }

    /// Whether `frame` is currently registered and evictable.
    pub fn is_evictable(&self, frame: usize) -> bool {
        self.entries.get(&frame).is_some_and(|e| e.evictable)
    }

    /// Pick and unregister a victim, or `None` if nothing is evictable.
    ///
    /// LRU-K: frames with fewer than K accesses have infinite backward-K
    /// distance and are preferred (oldest first access first); among
    /// fully-histogrammed frames the victim has the *oldest* Kth-most-
    /// recent access. FIFO ignores accesses and evicts the oldest
    /// install.
    pub fn evict(&mut self) -> Option<usize> {
        let victim = match self.policy {
            EvictionPolicy::Fifo => self
                .entries
                .iter()
                .filter(|(_, e)| e.evictable)
                .min_by_key(|(frame, e)| (e.inserted, **frame))
                .map(|(frame, _)| *frame),
            EvictionPolicy::Lru | EvictionPolicy::LruK => self
                .entries
                .iter()
                .filter(|(_, e)| e.evictable)
                .min_by_key(|(frame, e)| {
                    // Class 0 (< K accesses, infinite distance) sorts
                    // before class 1; within a class the oldest relevant
                    // tick wins. The frame index breaks exact ties
                    // deterministically.
                    let class = usize::from(e.history.len() >= self.k);
                    let tick = e.history.front().copied().unwrap_or(0);
                    (class, tick, **frame)
                })
                .map(|(frame, _)| *frame),
        };
        if let Some(frame) = victim {
            self.entries.remove(&frame);
        }
        victim
    }

    /// Unregister `frame` without evicting (frame freed for other
    /// reasons). No-op if unregistered.
    pub fn remove(&mut self, frame: usize) {
        self.entries.remove(&frame);
    }

    /// Number of registered frames currently evictable.
    pub fn evictable_count(&self) -> usize {
        self.entries.values().filter(|e| e.evictable).count()
    }
}

/// One resident decoded segment.
#[derive(Debug)]
struct Frame {
    segment: SegmentId,
    spans: Arc<Vec<Span>>,
    pins: usize,
}

/// Page-table state for a segment.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Decoded and resident in the given frame.
    Resident(usize),
    /// A fetch is in flight; wait on the pool condvar.
    Loading,
}

/// Monotonic pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: usize,
    /// Fetches that had to page in from disk.
    pub misses: usize,
    /// Frames evicted to make room.
    pub evictions: usize,
    /// Reads served by bypassing the pool because every frame was
    /// pinned (unbounded memory is never required for correctness).
    pub bypass_reads: usize,
}

#[derive(Debug)]
struct Inner {
    /// Frame slots; `None` means free.
    frames: Vec<Option<Frame>>,
    /// Indices of free slots.
    free: Vec<usize>,
    /// SegmentId → residency state.
    table: HashMap<SegmentId, Slot>,
    replacer: Replacer,
    /// SegmentId → on-disk path, set by [`BufferPool::register`].
    catalog: HashMap<SegmentId, PathBuf>,
    stats: PoolStats,
    next_segment: SegmentId,
}

/// The buffer-pool manager. Thread-safe; shared via `Arc` between the
/// store shards and whoever spills.
#[derive(Debug)]
pub struct BufferPool {
    cfg: BufferPoolConfig,
    sched: DiskScheduler,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl BufferPool {
    /// Pool with the given config and a fresh background disk scheduler.
    pub fn new(cfg: BufferPoolConfig) -> Self {
        let frames = cfg.frames.max(1);
        BufferPool {
            sched: DiskScheduler::new(cfg.queue_depth),
            inner: Mutex::new(Inner {
                frames: (0..frames).map(|_| None).collect(),
                free: (0..frames).rev().collect(),
                table: HashMap::new(),
                replacer: Replacer::new(cfg.policy, cfg.k),
                catalog: HashMap::new(),
                stats: PoolStats::default(),
                next_segment: 0,
            }),
            cv: Condvar::new(),
            cfg: BufferPoolConfig { frames, ..cfg },
        }
    }

    /// Allocate a fresh segment id (the spiller names the file, then
    /// [`BufferPool::register`]s it).
    pub fn alloc_segment(&self) -> SegmentId {
        let mut inner = self.inner.lock().expect("buffer pool lock poisoned");
        let seg = inner.next_segment;
        inner.next_segment += 1;
        seg
    }

    /// Record where `seg` lives on disk. Must happen before any fetch.
    pub fn register(&self, seg: SegmentId, path: PathBuf) {
        let mut inner = self.inner.lock().expect("buffer pool lock poisoned");
        inner.catalog.insert(seg, path);
    }

    /// The pool's background disk scheduler (spill writes go through it
    /// so ingest never does file IO inline).
    pub fn scheduler(&self) -> &DiskScheduler {
        &self.sched
    }

    /// Fetch `seg`, paging it in if necessary. The returned [`PageRef`]
    /// pins the frame until dropped.
    pub fn fetch(&self, seg: SegmentId) -> Result<PageRef<'_>, PoolError> {
        let mut inner = self.inner.lock().expect("buffer pool lock poisoned");
        loop {
            match inner.table.get(&seg) {
                Some(&Slot::Resident(frame_idx)) => {
                    inner.stats.hits += 1;
                    let spans = {
                        let frame = inner.frames[frame_idx]
                            .as_mut()
                            .expect("resident slot has a frame");
                        frame.pins += 1;
                        Arc::clone(&frame.spans)
                    };
                    inner.replacer.record_access(frame_idx);
                    inner.replacer.set_evictable(frame_idx, false);
                    return Ok(PageRef {
                        pool: self,
                        frame: frame_idx,
                        spans,
                    });
                }
                Some(&Slot::Loading) => {
                    // Another fetcher is paging this segment in; wait for
                    // it to install (or fail) rather than duplicating IO.
                    inner = self.cv.wait(inner).expect("buffer pool lock poisoned");
                }
                None => break,
            }
        }
        let Some(path) = inner.catalog.get(&seg).cloned() else {
            return Err(PoolError::UnknownSegment(seg));
        };
        // Reserve a frame before releasing the lock: a free one, else a
        // victim from the replacer (which never selects a pinned frame).
        let frame_idx = match inner.free.pop() {
            Some(f) => f,
            None => match inner.replacer.evict() {
                Some(f) => {
                    let old = inner.frames[f].take().expect("victim frame occupied");
                    debug_assert_eq!(old.pins, 0, "evicted a pinned frame");
                    inner.table.remove(&old.segment);
                    inner.stats.evictions += 1;
                    f
                }
                None => return Err(PoolError::AllPinned),
            },
        };
        inner.table.insert(seg, Slot::Loading);
        inner.stats.misses += 1;
        drop(inner);

        // Page-in outside the pool lock, via the background scheduler.
        let loaded = self
            .sched
            .read(path)
            .wait()
            .and_then(|bytes| persist::decode_span_segment(&bytes));

        let mut inner = self.inner.lock().expect("buffer pool lock poisoned");
        match loaded {
            Ok(segment) => {
                let spans = Arc::new(segment.spans);
                inner.frames[frame_idx] = Some(Frame {
                    segment: seg,
                    spans: Arc::clone(&spans),
                    pins: 1,
                });
                inner.table.insert(seg, Slot::Resident(frame_idx));
                inner.replacer.record_access(frame_idx);
                inner.replacer.set_evictable(frame_idx, false);
                self.cv.notify_all();
                Ok(PageRef {
                    pool: self,
                    frame: frame_idx,
                    spans,
                })
            }
            Err(e) => {
                inner.table.remove(&seg);
                inner.free.push(frame_idx);
                self.cv.notify_all();
                Err(PoolError::Io(e))
            }
        }
    }

    /// Read one span out of `seg` by its in-segment offset.
    ///
    /// The normal path pins the page, clones the row, and unpins. If
    /// every frame is pinned the read bypasses the pool entirely
    /// (uncached read-through, counted in
    /// [`PoolStats::bypass_reads`]) — correctness never requires more
    /// than the frame budget. Panics if the segment cannot be read at
    /// all: a cold row that was spilled must be recoverable, and
    /// returning a fabricated absence would silently corrupt assembly.
    pub fn read_span(&self, seg: SegmentId, offset: u32) -> Span {
        match self.fetch(seg) {
            Ok(page) => page
                .get(offset as usize)
                .unwrap_or_else(|| panic!("segment {seg} has no row at offset {offset}"))
                .clone(),
            Err(PoolError::AllPinned) => {
                let path = {
                    let mut inner = self.inner.lock().expect("buffer pool lock poisoned");
                    inner.stats.bypass_reads += 1;
                    inner
                        .catalog
                        .get(&seg)
                        .cloned()
                        .unwrap_or_else(|| panic!("unknown segment id {seg}"))
                };
                let bytes = self
                    .sched
                    .read(path)
                    .wait()
                    .unwrap_or_else(|e| panic!("cold segment {seg} unreadable: {e}"));
                let segment = persist::decode_span_segment(&bytes)
                    .unwrap_or_else(|e| panic!("cold segment {seg} corrupt: {e}"));
                segment
                    .spans
                    .get(offset as usize)
                    .unwrap_or_else(|| panic!("segment {seg} has no row at offset {offset}"))
                    .clone()
            }
            Err(e) => panic!("cold span page-in failed: {e}"),
        }
    }

    /// Number of frames currently holding a decoded segment.
    pub fn resident_frames(&self) -> usize {
        let inner = self.inner.lock().expect("buffer pool lock poisoned");
        inner.frames.iter().filter(|f| f.is_some()).count()
    }

    /// The configured frame budget.
    pub fn frame_budget(&self) -> usize {
        self.cfg.frames
    }

    /// Snapshot of hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("buffer pool lock poisoned").stats
    }
}

/// RAII pin on a resident segment: derefs to the decoded span slice and
/// unpins on drop (the frame becomes eviction-eligible once its last
/// `PageRef` is gone).
#[derive(Debug)]
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    frame: usize,
    spans: Arc<Vec<Span>>,
}

impl Deref for PageRef<'_> {
    type Target = [Span];

    fn deref(&self) -> &[Span] {
        &self.spans
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock().expect("buffer pool lock poisoned");
        let frame = inner.frames[self.frame]
            .as_mut()
            .expect("pinned frame occupied");
        frame.pins -= 1;
        if frame.pins == 0 {
            inner.replacer.set_evictable(self.frame, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_k_prefers_infinite_distance_then_oldest_kth_access() {
        let mut r = Replacer::new(EvictionPolicy::LruK, 2);
        for f in 0..3 {
            r.record_access(f); // ticks 1, 2, 3
            r.set_evictable(f, true);
        }
        // Frames 0 and 1 get a second access → full history.
        r.record_access(0); // tick 4
        r.record_access(1); // tick 5
                            // Frame 2 has < K accesses → infinite distance, evicted first.
        assert_eq!(r.evict(), Some(2));
        // Among full histories the oldest Kth-recent access (frame 0's
        // tick 1 vs frame 1's tick 2) loses.
        assert_eq!(r.evict(), Some(0));
        assert_eq!(r.evict(), Some(1));
        assert_eq!(r.evict(), None);
    }

    #[test]
    fn lru_k_is_scan_resistant_where_lru_is_not() {
        // Hot set {0, 1} touched twice; then a scan touches {2, 3} once.
        let setup = |policy| {
            let mut r = Replacer::new(policy, 2);
            for f in [0usize, 1] {
                r.record_access(f);
                r.record_access(f);
                r.set_evictable(f, true);
            }
            for f in [2usize, 3] {
                r.record_access(f);
                r.set_evictable(f, true);
            }
            r
        };
        // LRU-K: scan frames have infinite backward-2 distance → they go
        // first and the hot set survives.
        let mut lruk = setup(EvictionPolicy::LruK);
        assert_eq!(lruk.evict(), Some(2));
        assert_eq!(lruk.evict(), Some(3));
        // Plain LRU: the hot set is now the *least recent* → flushed by
        // the scan.
        let mut lru = setup(EvictionPolicy::Lru);
        assert_eq!(lru.evict(), Some(0));
        assert_eq!(lru.evict(), Some(1));
    }

    #[test]
    fn pinned_frames_are_never_victims() {
        let mut r = Replacer::new(EvictionPolicy::LruK, 2);
        r.record_access(0);
        r.record_access(1);
        r.set_evictable(1, true);
        // Frame 0 is pinned (never marked evictable): only 1 can go.
        assert_eq!(r.evict(), Some(1));
        assert_eq!(r.evict(), None);
        r.set_evictable(0, true);
        assert_eq!(r.evict(), Some(0));
    }

    #[test]
    fn fifo_evicts_by_install_order_regardless_of_reaccess() {
        let mut r = Replacer::new(EvictionPolicy::Fifo, 2);
        for f in 0..3 {
            r.record_access(f);
            r.set_evictable(f, true);
        }
        r.record_access(0); // re-access must not save frame 0 under FIFO
        assert_eq!(r.evict(), Some(0));
        assert_eq!(r.evict(), Some(1));
        assert_eq!(r.evict(), Some(2));
    }
}
