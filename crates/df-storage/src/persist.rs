//! Disk persistence: segment files for tag tables and JSON export for spans.
//!
//! The Fig. 14 harness measures *actual written bytes*, so [`write_segment`]
//! really writes the columnar image to disk and reports its size. Span JSON
//! export exists for the examples and for feeding external tooling
//! (DeepFlow's own front end consumes JSON from the server).

use crate::store::SpanStore;
use crate::tagtable::TagTable;
use df_types::Span;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Magic prefixing segment files.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DFSEG\0v1";

/// Write a tag table's columnar image to `path`. Returns the bytes written.
pub fn write_segment(table: &TagTable, path: &Path) -> io::Result<u64> {
    let mut f = fs::File::create(path)?;
    f.write_all(SEGMENT_MAGIC)?;
    let body = table.to_disk();
    f.write_all(&(body.len() as u64).to_le_bytes())?;
    f.write_all(&body)?;
    f.flush()?;
    Ok(8 + 8 + body.len() as u64)
}

/// Validate a segment file's header and return the body length it declares.
pub fn read_segment_header(path: &Path) -> io::Result<u64> {
    let data = fs::read(path)?;
    if data.len() < 16 || &data[..8] != SEGMENT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad segment magic",
        ));
    }
    let len = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if data.len() as u64 != 16 + len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "segment length mismatch",
        ));
    }
    Ok(len)
}

/// Export all spans as JSON lines.
pub fn export_spans_json(store: &SpanStore, path: &Path) -> io::Result<usize> {
    let mut f = io::BufWriter::new(fs::File::create(path)?);
    let mut n = 0;
    for span in store.iter() {
        let line = serde_json::to_string(span)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        n += 1;
    }
    f.flush()?;
    Ok(n)
}

/// Load spans back from a JSON-lines file.
pub fn import_spans_json(path: &Path) -> io::Result<Vec<Span>> {
    let data = fs::read_to_string(path)?;
    data.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagtable::TagEncoding;

    #[test]
    fn segment_round_trip_and_validation() {
        let dir = std::env::temp_dir().join("df-storage-test-segments");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg1.dfseg");

        let mut t = TagTable::new(TagEncoding::SmartInt, 3);
        let rows: Vec<Vec<u32>> = (0..100).map(|i| vec![i, i * 2, i * 3]).collect();
        t.ingest_int_rows(rows.iter().map(|r| r.as_slice()));

        let written = write_segment(&t, &path).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        let body_len = read_segment_header(&path).unwrap();
        assert_eq!(body_len + 16, written);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_segment_rejected() {
        let dir = std::env::temp_dir().join("df-storage-test-segments");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dfseg");
        fs::write(&path, b"NOTASEGMENT").unwrap();
        assert!(read_segment_header(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn span_json_round_trip() {
        use df_types::ids::*;
        use df_types::l7::L7Protocol;
        use df_types::net::FiveTuple;
        use df_types::span::*;
        use df_types::tags::TagSet;
        use df_types::TimeNs;
        use std::net::Ipv4Addr;

        let mut store = SpanStore::new();
        store.insert(Span {
            span_id: SpanId(0),
            kind: SpanKind::Net,
            capture: CapturePoint {
                node: NodeId(2),
                tap_side: TapSide::ClientNodeNic,
                interface: Some("eth0".into()),
            },
            agent: AgentId(2),
            flow_id: FlowId(9),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /json".to_string(),
            req_time: TimeNs(5),
            resp_time: TimeNs(10),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 1,
            resp_bytes: 2,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: Some(SysTraceId(3)),
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: Some(77),
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        });

        let dir = std::env::temp_dir().join("df-storage-test-segments");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        assert_eq!(export_spans_json(&store, &path).unwrap(), 1);
        let back = import_spans_json(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].endpoint, "GET /json");
        assert_eq!(back[0].tcp_seq_req, Some(77));
        fs::remove_file(&path).unwrap();
    }
}
