//! Disk persistence: segment files for tag tables, DFW1-based span
//! segments for the cold tier, and JSON export for spans.
//!
//! The Fig. 14 harness measures *actual written bytes*, so [`write_segment`]
//! really writes the columnar image to disk and reports its size. Span JSON
//! export exists for the examples and for feeding external tooling
//! (DeepFlow's own front end consumes JSON from the server).
//!
//! # Span segments (cold tier)
//!
//! A *span segment* is the unit the tiered store spills and pages: one
//! cold time bucket's spans as a DFW1 batch, plus the images needed to
//! rebuild row addressing and the association/time indexes without
//! decoding every span. The layout is normative — see
//! `docs/SEGMENT_FORMAT.md`, kept in lockstep with the consts below by
//! `df-spec-sync`:
//!
//! ```text
//! magic "DFSPANS1" (8) | version u8 | section_count u8 | body_len u64 LE
//! body = section_count × ( section_len u64 LE | section bytes )
//! ```
//!
//! Sections, in [`SPAN_SEGMENT_SECTIONS`] order: the DFW1 span batch, the
//! original store row ids, the `(req_time, offset)` time-index image, and
//! the five association-index images.

use crate::store::SpanStore;
use crate::tagtable::TagTable;
use df_types::{wire, Span};
use std::fs;
use std::io::{self, BufRead, Read, Write};
use std::path::Path;

/// Magic prefixing tag-table segment files.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DFSEG\0v1";

/// Magic prefixing span segment files (the cold tier's page unit).
pub const SPAN_SEGMENT_MAGIC: &[u8; 8] = b"DFSPANS1";

/// Span-segment layout version.
pub const SPAN_SEGMENT_VERSION: u8 = 1;

/// Span-segment sections, in file order.
pub const SPAN_SEGMENT_SECTIONS: [&str; 4] = ["spans", "rows", "time_index", "assoc_index"];

/// Fixed span-segment header length: magic + version + section count +
/// body length.
pub const SPAN_SEGMENT_HEADER_LEN: usize = 8 + 1 + 1 + 8;

/// Association-index images carried by a span segment, in section order
/// within the `assoc_index` section. Keys are widened to `u128` on disk;
/// the store narrows them back per index.
pub const SPAN_SEGMENT_ASSOC_INDEXES: [&str; 5] = [
    "systrace",
    "pseudo_thread",
    "x_request",
    "tcp_seq",
    "otel_trace",
];

/// Write a tag table's columnar image to `path`. Returns the bytes written.
pub fn write_segment(table: &TagTable, path: &Path) -> io::Result<u64> {
    let mut f = fs::File::create(path)?;
    f.write_all(SEGMENT_MAGIC)?;
    let body = table.to_disk();
    f.write_all(&(body.len() as u64).to_le_bytes())?;
    f.write_all(&body)?;
    f.flush()?;
    Ok((body.len() as u64).saturating_add(16))
}

/// Validate a segment file's header and return the body length it
/// declares. Reads only the 16 header bytes; the declared length is
/// checked against the file's metadata instead of slurping the body.
pub fn read_segment_header(path: &Path) -> io::Result<u64> {
    let mut f = fs::File::open(path)?;
    let mut header = [0u8; 16];
    f.read_exact(&mut header)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad segment magic"))?;
    let (magic, len_bytes) = header.split_at(8);
    if magic != SEGMENT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad segment magic",
        ));
    }
    let len = u64::from_le_bytes(
        len_bytes
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad segment header"))?,
    );
    // checked_sub instead of `16 + len`: a hostile declared length near
    // u64::MAX must not wrap the comparison around.
    if fs::metadata(path)?.len().checked_sub(16) != Some(len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "segment length mismatch",
        ));
    }
    Ok(len)
}

/// A decoded span segment: the spans of one cold bucket plus the images
/// needed to re-address them.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSegment {
    /// The bucket's spans, in spill order (offset *i* in the segment is
    /// element *i* here).
    pub spans: Vec<Span>,
    /// Original store row of each span, parallel to `spans`.
    pub rows: Vec<u32>,
    /// `(req_time_ns, offset)` pairs sorted by time.
    pub time_index: Vec<(u64, u32)>,
    /// Association images in [`SPAN_SEGMENT_ASSOC_INDEXES`] order:
    /// `(key, offset)` pairs sorted by key, keys widened to `u128`.
    pub assoc_index: [Vec<(u128, u32)>; 5],
}

/// Parsed span-segment header (no body IO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSegmentHeader {
    /// Layout version ([`SPAN_SEGMENT_VERSION`]).
    pub version: u8,
    /// Number of sections the body carries.
    pub sections: u8,
    /// Body length in bytes (file length minus the fixed header).
    pub body_len: u64,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Encode one cold bucket as a span segment. `rows` gives the original
/// store row of each span (parallel slices). The time and association
/// images are derived here so a future reader can rebuild index state
/// without decoding the DFW1 batch.
pub fn encode_span_segment(spans: &[Span], rows: &[u32]) -> Vec<u8> {
    // df-audit: allow(decode-panic) — encode-side API contract on in-process data, not wire input
    assert_eq!(spans.len(), rows.len(), "spans and rows must be parallel");

    let span_bytes = wire::encode_batch(spans);

    let mut row_bytes = Vec::with_capacity(rows.len().saturating_mul(4).saturating_add(4));
    row_bytes.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for &row in rows {
        row_bytes.extend_from_slice(&row.to_le_bytes());
    }

    let mut time_pairs: Vec<(u64, u32)> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.req_time.as_nanos(), i as u32))
        .collect();
    time_pairs.sort_unstable();
    let mut time_bytes = Vec::with_capacity(time_pairs.len().saturating_mul(12).saturating_add(4));
    time_bytes.extend_from_slice(&(time_pairs.len() as u32).to_le_bytes());
    for &(ts, off) in &time_pairs {
        time_bytes.extend_from_slice(&ts.to_le_bytes());
        time_bytes.extend_from_slice(&off.to_le_bytes());
    }

    let mut assoc: [Vec<(u128, u32)>; 5] = Default::default();
    {
        let [a_systrace, a_pseudo, a_xreq, a_tcp, a_otel] = &mut assoc;
        for (i, s) in spans.iter().enumerate() {
            let off = i as u32;
            for v in [s.systrace_id_req, s.systrace_id_resp]
                .into_iter()
                .flatten()
            {
                a_systrace.push((u128::from(v.raw()), off));
            }
            if let Some(p) = s.pseudo_thread_id {
                a_pseudo.push((u128::from(p.raw()), off));
            }
            for v in [s.x_request_id_req, s.x_request_id_resp]
                .into_iter()
                .flatten()
            {
                a_xreq.push((v.0, off));
            }
            for v in [s.tcp_seq_req, s.tcp_seq_resp].into_iter().flatten() {
                a_tcp.push((u128::from(v), off));
            }
            if let Some(t) = s.otel_trace_id {
                a_otel.push((t.0, off));
            }
        }
    }
    let mut assoc_bytes = Vec::new();
    for pairs in &mut assoc {
        pairs.sort_unstable();
        pairs.dedup();
        assoc_bytes.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for &(key, off) in pairs.iter() {
            assoc_bytes.extend_from_slice(&key.to_le_bytes());
            assoc_bytes.extend_from_slice(&off.to_le_bytes());
        }
    }

    let sections = [span_bytes, row_bytes, time_bytes, assoc_bytes];
    let body_len: usize = sections
        .iter()
        .map(|s| s.len().saturating_add(8))
        .fold(0usize, usize::saturating_add);
    let mut out = Vec::with_capacity(SPAN_SEGMENT_HEADER_LEN.saturating_add(body_len));
    out.extend_from_slice(SPAN_SEGMENT_MAGIC);
    out.push(SPAN_SEGMENT_VERSION);
    out.push(sections.len() as u8);
    out.extend_from_slice(&(body_len as u64).to_le_bytes());
    for section in &sections {
        out.extend_from_slice(&(section.len() as u64).to_le_bytes());
        out.extend_from_slice(section);
    }
    out
}

/// Decode a little-endian u32 from an exactly-4-byte slice, totally.
fn le_u32(b: &[u8], what: &'static str) -> io::Result<u32> {
    b.try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| invalid(what))
}

/// Decode a little-endian u64 from an exactly-8-byte slice, totally.
fn le_u64(b: &[u8], what: &'static str) -> io::Result<u64> {
    b.try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| invalid(what))
}

/// Decode a little-endian u128 from an exactly-16-byte slice, totally.
fn le_u128(b: &[u8], what: &'static str) -> io::Result<u128> {
    b.try_into()
        .map(u128::from_le_bytes)
        .map_err(|_| invalid(what))
}

/// Split a u32-LE count prefix off a section, totally: `(count, rest)`.
fn split_count_prefix<'a>(bytes: &'a [u8], what: &'static str) -> io::Result<(usize, &'a [u8])> {
    let n = le_u32(bytes.get(..4).unwrap_or(&[]), what)?;
    Ok((n as usize, bytes.get(4..).unwrap_or(&[])))
}

fn parse_span_segment_header(header: &[u8]) -> io::Result<SpanSegmentHeader> {
    if header.len() < SPAN_SEGMENT_HEADER_LEN
        || header.get(..8) != Some(SPAN_SEGMENT_MAGIC.as_slice())
    {
        return Err(invalid("bad span segment magic"));
    }
    let version = *header.get(8).ok_or_else(|| invalid("header truncated"))?;
    if version != SPAN_SEGMENT_VERSION {
        return Err(invalid("unsupported span segment version"));
    }
    let sections = *header.get(9).ok_or_else(|| invalid("header truncated"))?;
    if usize::from(sections) != SPAN_SEGMENT_SECTIONS.len() {
        return Err(invalid("unexpected span segment section count"));
    }
    let body_len = le_u64(header.get(10..18).unwrap_or(&[]), "header truncated")?;
    Ok(SpanSegmentHeader {
        version,
        sections,
        body_len,
    })
}

/// Decode a span segment produced by [`encode_span_segment`].
pub fn decode_span_segment(bytes: &[u8]) -> io::Result<SpanSegment> {
    let header = parse_span_segment_header(bytes)?;
    let body = bytes
        .get(SPAN_SEGMENT_HEADER_LEN..)
        .ok_or_else(|| invalid("span segment length mismatch"))?;
    if body.len() as u64 != header.body_len {
        return Err(invalid("span segment length mismatch"));
    }

    let mut cursor = body;
    let mut section = |name: &str| -> io::Result<&[u8]> {
        let len = le_u64(cursor.get(..8).unwrap_or(&[]), "section header truncated")
            .map_err(|_| invalid(&format!("span segment truncated before {name}")))?
            as usize;
        let rest = cursor.get(8..).unwrap_or(&[]);
        let sec = rest
            .get(..len)
            .ok_or_else(|| invalid(&format!("span segment {name} section truncated")))?;
        cursor = rest.get(len..).unwrap_or(&[]);
        Ok(sec)
    };

    let [sec_spans, sec_rows, sec_time, sec_assoc] = SPAN_SEGMENT_SECTIONS;
    let span_bytes = section(sec_spans)?;
    let row_bytes = section(sec_rows)?;
    let time_bytes = section(sec_time)?;
    let assoc_bytes = section(sec_assoc)?;
    if !cursor.is_empty() {
        return Err(invalid("span segment has trailing bytes"));
    }

    let spans = wire::decode_batch(span_bytes)
        .map_err(|e| invalid(&format!("span segment DFW1 batch invalid: {e:?}")))?;

    let rows = {
        let (n, data) = split_count_prefix(row_bytes, "rows section truncated")?;
        if Some(data.len()) != n.checked_mul(4) {
            return Err(invalid("rows section length mismatch"));
        }
        data.chunks_exact(4)
            .map(|c| le_u32(c, "rows section truncated"))
            .collect::<io::Result<Vec<u32>>>()?
    };
    if rows.len() != spans.len() {
        return Err(invalid("rows section does not match span count"));
    }

    let time_index = {
        let (n, data) = split_count_prefix(time_bytes, "time index section truncated")?;
        if Some(data.len()) != n.checked_mul(12) {
            return Err(invalid("time index section length mismatch"));
        }
        data.chunks_exact(12)
            .map(|c| {
                let (ts, off) = c.split_at(8);
                Ok((
                    le_u64(ts, "time index section truncated")?,
                    le_u32(off, "time index section truncated")?,
                ))
            })
            .collect::<io::Result<Vec<(u64, u32)>>>()?
    };

    let mut assoc_index: [Vec<(u128, u32)>; 5] = Default::default();
    let mut cur = assoc_bytes;
    for slot in assoc_index.iter_mut() {
        let (n, rest) = split_count_prefix(cur, "assoc index section truncated")?;
        let entry_bytes = n
            .checked_mul(20)
            .ok_or_else(|| invalid("assoc index entries truncated"))?;
        let entries = rest
            .get(..entry_bytes)
            .ok_or_else(|| invalid("assoc index entries truncated"))?;
        *slot = entries
            .chunks_exact(20)
            .map(|c| {
                let (key, off) = c.split_at(16);
                Ok((
                    le_u128(key, "assoc index entries truncated")?,
                    le_u32(off, "assoc index entries truncated")?,
                ))
            })
            .collect::<io::Result<Vec<(u128, u32)>>>()?;
        cur = rest.get(entry_bytes..).unwrap_or(&[]);
    }
    if !cur.is_empty() {
        return Err(invalid("assoc index has trailing bytes"));
    }

    Ok(SpanSegment {
        spans,
        rows,
        time_index,
        assoc_index,
    })
}

/// Validate a span segment file's header without reading the body: only
/// the fixed header bytes are read, and the declared body length is
/// checked against file metadata.
pub fn read_span_segment_header(path: &Path) -> io::Result<SpanSegmentHeader> {
    let mut f = fs::File::open(path)?;
    let mut header = [0u8; SPAN_SEGMENT_HEADER_LEN];
    f.read_exact(&mut header)
        .map_err(|_| invalid("bad span segment magic"))?;
    let parsed = parse_span_segment_header(&header)?;
    // checked_sub so a hostile declared length near u64::MAX cannot wrap.
    if fs::metadata(path)?
        .len()
        .checked_sub(SPAN_SEGMENT_HEADER_LEN as u64)
        != Some(parsed.body_len)
    {
        return Err(invalid("span segment length mismatch"));
    }
    Ok(parsed)
}

/// One span segment file found by [`scan_span_segments`]: its path plus
/// the validated header.
#[derive(Debug, Clone)]
pub struct ScannedSegment {
    /// Absolute path of the `.dfspan` file.
    pub path: std::path::PathBuf,
    /// Its validated header.
    pub header: SpanSegmentHeader,
}

/// Result of a segment-catalog scan: the valid segment files of one
/// shard, in lexicographic path order (spill filenames embed the time
/// bucket and segment id, so this is also spill order), plus how many
/// candidate files failed header validation.
#[derive(Debug, Clone, Default)]
pub struct SegmentScan {
    /// Valid segments, sorted by path.
    pub segments: Vec<ScannedSegment>,
    /// Files matching the shard's naming scheme whose header (or length)
    /// was invalid. Counted, never panicked over: a torn spill or stray
    /// garbage must not take recovery down.
    pub rejected: usize,
}

/// Scan `dir` for shard `shard`'s span segment files (the crash-recovery
/// catalog scan). Only files named `shard{shard:04}-*.dfspan` — the
/// pattern [`SpanStore::spill_before`](crate::SpanStore::spill_before)
/// writes — are considered; each is header-validated via
/// [`read_span_segment_header`]. A missing directory yields an empty
/// scan, not an error (a node that never spilled has nothing to recover).
pub fn scan_span_segments(dir: &Path, shard: u16) -> io::Result<SegmentScan> {
    let mut scan = SegmentScan::default();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(e),
    };
    let prefix = format!("shard{shard:04}-");
    let mut candidates: Vec<std::path::PathBuf> = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with(&prefix) && name.ends_with(".dfspan") && path.is_file() {
            candidates.push(path);
        }
    }
    candidates.sort();
    for path in candidates {
        match read_span_segment_header(&path) {
            Ok(header) => scan.segments.push(ScannedSegment { path, header }),
            Err(_) => scan.rejected += 1,
        }
    }
    Ok(scan)
}

/// Create a directory (and parents) if absent. Exists so crates under
/// the fs-confinement lint (df-cluster's per-node tier directories) can
/// set up spill paths without touching `std::fs` themselves.
pub fn ensure_dir(path: &Path) -> io::Result<()> {
    fs::create_dir_all(path)
}

/// Export all spans as JSON lines.
pub fn export_spans_json(store: &SpanStore, path: &Path) -> io::Result<usize> {
    let mut f = io::BufWriter::new(fs::File::create(path)?);
    let mut n = 0usize;
    for span in store.iter() {
        let line = serde_json::to_string(span.as_ref())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        n = n.saturating_add(1);
    }
    f.flush()?;
    Ok(n)
}

/// Load spans back from a JSON-lines file, streaming line by line instead
/// of reading the whole file into memory.
pub fn import_spans_json(path: &Path) -> io::Result<Vec<Span>> {
    let f = io::BufReader::new(fs::File::open(path)?);
    let mut spans = Vec::new();
    for line in f.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        spans.push(
            serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        );
    }
    Ok(spans)
}

/// Unique-per-test temp directory with drop cleanup, for crate-internal
/// tests that touch the filesystem. Parallel test runs get distinct
/// paths (process id + a per-process counter), and the directory is
/// removed when the guard drops — even on assertion failure.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> TestDir {
    // Uniqueness: the tag is unique per call site, the pid separates
    // parallel test *processes*, and the nanosecond stamp guards against
    // a stale dir surviving a previous crashed run.
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos();
    let path =
        std::env::temp_dir().join(format!("df-storage-{tag}-{}-{stamp}", std::process::id()));
    fs::create_dir_all(&path).expect("create test dir");
    TestDir { path }
}

/// Guard returned by [`test_dir`].
#[cfg(test)]
pub(crate) struct TestDir {
    path: std::path::PathBuf,
}

#[cfg(test)]
impl TestDir {
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagtable::TagEncoding;
    use df_types::ids::*;
    use df_types::TimeNs;

    #[test]
    fn segment_round_trip_and_validation() {
        let dir = test_dir("segments");
        let path = dir.path().join("seg1.dfseg");

        let mut t = TagTable::new(TagEncoding::SmartInt, 3);
        let rows: Vec<Vec<u32>> = (0..100).map(|i| vec![i, i * 2, i * 3]).collect();
        t.ingest_int_rows(rows.iter().map(|r| r.as_slice()));

        let written = write_segment(&t, &path).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        let body_len = read_segment_header(&path).unwrap();
        assert_eq!(body_len + 16, written);
    }

    #[test]
    fn corrupt_segment_rejected() {
        let dir = test_dir("segments-bad");
        let path = dir.path().join("bad.dfseg");
        fs::write(&path, b"NOTASEGMENT").unwrap();
        assert!(read_segment_header(&path).is_err());
        // Good magic, truncated body: metadata check catches it without
        // reading the (absent) body.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&100u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 10]);
        fs::write(&path, &bytes).unwrap();
        assert!(read_segment_header(&path).is_err());
    }

    #[test]
    fn hostile_declared_length_is_rejected_without_wrapping() {
        // A declared length near u64::MAX would wrap `16 + len` back into
        // range and validate against a tiny file; the checked_sub form
        // must reject it (and not overflow under overflow-checks).
        let dir = test_dir("segments-hostile");
        let path = dir.path().join("hostile.dfseg");
        for declared in [u64::MAX, u64::MAX - 15, u64::MAX - 16] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(SEGMENT_MAGIC);
            bytes.extend_from_slice(&declared.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 32]);
            fs::write(&path, &bytes).unwrap();
            assert!(
                read_segment_header(&path).is_err(),
                "declared {declared:#x} must be rejected"
            );
        }
    }

    fn demo_span(i: u64) -> df_types::Span {
        use df_types::l7::L7Protocol;
        use df_types::net::FiveTuple;
        use df_types::span::*;
        use df_types::tags::TagSet;
        use std::net::Ipv4Addr;
        Span {
            span_id: SpanId(i + 1),
            kind: SpanKind::Net,
            capture: CapturePoint {
                node: NodeId(2),
                tap_side: TapSide::ClientNodeNic,
                interface: Some("eth0".into()),
            },
            agent: AgentId(2),
            flow_id: FlowId(9),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: format!("GET /seg/{i}"),
            req_time: TimeNs(1_000 - i * 10),
            resp_time: TimeNs(1_000 - i * 10 + 5),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 1,
            resp_bytes: 2,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: Some(SysTraceId(3 + i)),
            systrace_id_resp: None,
            pseudo_thread_id: i.is_multiple_of(2).then_some(PseudoThreadId(40 + i)),
            x_request_id_req: Some(XRequestId(u128::from(500 + i))),
            x_request_id_resp: None,
            tcp_seq_req: Some(77 + i as u32),
            tcp_seq_resp: Some(77 + i as u32),
            otel_trace_id: i
                .is_multiple_of(3)
                .then_some(OtelTraceId(u128::from(9_000 + i))),
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    #[test]
    fn span_segment_round_trips_spans_rows_and_indexes() {
        let spans: Vec<df_types::Span> = (0..10).map(demo_span).collect();
        let rows: Vec<u32> = (0..10u32).map(|r| r * 3 + 1).collect();
        let bytes = encode_span_segment(&spans, &rows);
        let seg = decode_span_segment(&bytes).unwrap();
        assert_eq!(seg.spans, spans);
        assert_eq!(seg.rows, rows);
        // Time image covers every offset and is sorted by timestamp
        // (input times are descending, so this exercises the sort).
        assert_eq!(seg.time_index.len(), 10);
        assert!(seg.time_index.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(seg.time_index[0].1, 9, "oldest span is the last offset");
        // Association images: systrace/x_request/tcp_seq on every span,
        // pseudo-thread on half, otel on a third. tcp_seq req == resp is
        // deduped.
        assert_eq!(seg.assoc_index[0].len(), 10);
        assert_eq!(seg.assoc_index[1].len(), 5);
        assert_eq!(seg.assoc_index[2].len(), 10);
        assert_eq!(seg.assoc_index[3].len(), 10);
        assert_eq!(seg.assoc_index[4].len(), 4);
        assert!(seg
            .assoc_index
            .iter()
            .all(|ix| ix.windows(2).all(|w| w[0] <= w[1])));
    }

    #[test]
    fn span_segment_header_reads_without_body_io() {
        let dir = test_dir("span-seg");
        let path = dir.path().join("b0.dfspan");
        let spans: Vec<df_types::Span> = (0..4).map(demo_span).collect();
        let rows: Vec<u32> = (0..4).collect();
        let bytes = encode_span_segment(&spans, &rows);
        fs::write(&path, &bytes).unwrap();

        let header = read_span_segment_header(&path).unwrap();
        assert_eq!(header.version, SPAN_SEGMENT_VERSION);
        assert_eq!(usize::from(header.sections), SPAN_SEGMENT_SECTIONS.len());
        assert_eq!(
            SPAN_SEGMENT_HEADER_LEN as u64 + header.body_len,
            fs::metadata(&path).unwrap().len()
        );

        // Truncated file: header parse succeeds but metadata disagrees.
        fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        assert!(read_span_segment_header(&path).is_err());
        // Garbage: magic check fails.
        fs::write(&path, b"NOTASPANSEGMENT_AT_ALL").unwrap();
        assert!(read_span_segment_header(&path).is_err());
    }

    #[test]
    fn corrupt_span_segment_bodies_rejected() {
        let spans: Vec<df_types::Span> = (0..3).map(demo_span).collect();
        let rows: Vec<u32> = (0..3).collect();
        let good = encode_span_segment(&spans, &rows);

        // Truncation anywhere inside the body fails cleanly.
        assert!(decode_span_segment(&good[..good.len() - 1]).is_err());
        assert!(decode_span_segment(&good[..SPAN_SEGMENT_HEADER_LEN + 3]).is_err());
        // Wrong version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(decode_span_segment(&bad).is_err());
        // Rows/spans count mismatch: patch the rows count field.
        let mut bad = good;
        // rows section starts after header + 8-byte len + span bytes; its
        // first 4 bytes are the count. Find it via the declared span
        // section length.
        let span_len = u64::from_le_bytes(
            bad[SPAN_SEGMENT_HEADER_LEN..SPAN_SEGMENT_HEADER_LEN + 8]
                .try_into()
                .unwrap(),
        ) as usize;
        let rows_count_at = SPAN_SEGMENT_HEADER_LEN + 8 + span_len + 8;
        bad[rows_count_at] = 2;
        assert!(decode_span_segment(&bad).is_err());
    }

    #[test]
    fn hostile_span_section_lengths_rejected_without_wrapping() {
        let spans: Vec<df_types::Span> = (0..2).map(demo_span).collect();
        let rows: Vec<u32> = (0..2).collect();
        let good = encode_span_segment(&spans, &rows);

        // First section claims a near-u64::MAX length: slicing math must
        // not wrap around the body, it must error.
        for hostile in [u64::MAX, u64::MAX - 7, good.len() as u64 * 2] {
            let mut bad = good.clone();
            bad[SPAN_SEGMENT_HEADER_LEN..SPAN_SEGMENT_HEADER_LEN + 8]
                .copy_from_slice(&hostile.to_le_bytes());
            assert!(
                decode_span_segment(&bad).is_err(),
                "section length {hostile:#x} must be rejected"
            );
        }

        // Hostile assoc-index count: `n.checked_mul(20)` guards the pair
        // math, so a count of u32::MAX fails cleanly instead of wrapping.
        // The assoc section is last; its first image's count is the first
        // 4 bytes after the section length.
        let mut offset = SPAN_SEGMENT_HEADER_LEN;
        for _ in 0..3 {
            let len = u64::from_le_bytes(bad_slice(&good, offset, 8).try_into().unwrap()) as usize;
            offset += 8 + len;
        }
        let assoc_count_at = offset + 8;
        let mut bad = good.clone();
        bad[assoc_count_at..assoc_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_span_segment(&bad).is_err());
    }

    fn bad_slice(b: &[u8], at: usize, n: usize) -> &[u8] {
        &b[at..at + n]
    }

    #[test]
    fn segment_scan_finds_valid_files_and_counts_corrupt_ones() {
        let dir = test_dir("span-scan");
        let spans: Vec<df_types::Span> = (0..3).map(demo_span).collect();
        let rows: Vec<u32> = (0..3).collect();
        let bytes = encode_span_segment(&spans, &rows);
        // Two valid segments for shard 2, written out of order to check
        // the scan sorts by path (= spill order).
        fs::write(
            dir.path()
                .join("shard0002-b000000000005-seg00000001.dfspan"),
            &bytes,
        )
        .unwrap();
        fs::write(
            dir.path()
                .join("shard0002-b000000000001-seg00000000.dfspan"),
            &bytes,
        )
        .unwrap();
        // A different shard's segment: ignored.
        fs::write(
            dir.path()
                .join("shard0003-b000000000001-seg00000002.dfspan"),
            &bytes,
        )
        .unwrap();
        // A corrupt file matching shard 2's pattern: counted, not fatal.
        fs::write(
            dir.path()
                .join("shard0002-b000000000009-seg00000009.dfspan"),
            b"garbage",
        )
        .unwrap();
        // A truncated-but-magic-valid file: length check rejects it.
        fs::write(
            dir.path()
                .join("shard0002-b000000000010-seg00000010.dfspan"),
            &bytes[..bytes.len() - 1],
        )
        .unwrap();
        // Unrelated noise: skipped silently.
        fs::write(dir.path().join("notes.txt"), b"hi").unwrap();

        let scan = scan_span_segments(dir.path(), 2).unwrap();
        assert_eq!(scan.segments.len(), 2);
        assert_eq!(scan.rejected, 2);
        assert!(scan.segments[0]
            .path
            .to_str()
            .unwrap()
            .contains("seg00000000"));
        assert!(scan.segments[1]
            .path
            .to_str()
            .unwrap()
            .contains("seg00000001"));

        // A directory that never existed is an empty scan, not an error.
        let empty = scan_span_segments(&dir.path().join("nope"), 2).unwrap();
        assert!(empty.segments.is_empty());
        assert_eq!(empty.rejected, 0);
    }

    #[test]
    fn span_json_round_trip() {
        let mut store = SpanStore::new();
        let mut s = demo_span(0);
        s.span_id = SpanId(0);
        s.endpoint = "GET /json".to_string();
        store.insert(s);

        let dir = test_dir("jsonl");
        let path = dir.path().join("spans.jsonl");
        assert_eq!(export_spans_json(&store, &path).unwrap(), 1);
        let back = import_spans_json(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].endpoint, "GET /json");
        assert_eq!(back[0].tcp_seq_req, Some(77));
    }
}
