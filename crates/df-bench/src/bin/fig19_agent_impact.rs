//! Fig. 19 (Appendix B) — DeepFlow Agent's impact on a latency-sensitive
//! single-VM Nginx served by wrk2: baseline vs eBPF-module-only vs full
//! agent, max throughput and p50/p90 latency under increasing load.
//!
//! The paper stresses this is the *theoretically strictest* setting: Nginx
//! does ~1 ms of work per request and everything (Nginx, wrk2, the agent)
//! shares one 8-vCPU VM, so the agent's user-space processing directly
//! steals serving capacity. The `cpu_share` values below are calibrated to
//! the paper's measured staircase (44k → 31k → 27k RPS); the in-kernel
//! hook costs ride on the measured Fig. 13 model.

use deepflow::mesh::{Behavior, ClientSpec, ServiceSpec, World};
use deepflow::net::fabric::{Fabric, FabricConfig};
use deepflow::net::topology::Topology;
use deepflow::prelude::*;
use deepflow::types::DurationNs as D;
use df_bench::report;
use std::net::Ipv4Addr;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Baseline,
    EbpfOnly,
    FullAgent,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::EbpfOnly => "eBPF module",
            Mode::FullAgent => "full agent",
        }
    }
    /// Calibrated against Appendix B's staircase (see module docs).
    fn cpu_share(self) -> f64 {
        match self {
            Mode::Baseline => 0.0,
            Mode::EbpfOnly => 0.42,
            Mode::FullAgent => 0.63,
        }
    }
}

/// One point: single-VM nginx + wrk2 at `rps` for `secs`.
fn run(mode: Mode, rps: f64, secs: u64) -> (f64, D, D) {
    let mut topo = Topology::new();
    let node = topo.add_simple_node("vm", Ipv4Addr::new(192, 168, 0, 1));
    let nginx_ip = Ipv4Addr::new(10, 0, 0, 10);
    let wrk_ip = Ipv4Addr::new(10, 0, 0, 11);
    topo.add_pod(node, "nginx", nginx_ip, "default", "nginx", "nginx");
    topo.add_pod(node, "wrk2", wrk_ip, "default", "wrk2", "wrk2");
    let mut world = World::new(Fabric::new(topo, FabricConfig::default()), 0xf19);
    world.add_service(
        ServiceSpec::http("nginx", node, nginx_ip, 80)
            .with_workers(8)
            .with_compute(D::from_micros(195))
            .with_behavior(Behavior::Leaf),
    );
    let handles_client = world.add_client(ClientSpec {
        rps,
        duration: D::from_secs(secs),
        connections: 8,
        endpoints: vec![("GET /index.html".to_string(), 1)],
        ..ClientSpec::http("wrk2", node, wrk_ip, "nginx")
    });

    let mut deployment = match mode {
        Mode::Baseline => None,
        Mode::EbpfOnly => Some(
            Deployment::install_with(&mut world, |n| {
                let mut c = deepflow::agent::AgentConfig::ebpf_only(n);
                c.cpu_share = mode.cpu_share();
                c
            })
            .expect("install"),
        ),
        Mode::FullAgent => Some(
            Deployment::install_with(&mut world, |n| {
                let mut c = deepflow::agent::AgentConfig::for_node(n);
                c.cpu_share = mode.cpu_share();
                c
            })
            .expect("install"),
        ),
    };
    // Drive; drop spans as they come (the server is off-VM in App. B).
    let horizon = TimeNs::from_secs(secs) + D::from_millis(500);
    match &mut deployment {
        Some(df) => {
            let mut t = D::from_millis(250);
            while TimeNs::ZERO + t < horizon {
                world.run_until(TimeNs::ZERO + t);
                std::hint::black_box(df.poll_collect(&mut world, TimeNs::ZERO + t));
                t += D::from_millis(250);
            }
            world.run_until(horizon);
            std::hint::black_box(df.poll_collect(&mut world, horizon));
        }
        None => world.run_until(horizon),
    }
    let client = &world.clients[handles_client];
    (
        client.completed as f64 / secs as f64,
        client.hist.p50(),
        client.hist.p90(),
    )
}

fn main() {
    report::header("Fig. 19: max throughput per mode (offered 60k RPS, single VM)");
    let mut max_rps = Vec::new();
    let mut rows = Vec::new();
    for mode in [Mode::Baseline, Mode::EbpfOnly, Mode::FullAgent] {
        let (rps, p50, p90) = run(mode, 60_000.0, 2);
        rows.push(vec![
            mode.label().to_string(),
            format!("{rps:.0}"),
            format!("{p50}"),
            format!("{p90}"),
        ]);
        max_rps.push((mode, rps));
    }
    report::table(
        &["mode", "max RPS", "p50 (saturated)", "p90 (saturated)"],
        &rows,
    );

    report::header("Fig. 19(a)/(b): p50 / p90 latency vs offered throughput");
    let base_max = max_rps[0].1;
    let mut curve = Vec::new();
    for frac in [0.3, 0.5, 0.6, 0.7, 0.85] {
        let rps = base_max * frac;
        let (_, b50, b90) = run(Mode::Baseline, rps, 2);
        let (_, e50, e90) = run(Mode::EbpfOnly, rps, 2);
        let (_, a50, a90) = run(Mode::FullAgent, rps, 2);
        curve.push(vec![
            format!("{rps:.0}"),
            format!("{b50}"),
            format!("{e50}"),
            format!("{a50}"),
            format!("{b90}"),
            format!("{e90}"),
            format!("{a90}"),
        ]);
    }
    report::table(
        &[
            "offered RPS",
            "base p50",
            "eBPF p50",
            "agent p50",
            "base p90",
            "eBPF p90",
            "agent p90",
        ],
        &curve,
    );

    println!();
    report::compare("baseline max RPS", 44_000.0, max_rps[0].1, 1.4);
    report::compare("eBPF-only max RPS", 31_000.0, max_rps[1].1, 1.4);
    report::compare("full-agent max RPS", 27_000.0, max_rps[2].1, 1.4);
    println!("\n  Shape: baseline > eBPF module > full agent, with the knee of every");
    println!("  latency curve shifting left as more of the VM goes to monitoring —");
    println!("  the Appendix B staircase. ('In a production application scenario, the");
    println!("  influence of DeepFlow Agent will be much smaller.')");

    report::save_json(
        "fig19_agent_impact",
        &serde_json::json!({
            "max_rps": max_rps.iter().map(|(m, r)| serde_json::json!({
                "mode": m.label(), "rps": r,
            })).collect::<Vec<_>>(),
            "paper_max_rps": {"baseline": 44000, "ebpf": 31000, "agent": 27000},
        }),
    );
}
