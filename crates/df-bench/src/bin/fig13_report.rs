//! Fig. 13 — per-event instrumentation overhead, measured in real wall
//! time over this repository's actual hook machinery (dispatch, the
//! (pid,tid) enter-map join, payload copy, perf-ring publish).
//!
//! Protocol mirrors §5.1: deploy an empty program for the floor, then the
//! DeepFlow program, invoke each ABI 100,000 times, report the mean
//! per-event cost and DeepFlow's addition over the empty baseline.

use bytes::Bytes;
use df_agent::ebpf::{EmptyProgram, SharedSyscallProgram};
use df_bench::report;
use df_kernel::hooks::{
    AttachPoint, HookContext, HookEngine, HookOverheadModel, HookPhase, ProbeKind,
};
use df_types::{FiveTuple, NodeId, Pid, SocketId, SyscallAbi, Tid, TimeNs};
use std::net::Ipv4Addr;
use std::time::Instant;

const ITERS: u32 = 100_000;

fn ctx<'a>(abi: SyscallAbi, phase: HookPhase, payload: &'a [u8]) -> HookContext<'a> {
    HookContext {
        phase,
        abi: Some(abi),
        symbol: None,
        ts: TimeNs(1),
        pid: Pid(1),
        tid: Tid(1),
        coroutine: None,
        process_name: "bench",
        node: NodeId(1),
        socket_id: Some(SocketId(1)),
        five_tuple: Some(FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )),
        tcp_seq: Some(1000),
        direction: Some(abi.direction()),
        byte_len: payload.len(),
        payload: Some(payload),
        first_syscall: true,
    }
}

/// Wall-clock ns per enter+exit pair with the given program installed.
fn measure(abi: SyscallAbi, kind: ProbeKind, deepflow: bool) -> f64 {
    let mut engine = HookEngine::new(1 << 20, HookOverheadModel::default());
    if deepflow {
        let prog = SharedSyscallProgram::new(256);
        engine
            .attach(AttachPoint::SyscallEnter(abi), kind, Box::new(prog.clone()))
            .unwrap();
        engine
            .attach(AttachPoint::SyscallExit(abi), kind, Box::new(prog))
            .unwrap();
    } else {
        engine
            .attach(
                AttachPoint::SyscallEnter(abi),
                kind,
                Box::new(EmptyProgram::new()),
            )
            .unwrap();
        engine
            .attach(
                AttachPoint::SyscallExit(abi),
                kind,
                Box::new(EmptyProgram::new()),
            )
            .unwrap();
    }
    let payload = Bytes::from(vec![0x41u8; 256]);
    let enter = ctx(abi, HookPhase::Enter, &payload);
    let exit = ctx(abi, HookPhase::Exit, &payload);
    let t0 = Instant::now();
    for _ in 0..ITERS {
        engine.fire(&AttachPoint::SyscallEnter(abi), &enter);
        engine.fire(&AttachPoint::SyscallExit(abi), &exit);
        // Keep the ring from filling (the agent would drain it).
        if engine.ring.len() > (1 << 19) {
            engine.ring.drain_all();
        }
    }
    t0.elapsed().as_nanos() as f64 / f64::from(ITERS)
}

fn main() {
    report::header("Fig. 13(a): per-event hook cost, kprobe vs tracepoint (wall clock)");
    println!("  {ITERS} enter+exit pairs per ABI; 'added' = DeepFlow program − empty program\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for abi in SyscallAbi::ALL {
        for kind in [ProbeKind::Kprobe, ProbeKind::Tracepoint] {
            let empty = measure(abi, kind, false);
            let full = measure(abi, kind, true);
            let added = (full - empty).max(0.0);
            rows.push(vec![
                abi.name().to_string(),
                format!("{kind:?}"),
                format!("{empty:.0}"),
                format!("{full:.0}"),
                format!("{added:.0}"),
            ]);
            results.push(serde_json::json!({
                "abi": abi.name(), "kind": format!("{kind:?}"),
                "empty_ns": empty, "deepflow_ns": full, "added_ns": added,
            }));
        }
    }
    report::table(
        &[
            "ABI",
            "probe",
            "empty ns/pair",
            "deepflow ns/pair",
            "added ns/pair",
        ],
        &rows,
    );

    report::header("Fig. 13(b): uprobe-class extension points");
    let mut engine = HookEngine::new(1 << 20, HookOverheadModel::default());
    let tls = df_agent::ebpf::SharedTlsProgram::new(256);
    engine
        .attach(
            AttachPoint::UserFnEnter("ssl_read"),
            ProbeKind::Uprobe,
            Box::new(tls.clone()),
        )
        .unwrap();
    engine
        .attach(
            AttachPoint::UserFnExit("ssl_read"),
            ProbeKind::Uretprobe,
            Box::new(tls),
        )
        .unwrap();
    let payload = Bytes::from(vec![0x42u8; 256]);
    let mut enter = ctx(SyscallAbi::Read, HookPhase::Enter, &payload);
    enter.abi = None;
    enter.symbol = Some("ssl_read");
    let mut exit = enter.clone();
    exit.phase = HookPhase::Exit;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        engine.fire(&AttachPoint::UserFnEnter("ssl_read"), &enter);
        engine.fire(&AttachPoint::UserFnExit("ssl_read"), &exit);
        if engine.ring.len() > (1 << 19) {
            engine.ring.drain_all();
        }
    }
    let uprobe_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);
    println!("  ssl_read uprobe+uretprobe pair: {uprobe_ns:.0} ns/event (machinery only —");
    println!("  the paper's 6153 ns includes the real kernel's user->kernel trap, which the");
    println!(
        "  virtual-time model charges separately: {} per uprobe firing)\n",
        df_kernel::HookOverheadModel::default().uprobe_ns
    );

    // Shape checks vs the paper.
    let added_vals: Vec<f64> = results
        .iter()
        .map(|r| r["added_ns"].as_f64().unwrap())
        .collect();
    let mean_added = added_vals.iter().sum::<f64>() / added_vals.len() as f64;
    report::compare(
        "mean added ns per hook pair (paper <=588)",
        588.0,
        mean_added,
        8.0,
    );
    println!("\n  Shape: every ABI's added cost is sub-microsecond — negligible against");
    println!("  syscall I/O costs, the paper's §5.1 conclusion.");

    report::save_json(
        "fig13_hook_overhead",
        &serde_json::json!({ "per_abi": results, "uprobe_pair_ns": uprobe_ns }),
    );
}
