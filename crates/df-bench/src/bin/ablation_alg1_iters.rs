//! Ablation — Algorithm 1's iteration cap (paper default: 30). Sweeps the
//! cap against deep Bookinfo traces and reports trace completeness vs
//! assembly cost.

use deepflow::mesh::apps;
use deepflow::prelude::*;
use deepflow::server::assemble::AssembleConfig;
use deepflow::server::sharded::assemble_trace_sharded;
use df_bench::report;
use std::time::Instant;

fn main() {
    report::header("Ablation: Algorithm 1 iteration cap (paper default: 30)");
    let mut make_tracer = || apps::no_tracer();
    let (mut world, _h) = apps::bookinfo(40.0, DurationNs::from_secs(3), &mut make_tracer);
    let mut df = Deployment::install(&mut world).expect("install");
    df.run(
        &mut world,
        TimeNs::from_secs(4),
        DurationNs::from_millis(200),
    );
    println!("  corpus: {} spans from Bookinfo\n", df.server.span_count());

    // Start points: productpage server-side spans (the user's entry).
    let starts: Vec<SpanId> = df
        .server
        .span_list(&SpanQuery {
            endpoint: Some("GET /productpage".to_string()),
            limit: 50,
            ..Default::default()
        })
        .iter()
        .filter(|s| s.capture.tap_side == TapSide::ServerProcess)
        .map(|s| s.span_id)
        .collect();
    let full_cfg = AssembleConfig {
        iterations: 100,
        ..Default::default()
    };
    let full_sizes: Vec<usize> = starts
        .iter()
        .map(|s| assemble_trace_sharded(df.server.store(), *s, &full_cfg).len())
        .collect();
    let full_total: usize = full_sizes.iter().sum();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for iters in [1usize, 2, 3, 5, 10, 30] {
        let cfg = AssembleConfig {
            iterations: iters,
            ..Default::default()
        };
        let t0 = Instant::now();
        let sizes: Vec<usize> = starts
            .iter()
            .map(|s| assemble_trace_sharded(df.server.store(), *s, &cfg).len())
            .collect();
        let elapsed = t0.elapsed().as_secs_f64() / starts.len() as f64;
        let total: usize = sizes.iter().sum();
        let completeness = 100.0 * total as f64 / full_total.max(1) as f64;
        rows.push(vec![
            iters.to_string(),
            format!("{:.1}", total as f64 / starts.len() as f64),
            format!("{completeness:.1}%"),
            format!("{:.2} ms", elapsed * 1e3),
        ]);
        json.push(serde_json::json!({
            "iterations": iters,
            "mean_spans": total as f64 / starts.len() as f64,
            "completeness_pct": completeness,
            "mean_assembly_ms": elapsed * 1e3,
        }));
    }
    report::table(
        &[
            "iteration cap",
            "mean spans/trace",
            "completeness",
            "assembly time",
        ],
        &rows,
    );
    println!("\n  Reading: the search reaches a fixed point after a handful of iterations");
    println!("  on real topologies — the default cap of 30 is pure headroom (it exists to");
    println!("  bound pathological joins), costing nothing when traces converge early.");
    report::save_json("ablation_alg1_iters", &serde_json::json!({ "sweep": json }));
}
