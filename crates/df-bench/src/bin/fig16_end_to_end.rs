//! Fig. 16 — end-to-end performance: throughput/latency of the Spring Boot
//! demo and Istio Bookinfo under no tracing, an intrusive SDK, and
//! DeepFlow; plus spans-per-trace.

use df_bench::fig16::{max_throughput, run_point, App, Variant};
use df_bench::report;

const DF_SHARE: f64 = 0.08; // calibrated agent user-space share (see fig16.rs)

fn sweep(app: App, sdk: Variant, paper: (f64, f64, f64, f64, f64)) -> serde_json::Value {
    let name = match app {
        App::SpringBoot => "Spring Boot demo (Fig. 16a)",
        App::Bookinfo => "Istio Bookinfo (Fig. 16b)",
    };
    report::header(&format!("{name}: saturation throughput per variant"));
    let secs = 4;
    let base = max_throughput(app, Variant::Baseline, 4000.0, secs);
    let sdk_pt = max_throughput(app, sdk, 4000.0, secs);
    let df_pt = max_throughput(
        app,
        Variant::DeepFlow {
            cpu_share: DF_SHARE,
        },
        4000.0,
        secs,
    );

    let rows = vec![
        vec![
            "baseline".to_string(),
            format!("{:.0}", base.achieved),
            "-".into(),
            format!("{}", base.p50),
            format!("{}", base.p99),
            "-".into(),
        ],
        vec![
            sdk.label(),
            format!("{:.0}", sdk_pt.achieved),
            format!("{:.1}%", 100.0 * (1.0 - sdk_pt.achieved / base.achieved)),
            format!("{}", sdk_pt.p50),
            format!("{}", sdk_pt.p99),
            format!("{:.0}", sdk_pt.spans_per_trace),
        ],
        vec![
            "deepflow".to_string(),
            format!("{:.0}", df_pt.achieved),
            format!("{:.1}%", 100.0 * (1.0 - df_pt.achieved / base.achieved)),
            format!("{}", df_pt.p50),
            format!("{}", df_pt.p99),
            format!("{:.0}", df_pt.spans_per_trace),
        ],
    ];
    report::table(
        &[
            "variant",
            "max RPS",
            "overhead",
            "p50",
            "p99",
            "spans/trace",
        ],
        &rows,
    );

    // Latency-vs-throughput curve below saturation, all variants.
    report::header(&format!("{name}: latency under increasing offered load"));
    let mut curve_rows = Vec::new();
    for frac in [0.5, 0.7, 0.85, 0.95] {
        let rps = base.achieved * frac;
        let b = run_point(app, Variant::Baseline, rps, 3);
        let s = run_point(app, sdk, rps, 3);
        let d = run_point(
            app,
            Variant::DeepFlow {
                cpu_share: DF_SHARE,
            },
            rps,
            3,
        );
        curve_rows.push(vec![
            format!("{:.0}", rps),
            format!("{}", b.p50),
            format!("{}", s.p50),
            format!("{}", d.p50),
            format!("{}", b.p99),
            format!("{}", d.p99),
        ]);
    }
    report::table(
        &[
            "offered RPS",
            "base p50",
            "sdk p50",
            "df p50",
            "base p99",
            "df p99",
        ],
        &curve_rows,
    );

    let (p_base, p_sdk_oh, p_df_oh, p_sdk_spans, p_df_spans) = paper;
    println!();
    report::compare("baseline max RPS", p_base, base.achieved, 1.5);
    report::compare(
        "SDK overhead (%)",
        p_sdk_oh,
        100.0 * (1.0 - sdk_pt.achieved / base.achieved),
        3.0,
    );
    report::compare(
        "DeepFlow overhead (%)",
        p_df_oh,
        100.0 * (1.0 - df_pt.achieved / base.achieved),
        2.5,
    );
    report::compare("SDK spans/trace", p_sdk_spans, sdk_pt.spans_per_trace, 1.5);
    report::compare(
        "DeepFlow spans/trace",
        p_df_spans,
        df_pt.spans_per_trace,
        1.5,
    );

    serde_json::json!({
        "baseline_rps": base.achieved,
        "sdk_rps": sdk_pt.achieved,
        "deepflow_rps": df_pt.achieved,
        "sdk_overhead_pct": 100.0 * (1.0 - sdk_pt.achieved / base.achieved),
        "deepflow_overhead_pct": 100.0 * (1.0 - df_pt.achieved / base.achieved),
        "sdk_spans_per_trace": sdk_pt.spans_per_trace,
        "deepflow_spans_per_trace": df_pt.spans_per_trace,
    })
}

fn main() {
    // Paper numbers: (baseline RPS, SDK overhead %, DeepFlow overhead %,
    // SDK spans/trace, DeepFlow spans/trace).
    let a = sweep(
        App::SpringBoot,
        Variant::JaegerLike,
        (1420.0, 4.0, 7.0, 4.0, 18.0),
    );
    let b = sweep(
        App::Bookinfo,
        Variant::ZipkinLike,
        (670.0, 3.0, 4.5, 6.0, 38.0),
    );
    println!("\n  Shape: intrusive SDK < DeepFlow in overhead, both single-digit percent;");
    println!("  DeepFlow produces 4-6x the spans per trace. 'The performance of DeepFlow is");
    println!("  just marginally inferior to the other tracing tools ... but significantly");
    println!("  more spans per trace.' (§5.4)");
    report::save_json(
        "fig16_end_to_end",
        &serde_json::json!({ "springboot": a, "bookinfo": b }),
    );
}
