//! Fig. 15 — user query delay: span-list queries over a 15-minute window
//! and full trace assemblies (Algorithm 1), sequential and random, measured
//! in real wall time against a populated server.
//!
//! Protocol mirrors §5.3: load generators create spans/traces first; user
//! queries are then issued serially.

use deepflow::mesh::apps;
use deepflow::prelude::*;
use df_bench::report;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    report::header("Fig. 15 setup: generating spans with the Bookinfo workload");
    let mut make_tracer = || apps::no_tracer();
    // 15 virtual minutes of traffic (the paper's span-list window).
    let (mut world, _handles) = apps::bookinfo(30.0, DurationNs::from_secs(900), &mut make_tracer);
    let mut df = Deployment::install(&mut world).expect("install");
    df.run(&mut world, TimeNs::from_secs(905), DurationNs::from_secs(5));
    println!("  spans stored: {}", df.server.span_count());

    // --- span list queries (15-minute window, one UI page) ---
    report::header("Span-list query over the full 15-minute window (1000-row page)");
    let q = SpanQuery {
        limit: 1000,
        errors_only: false,
        ..SpanQuery::window(TimeNs::ZERO, TimeNs::from_secs(900))
    };
    // Warm once.
    let warm = df.server.span_list(&q).len();
    let runs = 50;
    let t0 = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(df.server.span_list(&q));
    }
    let list_s = t0.elapsed().as_secs_f64() / f64::from(runs);
    println!("  {warm} spans per page; {list_s:.5}s per query (sequential x{runs})");
    // A filtered scan (errors only) walks the whole window.
    let qe = SpanQuery {
        errors_only: true,
        limit: usize::MAX,
        ..SpanQuery::window(TimeNs::ZERO, TimeNs::from_secs(900))
    };
    let t0 = Instant::now();
    let nerr = df.server.span_list(&qe).len();
    let scan_s = t0.elapsed().as_secs_f64();
    println!("  full-window error scan: {nerr} hits in {scan_s:.4}s");

    // --- trace queries, sequential and random ---
    report::header("Trace assembly (Algorithm 1), sequential and random starts");
    let ids: Vec<SpanId> = df
        .server
        .span_list(&SpanQuery {
            limit: 2_000,
            ..SpanQuery::window(TimeNs::ZERO, TimeNs::from_secs(900))
        })
        .iter()
        .map(|s| s.span_id)
        .collect();
    let n_queries = 100.min(ids.len());

    let t0 = Instant::now();
    let mut total_spans = 0usize;
    for id in ids.iter().take(n_queries) {
        total_spans += df.server.trace(*id).len();
    }
    let seq_s = t0.elapsed().as_secs_f64() / n_queries as f64;

    let mut rng = SmallRng::seed_from_u64(0xf15);
    let t0 = Instant::now();
    for _ in 0..n_queries {
        let id = ids[rng.gen_range(0..ids.len())];
        std::hint::black_box(df.server.trace(id));
    }
    let rand_s = t0.elapsed().as_secs_f64() / n_queries as f64;

    // The paper's ~1 s trace time is dominated by Algorithm 1's iterative
    // round trips to a REMOTE ClickHouse; our store is in-process. Model
    // the deployment gap explicitly: each search iteration issues one
    // filter query per association family (systrace, pseudo-thread,
    // X-Request-ID, TCP sequence, trace id — Alg. 1 lines 6-10), plus a
    // final fetch.
    const DB_ROUND_TRIP_S: f64 = 0.033;
    const FILTER_FAMILIES: f64 = 5.0;
    let mean_iters = 5.0; // observed fixpoint depth on Bookinfo traces
    let modeled_trace_s = seq_s + (mean_iters * FILTER_FAMILIES + 1.0) * DB_ROUND_TRIP_S;
    report::table(
        &[
            "query",
            "paper",
            "measured (in-process)",
            "modeled w/ remote DB",
        ],
        &[
            vec![
                "span list (15-min window)".into(),
                "~0.06 s".into(),
                format!("{list_s:.5} s"),
                format!("{:.3} s", list_s + DB_ROUND_TRIP_S),
            ],
            vec![
                "trace, sequential".into(),
                "~1 s".into(),
                format!("{seq_s:.5} s"),
                format!("{modeled_trace_s:.2} s"),
            ],
            vec![
                "trace, random".into(),
                "~1 s".into(),
                format!("{rand_s:.5} s"),
                format!("{modeled_trace_s:.2} s"),
            ],
        ],
    );
    println!(
        "\n  mean spans per assembled trace: {:.1}",
        total_spans as f64 / n_queries as f64
    );
    println!("\n  Shape: trace assembly costs an order of magnitude more than a span-list");
    println!("  page (the paper's 0.06s vs ~1s gap) once Algorithm 1's per-iteration");
    println!("  database round trips are charged; the in-process computation itself is");
    println!("  sub-millisecond, confirming the iterative search — not the joins — is");
    println!("  the paper's dominant cost.");

    report::save_json(
        "fig15_query_delay",
        &serde_json::json!({
            "spans_stored": df.server.span_count(),
            "span_list_s": list_s,
            "trace_sequential_s": seq_s,
            "trace_random_s": rand_s,
            "paper": {"span_list_s": 0.06, "trace_s": 1.0},
        }),
    );
}
