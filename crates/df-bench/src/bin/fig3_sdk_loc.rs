//! Fig. 3 — LOC of distributed-tracing SDK repositories, contrasted with
//! this repository's single zero-code agent covering every language.

use df_bench::{datasets, report};

fn main() {
    report::header("Fig. 3: LOC of intrusive tracing SDK repositories (paper)");
    report::bars(
        &datasets::FIG3_SDK_LOC
            .iter()
            .map(|(l, v)| (l.to_string(), *v as f64 / 1000.0))
            .collect::<Vec<_>>(),
        "kLOC",
    );
    let total: u64 = datasets::FIG3_SDK_LOC.iter().map(|(_, v)| v).sum();
    println!(
        "\n  total SDK maintenance surface: ~{} kLOC across {} per-language repos",
        total / 1000,
        datasets::FIG3_SDK_LOC.len()
    );
    println!("\n  DeepFlow's counterpoint (§3.2.1 Goal 2): ONE kernel-level agent serves");
    println!("  every language and framework; no SDK per language, no redeployments.");
    report::save_json(
        "fig3_sdk_loc",
        &serde_json::json!({
            "sdk_loc": datasets::FIG3_SDK_LOC
                .iter()
                .map(|(l, v)| serde_json::json!({"repo": l, "loc": v}))
                .collect::<Vec<_>>(),
        }),
    );
}
