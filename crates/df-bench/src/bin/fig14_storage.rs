//! Fig. 14 — trace-storage resource consumption: smart-encoding vs direct
//! insertion vs low-cardinality, measured for real over this repository's
//! columnar store.
//!
//! Protocol mirrors §5.2: synthetic traces with ~100 tags each are
//! ingested; we record CPU seconds, resident memory and on-disk bytes per
//! encoding, normalised to smart-encoding (the paper's baseline). The
//! paper inserts 10^7 rows; we default to 10^5 (scale with `FIG14_ROWS`) —
//! ratios, not absolutes, are the result.

use df_bench::report;
use df_storage::persist::write_segment;
use df_storage::{TagEncoding, TagTable};
use std::path::PathBuf;

/// Production tag profile: a mix of low-cardinality locality tags
/// (region/az/vpc/cluster), mid-cardinality workload tags, and
/// near-unique identity tags (client IPs, pod UIDs — one fresh value per
/// trace in a churning cluster) — see DESIGN.md §6. `usize::MAX` marks
/// identity columns whose cardinality tracks the row count.
const CARDINALITIES: [usize; 16] = [
    2,
    4,
    8,
    8,
    16,
    16,
    32,
    64,
    128,
    1_000,
    5_000,
    20_000,
    usize::MAX,
    usize::MAX,
    usize::MAX,
    usize::MAX,
];

fn card(c: usize, n: usize) -> usize {
    if CARDINALITIES[c] == usize::MAX {
        n
    } else {
        CARDINALITIES[c]
    }
}

fn rows() -> usize {
    std::env::var("FIG14_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn string_cell(col: usize, v: usize) -> String {
    format!("tag{col}-{v:07}")
}

fn main() {
    let n = rows();
    let w = CARDINALITIES.len();
    report::header(&format!(
        "Fig. 14: storing {n} synthetic traces x {w} tags under three encodings"
    ));

    let mut measurements = Vec::new();
    for encoding in [
        TagEncoding::SmartInt,
        TagEncoding::LowCardinality,
        TagEncoding::Plain,
    ] {
        let mut table = TagTable::new(encoding, w);
        match encoding {
            TagEncoding::SmartInt => {
                // Smart-encoding: the string→int mapping happened once at
                // tag-collection time; ingest receives ints.
                let batch: Vec<Vec<u32>> = (0..n)
                    .map(|i| (0..w).map(|c| ((i * 31 + c) % card(c, n)) as u32).collect())
                    .collect();
                table.ingest_int_rows(batch.iter().map(|r| r.as_slice()));
            }
            _ => {
                let batch: Vec<Vec<String>> = (0..n)
                    .map(|i| {
                        (0..w)
                            .map(|c| string_cell(c, (i * 31 + c) % card(c, n)))
                            .collect()
                    })
                    .collect();
                table.ingest_string_rows(batch.iter().map(|r| r.as_slice()));
            }
        }
        let rep = table.report();
        // Actually write the segment to disk and take the file size.
        let path = PathBuf::from(format!(
            "{}/df-fig14-{}.dfseg",
            std::env::temp_dir().display(),
            encoding.label()
        ));
        let disk = write_segment(&table, &path).unwrap_or(rep.disk_bytes as u64);
        let _ = std::fs::remove_file(&path);
        measurements.push((
            encoding,
            rep.cpu_seconds,
            rep.memory_bytes as f64,
            disk as f64,
        ));
    }

    let (_, s_cpu, s_mem, s_disk) = measurements[0];
    let mut rows_out = Vec::new();
    for (enc, cpu, mem, disk) in &measurements {
        rows_out.push(vec![
            enc.label().to_string(),
            format!("{cpu:.3}s ({:.2}x)", cpu / s_cpu),
            format!("{:.1} MB ({:.2}x)", mem / 1e6, mem / s_mem),
            format!("{:.1} MB ({:.2}x)", disk / 1e6, disk / s_disk),
        ]);
    }
    report::table(&["encoding", "CPU", "memory", "disk"], &rows_out);

    println!("\n  Paper (10^7 rows, ClickHouse): direct = 4.31x CPU, 1.97x memory, 3.9x disk;");
    println!("  low-cardinality = 7.79x CPU, 2.14x memory, 1.94x disk (all vs smart-encoding).\n");
    let (_, d_cpu, d_mem, d_disk) = measurements[2];
    let (_, l_cpu, l_mem, l_disk) = measurements[1];
    report::compare("direct CPU ratio", 4.31, d_cpu / s_cpu, 10.0);
    report::compare("direct memory ratio", 1.97, d_mem / s_mem, 8.0);
    report::compare("direct disk ratio", 3.90, d_disk / s_disk, 2.0);
    report::compare("low-cardinality CPU ratio", 7.79, l_cpu / s_cpu, 4.0);
    report::compare("low-cardinality memory ratio", 2.14, l_mem / s_mem, 3.0);
    report::compare("low-cardinality disk ratio", 1.94, l_disk / s_disk, 2.0);
    println!("\n  Shape: smart-encoding wins every axis by a wide margin; direct insertion");
    println!("  costs the most disk; low-cardinality sits between on disk yet pays the");
    println!("  HIGHEST CPU (dictionary maintenance over high-cardinality identity tags) —");
    println!("  reproducing the paper's counter-intuitive lowcard-CPU > direct-CPU");
    println!("  inversion. Divergence note (also in EXPERIMENTS.md): our pure column store");
    println!("  isolates encoding costs, so string-handling CPU/memory ratios come out");
    println!("  larger than ClickHouse's pipeline-damped ones.");

    report::save_json(
        "fig14_storage",
        &serde_json::json!({
            "rows": n,
            "tags_per_row": w,
            "measurements": measurements.iter().map(|(e, c, m, d)| serde_json::json!({
                "encoding": e.label(), "cpu_s": c, "memory_bytes": m, "disk_bytes": d,
            })).collect::<Vec<_>>(),
            "ratios_vs_smart": {
                "direct": {"cpu": d_cpu / s_cpu, "mem": d_mem / s_mem, "disk": d_disk / s_disk},
                "low_cardinality": {"cpu": l_cpu / s_cpu, "mem": l_mem / s_mem, "disk": l_disk / s_disk},
            },
        }),
    );
}
