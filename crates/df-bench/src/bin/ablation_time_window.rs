//! Ablation — the session-aggregation time-window slot width (§3.3.1
//! fixes it at 60 s). Sweeps the slot width against a workload with a
//! long-tail of slow responses and reports how many sessions match
//! in-window vs get flagged for server-side re-aggregation vs expire
//! prematurely.

use df_agent::session::{SessionAggregator, SessionOutcome};
use df_bench::report;
use df_types::{DurationNs, MessageType, SessionKey, TimeNs};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    report::header("Ablation: session time-window slot width (paper default: 60 s)");
    println!("  Workload: 50k request/response pairs; response delay lognormal-ish with");
    println!("  a heavy tail (1% of responses arrive 30-300 s late).\n");

    let mut rng = SmallRng::seed_from_u64(0xab1a);
    // Pre-generate the workload so every slot width sees identical traffic.
    let mut events: Vec<(u64, TimeNs, MessageType)> = Vec::new(); // (session, ts, type)
    let mut t = 0u64;
    for sid in 0..50_000u64 {
        t += 2_000_000; // a request every 2 ms
        let req_ts = TimeNs(t);
        let delay_ns: u64 = if rng.gen::<f64>() < 0.01 {
            rng.gen_range(30_000_000_000..300_000_000_000) // 30-300 s tail
        } else {
            rng.gen_range(200_000..50_000_000) // 0.2-50 ms
        };
        events.push((sid, req_ts, MessageType::Request));
        events.push((sid, req_ts + DurationNs(delay_ns), MessageType::Response));
    }
    events.sort_by_key(|(_, ts, _)| *ts);
    let end = events.last().map(|(_, ts, _)| *ts).unwrap();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for slot_s in [1u64, 5, 15, 30, 60, 120, 300] {
        let mut agg: SessionAggregator<u64> = SessionAggregator::new(DurationNs::from_secs(slot_s));
        let mut matched = 0u64;
        let mut out_of_window = 0u64;
        let mut orphans = 0u64;
        let mut expired = 0u64;
        let mut next_expire = DurationNs::from_secs(slot_s).as_nanos();
        for (sid, ts, mtype) in &events {
            // Periodic expiry, like the agent's poll loop.
            while ts.as_nanos() > next_expire {
                expired += agg.expire(TimeNs(next_expire)).len() as u64;
                next_expire += DurationNs::from_secs(slot_s).as_nanos();
            }
            match agg.offer(*sid, SessionKey::Multiplexed(*sid), *mtype, *ts, *sid) {
                SessionOutcome::Matched { .. } => matched += 1,
                SessionOutcome::OutOfWindow { .. } => out_of_window += 1,
                SessionOutcome::OrphanResponse(_) => orphans += 1,
                _ => {}
            }
        }
        expired += agg.expire(end + DurationNs::from_secs(10 * slot_s)).len() as u64;
        rows.push(vec![
            format!("{slot_s}s"),
            matched.to_string(),
            out_of_window.to_string(),
            expired.to_string(),
            orphans.to_string(),
            format!(
                "{:.2}%",
                100.0 * (out_of_window + orphans) as f64 / 50_000.0
            ),
        ]);
        json.push(serde_json::json!({
            "slot_s": slot_s, "matched": matched, "out_of_window": out_of_window,
            "expired_then_orphaned": orphans, "expired": expired,
        }));
    }
    report::table(
        &[
            "slot",
            "matched in-window",
            "out-of-window",
            "expired",
            "late orphans",
            "server re-agg load",
        ],
        &rows,
    );
    println!("\n  Reading: small slots expire long-tail requests before their responses");
    println!("  arrive (orphans → server-side re-aggregation, the paper's fallback);");
    println!("  very large slots hold per-slot state longer for no accuracy gain. 60 s");
    println!("  sits where the tail is covered and the re-aggregation load is negligible —");
    println!("  consistent with the paper's production choice.");
    report::save_json(
        "ablation_time_window",
        &serde_json::json!({ "sweep": json }),
    );
}
