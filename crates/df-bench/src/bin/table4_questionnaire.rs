//! Tables 4 & 5 (Appendix C) — the unprocessed questionnaire data,
//! rendered verbatim.

use df_bench::{datasets, report};

fn main() {
    report::header("Table 4: multiple-choice questionnaire answers (10 customers)");
    let cols: Vec<&str> = std::iter::once("question")
        .chain((1..=10).map(|i| match i {
            1 => "A1",
            2 => "A2",
            3 => "A3",
            4 => "A4",
            5 => "A5",
            6 => "A6",
            7 => "A7",
            8 => "A8",
            9 => "A9",
            _ => "A10",
        }))
        .collect();
    let rows: Vec<Vec<String>> = datasets::TABLE4
        .iter()
        .map(|(q, answers)| {
            std::iter::once(q.to_string())
                .chain(answers.iter().map(|a| a.to_string()))
                .collect()
        })
        .collect();
    report::table(&cols, &rows);

    report::header("Table 5: 'Where has DeepFlow helped you the most?'");
    for a in datasets::TABLE5 {
        println!("  {a}");
    }

    report::save_json(
        "table4_questionnaire",
        &serde_json::json!({
            "table4": datasets::TABLE4.iter().map(|(q, a)| serde_json::json!({
                "question": q, "answers": a.to_vec(),
            })).collect::<Vec<_>>(),
            "table5": datasets::TABLE5.to_vec(),
        }),
    );
}
