//! Fig. 10 — troubleshooting time and perceived benefits (survey), plus a
//! measured localisation drill: how many queries does it take to find an
//! injected fault with DeepFlow?

use deepflow::mesh::apps;
use deepflow::prelude::*;
use df_bench::{datasets, report};
use std::collections::HashMap;

fn main() {
    report::header("Fig. 10(a): fault-to-fix time, before vs with DeepFlow (survey)");
    let rows: Vec<Vec<String>> = datasets::fig10a_buckets()
        .iter()
        .map(|(b, before, with)| vec![b.to_string(), before.to_string(), with.to_string()])
        .collect();
    report::table(&["bucket", "before (customers)", "with DeepFlow"], &rows);

    report::header("Fig. 10(b): primary advantages reported by users (survey)");
    report::bars(
        &datasets::FIG10B_BENEFITS
            .iter()
            .map(|(l, n)| (l.to_string(), f64::from(*n)))
            .collect::<Vec<_>>(),
        "customers / 10",
    );

    report::header("Measured localisation drill (the Fig. 11 scenario)");
    println!("  Injecting: one of three nginx-ingress pods 404s /api/checkout.\n");
    let (mut world, _handles, _vip) =
        apps::nginx_ingress_cluster(150.0, DurationNs::from_secs(2), 2);
    let mut df = Deployment::install(&mut world).expect("install");
    df.run(
        &mut world,
        TimeNs::from_secs(3),
        DurationNs::from_millis(200),
    );

    // Query 1: error spans. Query 2: group by pod tag. Done.
    let errors = df.server.error_spans(TimeNs::ZERO, TimeNs::from_secs(3));
    let mut by_pod: HashMap<String, usize> = HashMap::new();
    for s in &errors {
        if s.capture.tap_side != TapSide::ServerProcess {
            continue;
        }
        if let Some(name) = s
            .tags
            .resource
            .pod_id
            .and_then(|id| df.server.dictionary().pod_name(id))
        {
            *by_pod.entry(name.to_string()).or_default() += 1;
        }
    }
    let culprit = by_pod.iter().max_by_key(|(_, n)| **n);
    println!("  queries issued ........ 2 (error span list; group by pod tag)");
    println!("  error spans found ..... {}", errors.len());
    if let Some((pod, n)) = culprit {
        println!("  localised root cause .. {pod} ({n} error spans)");
    }
    println!("\n  Paper: 'Within 15 minutes, the root cause is identified' — here it is");
    println!("  two queries over the zero-code span store.");

    report::save_json(
        "fig10_troubleshooting",
        &serde_json::json!({
            "survey_before_vs_with": datasets::fig10a_buckets()
                .iter().map(|(b, x, y)| serde_json::json!({"bucket": b, "before": x, "with": y}))
                .collect::<Vec<_>>(),
            "drill_queries": 2,
            "drill_error_spans": errors.len(),
            "drill_culprit": culprit.map(|(p, _)| p.clone()),
        }),
    );
}
