//! Fig. 2 — sources of performance anomalies.
//!
//! The paper's data is a survey of 26 enterprise customers; it cannot be
//! re-measured. This harness (i) prints the survey, and (ii) regenerates
//! its *shape* with a fault-injection campaign: faults are drawn from the
//! survey distribution, injected into a simulated cluster, and classified
//! back from the observable symptoms DeepFlow collects — checking that the
//! taxonomy round-trips through our substrate.

use deepflow::mesh::apps::no_tracer;
use deepflow::mesh::{Behavior, ClientSpec, ServiceSpec, World};
use deepflow::net::fabric::{Fabric, FabricConfig};
use deepflow::net::faults::Fault;
use deepflow::net::topology::{ElementId, Topology};
use deepflow::prelude::*;
use deepflow::types::DurationNs as DD;
use df_bench::{datasets, report};
use df_net::faults::AnomalySource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Build a small two-tier world (client → front → backend) for injection
/// drills. Returns (world, client index, node ids).
fn drill_world(seed: u64) -> (World, usize) {
    let mut topo = Topology::new();
    let n1 = topo.add_simple_node("n1", Ipv4Addr::new(192, 168, 0, 1));
    let n2 = topo.add_simple_node("n2", Ipv4Addr::new(192, 168, 0, 2));
    let client_ip = Ipv4Addr::new(10, 1, 0, 100);
    let front_ip = Ipv4Addr::new(10, 1, 0, 10);
    let back_ip = Ipv4Addr::new(10, 1, 1, 10);
    topo.add_pod(n1, "client", client_ip, "d", "c", "c");
    topo.add_pod(n1, "front", front_ip, "d", "f", "f");
    topo.add_pod(n2, "back", back_ip, "d", "b", "b");
    let mut world = World::new(Fabric::new(topo, FabricConfig::default()), seed);
    world.add_service(
        ServiceSpec::http("back", n2, back_ip, 8080)
            .with_workers(4)
            .with_compute(DD::from_micros(300)),
    );
    world.add_service(
        ServiceSpec::http("front", n1, front_ip, 80)
            .with_workers(4)
            .with_compute(DD::from_micros(200))
            .with_behavior(Behavior::Chain(vec![deepflow::mesh::Call {
                target: "back".into(),
                protocol: L7Protocol::Http1,
                endpoint: "GET /data".into(),
            }])),
    );
    let client = world.add_client(ClientSpec {
        rps: 100.0,
        duration: DD::from_secs(2),
        connections: 4,
        timeout: DD::from_secs(2),
        endpoints: vec![("GET /api".to_string(), 1)],
        ..ClientSpec::http("client", n1, client_ip, "front")
    });
    (world, client)
}

/// What DeepFlow observed in one drill.
struct Observation {
    error_spans: usize,
    incomplete_spans: usize,
    retransmissions: u64,
    zero_windows: u64,
    p99: DD,
    #[allow(dead_code)] // reported in the saved JSON
    completed: u64,
    #[allow(dead_code)]
    fired: u64,
}

fn observe(inject: impl FnOnce(&mut World)) -> Observation {
    let (mut world, client) = drill_world(0xf1a);
    inject(&mut world);
    let mut df = Deployment::install(&mut world).expect("install");
    df.run(&mut world, TimeNs::from_secs(200), DD::from_secs(25));
    let all = df.server.span_list(&deepflow::storage::SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let mut retx = 0;
    let mut zw = 0;
    for a in df.agents.values() {
        let t = a.flows.totals();
        retx += t.retransmissions;
        zw += t.zero_windows;
    }
    let _ = client;
    // Aggregate across every client (injections may add load generators).
    let mut hist = deepflow::mesh::LatencyHistogram::new();
    let mut completed = 0;
    let mut fired = 0;
    for cl in &world.clients {
        hist.merge(&cl.hist);
        completed += cl.completed;
        fired += cl.fired;
    }
    Observation {
        error_spans: all
            .iter()
            .filter(|s| s.status == SpanStatus::ServerError || s.status == SpanStatus::ClientError)
            .count(),
        incomplete_spans: all
            .iter()
            .filter(|s| s.status == SpanStatus::Incomplete)
            .count(),
        retransmissions: retx,
        zero_windows: zw,
        p99: hist.p99(),
        completed,
        fired,
    }
}

fn main() {
    report::header("Fig. 2(a): sources of performance anomalies (paper survey)");
    report::bars(
        &datasets::FIG2A_SOURCES
            .iter()
            .map(|(l, v)| (l.to_string(), v * 100.0))
            .collect::<Vec<_>>(),
        "%",
    );

    report::header("Fig. 2(b): network-side breakdown (paper survey)");
    report::bars(
        &datasets::FIG2B_NETWORK
            .iter()
            .map(|(l, v)| (l.to_string(), v * 100.0))
            .collect::<Vec<_>>(),
        "%",
    );

    // Fault-injection campaign: draw 1000 anomalies from the survey
    // distribution and verify the injected taxonomy is recovered.
    report::header("Shape regeneration: 1000-fault injection campaign");
    let mut rng = SmallRng::seed_from_u64(0xf162);
    let mut counts = std::collections::HashMap::new();
    let n = 1000;
    for _ in 0..n {
        let roll: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = AnomalySource::Application;
        for src in AnomalySource::ALL {
            acc += src.survey_share();
            if roll < acc {
                chosen = src;
                break;
            }
        }
        *counts.entry(format!("{chosen:?}")).or_insert(0u32) += 1;
    }
    let network: u32 = AnomalySource::ALL
        .iter()
        .filter(|s| s.is_network())
        .map(|s| counts.get(&format!("{s:?}")).copied().unwrap_or(0))
        .sum();
    let mut rows: Vec<Vec<String>> = AnomalySource::ALL
        .iter()
        .map(|s| {
            let c = counts.get(&format!("{s:?}")).copied().unwrap_or(0);
            vec![
                format!("{s:?}"),
                format!("{:.1}%", s.survey_share() * 100.0),
                format!("{:.1}%", 100.0 * f64::from(c) / n as f64),
            ]
        })
        .collect();
    rows.push(vec![
        "network total".into(),
        "47.3%".into(),
        format!("{:.1}%", 100.0 * f64::from(network) / n as f64),
    ]);
    report::table(&["source", "paper", "campaign"], &rows);

    report::compare(
        "network share of anomalies (%)",
        47.3,
        100.0 * f64::from(network) / n as f64,
        1.2,
    );

    // ---- Injection drills: every taxonomy class is mechanically
    // injectable AND produces symptoms DeepFlow distinguishes. ----
    report::header("Injection drills: symptom signatures per anomaly source");
    let healthy = observe(|_| {});
    let p99_floor = DD(healthy.p99.as_nanos() * 5);
    let mut rows = Vec::new();
    let mut drill = |source: &str, symptom: &str, detected: bool| {
        rows.push(vec![
            source.to_string(),
            symptom.to_string(),
            if detected { "DETECTED" } else { "MISSED" }.to_string(),
        ]);
    };

    // Application: a bug in the backend.
    let o = observe(|w| {
        w.services[0]
            .spec
            .error_endpoints
            .push(("/data".into(), 500));
    });
    drill("application", "5xx error spans", o.error_spans > 10);

    // Virtual network: a slow veth/vSwitch.
    let o = observe(|w| {
        w.fabric.faults.inject(
            ElementId::PodVeth(Ipv4Addr::new(10, 1, 1, 10)),
            Fault::ExtraLatency(DD::from_millis(20)),
        );
    });
    drill(
        "virtual network",
        "latency jump at one pod veth",
        o.p99 >= p99_floor,
    );

    // Physical network: a lossy NIC.
    let o = observe(|w| {
        let n2 = w.fabric.topology.node_ids()[1];
        w.fabric
            .faults
            .inject(ElementId::PhysNic(n2), Fault::Loss { p: 0.3 });
    });
    drill(
        "physical network",
        "retransmissions on flows",
        o.retransmissions > 10,
    );

    // Network middleware: a backlogged broker (consumer wedged) flooded by
    // a pipelining producer.
    let o = observe(|w| {
        let svc = &w.services[0];
        let (pid, node, fd) = (svc.pid, svc.spec.node, svc.listen_fd());
        w.kernels
            .get_mut(&node)
            .unwrap()
            .set_recv_capacity(pid, fd, 2048)
            .unwrap();
        w.services[0].spec.compute = DD::from_secs(30); // wedged consumer
        let producer = ClientSpec {
            rps: 500.0,
            duration: DD::from_secs(2),
            connections: 1,
            pipeline_depth: 10_000,
            timeout: DD::from_secs(2),
            endpoints: vec![("GET /publish".to_string(), 1)],
            ..ClientSpec::http(
                "producer",
                w.fabric.topology.node_ids()[0],
                Ipv4Addr::new(10, 1, 0, 100),
                "back",
            )
        };
        let _ = w.add_client(producer);
    });
    drill(
        "network middleware",
        "zero-window advertisements + incompletes",
        o.zero_windows > 0 && o.incomplete_spans > 0,
    );

    // Cluster service / node configuration: a firewall black-holing a node.
    let o = observe(|w| {
        let n2 = w.fabric.topology.node_ids()[1];
        w.fabric
            .faults
            .inject(ElementId::NodeNic(n2), Fault::BlackHole);
    });
    drill(
        "cluster service / node config",
        "incomplete spans toward one node",
        o.incomplete_spans > 10,
    );

    // Compute: container CPU throttling — every request computes 20x
    // longer, but the network stays clean.
    let o = observe(|w| {
        for svc in &mut w.services {
            svc.spec.compute = svc.spec.compute.mul_f64(20.0);
        }
    });
    drill(
        "compute",
        "latency up, zero network anomalies",
        o.p99 >= p99_floor && o.retransmissions == 0 && o.zero_windows == 0,
    );

    // External traffic: a massive request surge swamps the front tier.
    let o = observe(|w| {
        let spec = ClientSpec {
            rps: 20_000.0,
            duration: DD::from_secs(2),
            connections: 4,
            timeout: DD::from_secs(120),
            endpoints: vec![("GET /api".to_string(), 1)],
            ..ClientSpec::http(
                "surge",
                w.fabric.topology.node_ids()[0],
                Ipv4Addr::new(10, 1, 0, 100),
                "front",
            )
        };
        let _ = w.add_client(spec);
    });
    drill(
        "external traffic surge",
        "saturation queueing, error-free",
        o.p99 >= p99_floor && o.error_spans == 0,
    );

    report::table(
        &["injected source", "DeepFlow symptom signature", "verdict"],
        &rows,
    );
    let missed = rows.iter().filter(|r| r[2] == "MISSED").count();
    println!(
        "
  {} / {} anomaly classes produce distinguishable signatures.",
        rows.len() - missed,
        rows.len()
    );
    let _ = no_tracer;

    report::save_json(
        "fig2_anomaly_sources",
        &serde_json::json!({
            "paper_network_share": 0.473,
            "campaign_network_share": f64::from(network) / n as f64,
            "campaign": counts,
        }),
    );
}
