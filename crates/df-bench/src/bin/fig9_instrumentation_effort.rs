//! Fig. 9 — instrumentation efforts without DeepFlow (survey, Table 4
//! Q6/Q7), alongside the zero-code demonstration: deploying DeepFlow on a
//! running uninstrumented cluster and counting the lines the user changed.

use deepflow::mesh::apps;
use deepflow::prelude::*;
use df_bench::{datasets, report};

fn main() {
    report::header("Fig. 9: time to instrument ONE component, without DeepFlow (survey)");
    report::bars(
        &datasets::fig9_time_buckets()
            .iter()
            .map(|(l, n)| (format!("{l} per component"), *n as f64))
            .collect::<Vec<_>>(),
        "customers / 10",
    );

    report::header("Survey: LOC modified per component (Table 4 Q7)");
    let answers = datasets::TABLE4[6].1;
    let buckets = ["0", "(0,20]", "(20,100]", ">100"];
    report::bars(
        &buckets
            .iter()
            .map(|b| {
                (
                    format!("{b} LOC"),
                    answers.iter().filter(|a| *a == b).count() as f64,
                )
            })
            .collect::<Vec<_>>(),
        "customers / 10",
    );

    report::header("The zero-code counterpart, demonstrated");
    println!("  Deploying DeepFlow on a live, uninstrumented Bookinfo cluster...");
    let mut make_tracer = || apps::no_tracer();
    let (mut world, handles) = apps::bookinfo(50.0, DurationNs::from_secs(2), &mut make_tracer);
    let mut df = Deployment::install(&mut world).expect("verifier admits programs");
    df.run(
        &mut world,
        TimeNs::from_secs(3),
        DurationNs::from_millis(200),
    );
    let client = &world.clients[handles.client];
    let slowest = df
        .server
        .slowest_span(TimeNs::ZERO, TimeNs::from_secs(3))
        .expect("spans");
    let trace = df.server.trace(slowest);
    println!(
        "  application lines modified ......... 0
  components recompiled/redeployed ... 0
  requests traced .................... {}
  spans in one assembled trace ....... {}",
        client.completed,
        trace.len()
    );

    report::save_json(
        "fig9_instrumentation_effort",
        &serde_json::json!({
            "survey_time_buckets": datasets::fig9_time_buckets()
                .iter().map(|(b, n)| serde_json::json!({"bucket": b, "customers": n}))
                .collect::<Vec<_>>(),
            "deepflow_lines_modified": 0,
            "deepflow_trace_spans": trace.len(),
        }),
    );
}
