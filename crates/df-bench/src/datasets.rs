//! The paper's survey datasets, transcribed from the published figures and
//! the Appendix C raw questionnaire (Tables 4 and 5). These cannot be
//! re-measured (they are interviews with DeepFlow's production customers);
//! the harnesses print them as the paper-side of each comparison and, for
//! Fig. 2, regenerate the *shape* with a fault-injection campaign.

/// Fig. 2(a): sources of performance anomalies (fractions sum to 1).
pub const FIG2A_SOURCES: [(&str, f64); 4] = [
    ("network infrastructure", 0.473),
    ("application", 0.327),
    ("computing infrastructure", 0.127),
    ("external traffic surge", 0.073),
];

/// Fig. 2(b): breakdown of the network slice (fractions of ALL anomalies).
pub const FIG2B_NETWORK: [(&str, f64); 5] = [
    ("virtual network", 0.308),
    ("physical network", 0.055),
    ("network middleware", 0.045),
    ("cluster services (DNS/gateway)", 0.035),
    ("node configuration", 0.030),
];

/// Fig. 3: lines of code of distributed-tracing SDK repositories
/// (approximate, read off the paper's bar chart; the point is the
/// maintenance burden of per-language SDKs).
pub const FIG3_SDK_LOC: [(&str, u64); 8] = [
    ("jaeger-client-java", 42_000),
    ("jaeger-client-go", 31_000),
    ("jaeger-client-python", 12_000),
    ("zipkin-brave (java)", 88_000),
    ("zipkin-js", 21_000),
    ("skywalking-java", 220_000),
    ("skywalking-python", 29_000),
    ("opentelemetry-java", 260_000),
];

/// Table 4: the ten customers' multiple-choice questionnaire answers.
/// Row = question, column = customer A1..A10, verbatim from Appendix C.
pub const TABLE4: [(&str, [&str; 10]); 10] = [
    (
        "Q1 framework (O=open-source, S=self-developed)",
        ["O", "S", "O", "O", "O", "O", "S", "O", "O", "S"],
    ),
    (
        "Q2 kernel versions in production",
        [
            "2-5", "5-10", "2-5", "2-5", "Unknown", "2-5", "2-5", "2-5", "2-5", "2-5",
        ],
    ),
    (
        "Q3 programming languages",
        [
            "2-5", "2-5", "2-5", "2-5", "2-5", "2-5", "2-5", "2-5", "2-5", "2-5",
        ],
    ),
    (
        "Q4 microservice components",
        [
            "2-5", ">100", "5-10", ">100", "20-100", "10-20", "5-10", "10-20", "2-5", ">100",
        ],
    ),
    (
        "Q5 LOC per component",
        [
            "100-1k", "3k-5k", "3k-5k", "3k-5k", ">5k", ">5k", "100-1k", "1k-3k", "3k-5k", ">5k",
        ],
    ),
    (
        "Q6 time to instrument one component",
        [
            "Days", "Days", "Hrs", "1Hr", "Mins", "Hrs", "Hrs", "Mins", "Hrs", "1Hr",
        ],
    ),
    (
        "Q7 LOC modified per component",
        [
            "(20,100]", "(0,20]", ">100", "(0,20]", "0", ">100", ">100", "0", "(20,100]",
            "(20,100]",
        ],
    ),
    (
        "Q8 workload reduction with DeepFlow",
        [
            "20%-50%", "50%-80%", "20%-50%", "50%-80%", "50%-80%", "20%-50%", ">80%", "50%-80%",
            "20%-50%", "0%",
        ],
    ),
    (
        "Q9 fault-to-fix time before DeepFlow",
        [
            "1Hr", "Hrs", "Hrs", "Hrs", "Hrs", "Mins", "1Hr", "Mins", "Hrs", "1Hr",
        ],
    ),
    (
        "Q10 fault-to-fix time with DeepFlow",
        [
            "1Hr", "Hrs", "1Hr", "Mins", "1Hr", "Mins", "1Hr", "Mins", "1Hr", "1Hr",
        ],
    ),
];

/// Table 5: the free-form "where has DeepFlow helped you the most" answers.
pub const TABLE5: [&str; 10] = [
    "A1: It helps me to check network status and response latency between two microservices, making slow request troubleshooting easier.",
    "A2: Its non-intrusive characteristic can help detect previous blind spots in the system, such as components written in Golang or Rust. But it is not very useful for Java components, since skywalking is already sufficient for us.",
    "A3: Locating problems with network data non-intrusively.",
    "A4: Microservice Network Fault Location.",
    "A5: Network problem diagnosis.",
    "A6: It complements existing observability tools by providing more detailed traces and enriching the set of metrics.",
    "A7: It can capture the time consumption of services and middleware at the network level. Besides, a lot of work is reduced by its non-intrusive characteristic.",
    "A8: Non-intrusive, low-cost deployment.",
    "A9: (Empty)",
    "A10: It can help us find some problems in the system, but we haven't found a way to locate the problem precisely.",
];

/// Fig. 9 buckets: instrumentation time per component, share of customers
/// (derived from Table 4 Q6).
pub fn fig9_time_buckets() -> Vec<(&'static str, usize)> {
    bucketize(5, &["Mins", "1Hr", "Hrs", "Days"])
}

/// Fig. 10(a) buckets: troubleshooting time before vs with DeepFlow
/// (Table 4 Q9/Q10). Returns (bucket, before, with).
pub fn fig10a_buckets() -> Vec<(&'static str, usize, usize)> {
    let before = bucketize(8, &["Mins", "1Hr", "Hrs"]);
    let with = bucketize(9, &["Mins", "1Hr", "Hrs"]);
    before
        .into_iter()
        .zip(with)
        .map(|((b, n1), (_, n2))| (b, n1, n2))
        .collect()
}

/// Fig. 10(b): primary advantages named by customers (from §4: 5 name
/// network coverage, 4 non-intrusive instrumentation, 3 closed-source
/// tracing).
pub const FIG10B_BENEFITS: [(&str, u32); 3] = [
    ("network coverage", 5),
    ("non-intrusive instrumentation", 4),
    ("closed-source component tracing", 3),
];

fn bucketize(row: usize, order: &[&'static str]) -> Vec<(&'static str, usize)> {
    let answers = TABLE4[row].1;
    order
        .iter()
        .map(|b| (*b, answers.iter().filter(|a| *a == b).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shares_are_consistent() {
        let total: f64 = FIG2A_SOURCES.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let net_breakdown: f64 = FIG2B_NETWORK.iter().map(|(_, v)| v).sum();
        assert!(
            (net_breakdown - 0.473).abs() < 1e-9,
            "network slices sum to 47.3%"
        );
    }

    #[test]
    fn table4_has_ten_customers_everywhere() {
        for (q, answers) in TABLE4 {
            assert_eq!(answers.len(), 10, "{q}");
        }
    }

    #[test]
    fn fig9_buckets_cover_all_customers() {
        let total: usize = fig9_time_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn fig10a_shows_improvement() {
        let rows = fig10a_buckets();
        let before_hrs = rows.iter().find(|(b, _, _)| *b == "Hrs").unwrap().1;
        let with_hrs = rows.iter().find(|(b, _, _)| *b == "Hrs").unwrap().2;
        assert!(
            with_hrs < before_hrs,
            "fewer customers stuck at hours after DeepFlow"
        );
        let before_mins = rows.iter().find(|(b, _, _)| *b == "Mins").unwrap().1;
        let with_mins = rows.iter().find(|(b, _, _)| *b == "Mins").unwrap().2;
        assert!(with_mins >= before_mins);
    }
}
