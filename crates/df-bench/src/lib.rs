//! # df-bench — harnesses regenerating every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! * [`datasets`] — the paper's survey datasets (Figs. 2, 3, 9, 10;
//!   Tables 4, 5), encoded from the published numbers so the harnesses can
//!   print them alongside our measured counterparts;
//! * [`report`] — plain-text table/figure rendering and shape checks;
//! * [`fig16`] — the end-to-end throughput/latency sweep shared by the
//!   Fig. 16 and Fig. 19 binaries.
//!
//! Binaries (`cargo run -p df-bench --release --bin <name>`):
//! `fig2_anomaly_sources`, `fig3_sdk_loc`, `fig9_instrumentation_effort`,
//! `fig10_troubleshooting`, `fig13_report`, `fig14_storage`,
//! `fig15_query_delay`, `fig16_end_to_end`, `fig19_agent_impact`,
//! `table4_questionnaire`, `ablation_time_window`, `ablation_alg1_iters`.
//!
//! Criterion benches (`cargo bench -p df-bench`): `fig13_hook_overhead`,
//! `fig14_encoding`, `fig15_query`, `alg1_assembly`.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod fig16;
pub mod report;
