//! Shared end-to-end sweep machinery for Fig. 16 and Fig. 19.
//!
//! One *point* runs an application at a fixed offered load for a window of
//! virtual time under one tracing variant and reports achieved throughput +
//! latency percentiles (wrk2-style, coordinated-omission-free).
//!
//! ## Calibration (documented per DESIGN.md §1)
//!
//! The simulator reproduces *shapes*, with two calibrated constants:
//!
//! * the intrusive SDK's per-operation cost (50 µs) is set so the
//!   Jaeger/Zipkin variants cost the few percent of throughput the paper
//!   measures (Fig. 16: 4% / 3%);
//! * the agent's user-space CPU share (the `cpu_share` tax) models the
//!   paper's measured end-to-end agent cost. On the roomy 3-node testbed it
//!   is the default few percent; Appendix B's single-VM "theoretically
//!   strictest conditions" (Nginx doing ~nothing per request, agent
//!   competing for 8 vCPUs) corresponds to a much larger share, calibrated
//!   to the 44k→31k→27k RPS staircase of Fig. 19.

use deepflow::baselines::intrusive::{reporter, IntrusiveTracer, SharedReporter};
use deepflow::mesh::apps::{self, AppHandles};
use deepflow::mesh::{AppTracer, World};
use deepflow::prelude::*;
use deepflow::types::DurationNs as D;

/// Tracing variant under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// No tracing at all.
    Baseline,
    /// Jaeger-like intrusive SDK (W3C headers).
    JaegerLike,
    /// Zipkin-like intrusive SDK (B3 headers).
    ZipkinLike,
    /// DeepFlow, eBPF module only (hooks, no user-space processing).
    DeepFlowEbpf {
        /// Calibrated user-space CPU share.
        cpu_share: f64,
    },
    /// DeepFlow, full agent.
    DeepFlow {
        /// Calibrated user-space CPU share.
        cpu_share: f64,
    },
}

impl Variant {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Variant::Baseline => "baseline".into(),
            Variant::JaegerLike => "jaeger-like".into(),
            Variant::ZipkinLike => "zipkin-like".into(),
            Variant::DeepFlowEbpf { .. } => "deepflow-ebpf".into(),
            Variant::DeepFlow { .. } => "deepflow".into(),
        }
    }
}

/// Which application to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Fig. 16(a): the Spring Boot demo, compute-scaled to the paper's
    /// ~1.4k RPS capacity.
    SpringBoot,
    /// Fig. 16(b): Istio Bookinfo with sidecars, scaled to ~670 RPS.
    Bookinfo,
}

/// One sweep point's results.
#[derive(Debug, Clone)]
pub struct Point {
    /// Offered load (RPS).
    pub offered: f64,
    /// Achieved throughput (completed / window).
    pub achieved: f64,
    /// Median latency.
    pub p50: D,
    /// 90th percentile latency.
    pub p90: D,
    /// 99th percentile latency.
    pub p99: D,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed/timed out.
    pub failed: u64,
    /// Spans per trace (DeepFlow variants: sys+net; SDK variants: app).
    pub spans_per_trace: f64,
}

const SDK_OP_COST: D = D::from_micros(30);

fn build(
    app: App,
    variant: Variant,
    rps: f64,
    duration: D,
) -> (World, AppHandles, Option<SharedReporter>) {
    let rep = reporter();
    let mut seed = 1u64;
    let rep2 = rep.clone();
    let mut factory: Box<dyn FnMut() -> Box<dyn AppTracer>> = match variant {
        Variant::JaegerLike => Box::new(move || {
            seed += 1;
            Box::new(IntrusiveTracer::jaeger_like(rep2.clone(), seed).with_overhead(SDK_OP_COST))
        }),
        Variant::ZipkinLike => Box::new(move || {
            seed += 1;
            Box::new(IntrusiveTracer::zipkin_like(rep2.clone(), seed).with_overhead(SDK_OP_COST))
        }),
        _ => Box::new(apps::no_tracer),
    };
    let (mut world, handles) = match app {
        App::SpringBoot => apps::springboot_demo(rps, duration, &mut factory),
        App::Bookinfo => apps::bookinfo(rps, duration, &mut factory),
    };
    // Compute-scale the services so baseline capacity lands near the
    // paper's testbed numbers (Intel E5-2620 v3: ~1420 / ~670 RPS).
    let scale = match app {
        App::SpringBoot => 14.3,
        App::Bookinfo => 12.8,
    };
    for svc in &mut world.services {
        svc.spec.compute = svc.spec.compute.mul_f64(scale);
    }
    let reporter = matches!(variant, Variant::JaegerLike | Variant::ZipkinLike).then_some(rep);
    (world, handles, reporter)
}

/// Run one point.
pub fn run_point(app: App, variant: Variant, rps: f64, secs: u64) -> Point {
    let duration = D::from_secs(secs);
    let (mut world, handles, rep) = build(app, variant, rps, duration);
    let mut deployment = match variant {
        Variant::DeepFlow { cpu_share } => Some(
            Deployment::install_with(&mut world, |node| {
                let mut c = deepflow::agent::AgentConfig::for_node(node);
                c.cpu_share = cpu_share;
                c
            })
            .expect("install"),
        ),
        Variant::DeepFlowEbpf { cpu_share } => Some(
            Deployment::install_with(&mut world, |node| {
                let mut c = deepflow::agent::AgentConfig::ebpf_only(node);
                c.cpu_share = cpu_share;
                c
            })
            .expect("install"),
        ),
        _ => None,
    };
    let horizon = TimeNs::from_secs(secs) + D::from_secs(1);
    match &mut deployment {
        Some(df) => df.run(&mut world, horizon, D::from_millis(250)),
        None => world.run_until(horizon),
    }
    let client = &world.clients[handles.client];
    let achieved = client.completed as f64 / secs as f64;
    let spans_per_trace = match (&deployment, &rep) {
        (Some(df), _) => {
            let s = df.agent_stats();
            (s.sys_spans + s.net_spans) as f64 / client.completed.max(1) as f64
        }
        (None, Some(rep)) => rep.lock().unwrap().len() as f64 / client.completed.max(1) as f64,
        _ => 0.0,
    };
    Point {
        offered: rps,
        achieved,
        p50: client.hist.p50(),
        p90: client.hist.p90(),
        p99: client.hist.p99(),
        completed: client.completed,
        failed: client.failed,
        spans_per_trace,
    }
}

/// Saturation throughput: offer well past capacity and measure the
/// completion rate.
pub fn max_throughput(app: App, variant: Variant, overload_rps: f64, secs: u64) -> Point {
    run_point(app, variant, overload_rps, secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn springboot_baseline_capacity_is_near_the_papers() {
        let p = max_throughput(App::SpringBoot, Variant::Baseline, 4000.0, 2);
        assert!(
            (900.0..2400.0).contains(&p.achieved),
            "baseline capacity {} should be near the paper's ~1420 RPS",
            p.achieved
        );
    }

    #[test]
    fn overhead_ordering_matches_fig16() {
        let base = max_throughput(App::SpringBoot, Variant::Baseline, 4000.0, 2);
        let jaeger = max_throughput(App::SpringBoot, Variant::JaegerLike, 4000.0, 2);
        let df = max_throughput(
            App::SpringBoot,
            Variant::DeepFlow { cpu_share: 0.08 },
            4000.0,
            2,
        );
        assert!(
            base.achieved > jaeger.achieved && jaeger.achieved > df.achieved,
            "ordering: base {} > jaeger {} > deepflow {}",
            base.achieved,
            jaeger.achieved,
            df.achieved
        );
        // Overheads stay single-digit percent (paper: 4% and 7%).
        let jaeger_oh = 1.0 - jaeger.achieved / base.achieved;
        let df_oh = 1.0 - df.achieved / base.achieved;
        assert!(jaeger_oh < 0.15, "jaeger overhead {jaeger_oh}");
        assert!(df_oh < 0.15, "deepflow overhead {df_oh}");
        // DeepFlow produces far more spans per trace than the SDK.
        assert!(
            df.spans_per_trace > 3.0 * jaeger.spans_per_trace.max(0.1),
            "deepflow {} vs jaeger {} spans/trace",
            df.spans_per_trace,
            jaeger.spans_per_trace
        );
    }
}
