//! Plain-text rendering for figure harnesses: aligned tables, horizontal
//! bar charts, and JSON result persistence (under `results/`).

use std::fs;
use std::path::PathBuf;

/// Print a section header.
pub fn header(title: &str) {
    println!("\n==== {title} ====\n");
}

/// Print an aligned table. `rows` are already formatted cells.
pub fn table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let head: Vec<String> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
        .collect();
    println!("  {}", head.join("  "));
    println!(
        "  {}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("  {}", cells.join("  "));
    }
}

/// Print a horizontal bar chart of (label, value) pairs.
pub fn bars(items: &[(String, f64)], unit: &str) {
    let max = items.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let lw = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in items {
        let n = if max > 0.0 {
            ((value / max) * 40.0).round() as usize
        } else {
            0
        };
        println!(
            "  {:<lw$}  {:>10.3} {unit}  {}",
            label,
            value,
            "#".repeat(n.max(if *value > 0.0 { 1 } else { 0 })),
        );
    }
}

/// Persist a figure's results as JSON under `results/<name>.json` so
/// EXPERIMENTS.md can reference stable numbers. Best-effort (a read-only
/// checkout just skips it).
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(body) = serde_json::to_string_pretty(value) {
        let _ = fs::write(&path, body);
        println!("\n[saved results/{name}.json]");
    }
}

/// A paper-vs-measured comparison line with a shape verdict.
pub fn compare(metric: &str, paper: f64, measured: f64, tolerance_factor: f64) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    let ok = ratio.is_finite() && ratio >= 1.0 / tolerance_factor && ratio <= tolerance_factor;
    println!(
        "  {metric:<46} paper {paper:>12.3}   measured {measured:>12.3}   ratio {ratio:>6.2}x  {}",
        if ok { "[shape OK]" } else { "[differs]" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_and_bars_do_not_panic() {
        table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        bars(&[("x".into(), 1.0), ("y".into(), 0.0)], "u");
        compare("m", 10.0, 12.0, 2.0);
    }
}
