//! Criterion microbench for the threaded sharded store
//! (`deepflow::server::concurrent`): concurrent per-shard ingest at 1, 4
//! and 8 workers (batched vs unbatched enqueue) against the
//! single-threaded `ShardedSpanStore`, and Algorithm 1's Phase 1 run
//! sequentially vs fanned out across scoped threads.
//!
//! The speedup acceptance checks (≥2× ingest at 4 workers, parallel
//! Phase 1 not slower at 4 shards) are gated on
//! `std::thread::available_parallelism()`: on a single-core runner the
//! worker threads time-slice one CPU and a parallel speedup is physically
//! unobservable, so the benches still *measure* and report, but only
//! assert when ≥4 cores exist (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deepflow::server::assemble::AssembleConfig;
use deepflow::server::concurrent::{ConcurrentConfig, ConcurrentShardedStore};
use deepflow::server::sharded::{
    assemble_trace_sharded, assemble_trace_sharded_parallel, ShardedSpanStore,
};
use deepflow::storage::ShardPolicy;
use df_types::ids::*;
use df_types::l7::L7Protocol;
use df_types::net::FiveTuple;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::TimeNs;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

fn span(tap: TapSide, req: u64, resp: u64) -> Span {
    Span {
        span_id: SpanId(0),
        kind: SpanKind::Sys,
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: tap,
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(1),
        five_tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        ),
        l7_protocol: L7Protocol::Http1,
        endpoint: "GET /".to_string(),
        req_time: TimeNs(req),
        resp_time: TimeNs(resp),
        status: SpanStatus::Ok,
        status_code: Some(200),
        req_bytes: 1,
        resp_bytes: 1,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: None,
        systrace_id_resp: None,
        pseudo_thread_id: None,
        x_request_id_req: None,
        x_request_id_resp: None,
        tcp_seq_req: None,
        tcp_seq_resp: None,
        otel_trace_id: None,
        otel_span_id: None,
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

/// The nine capture points of one exchange, outermost first.
const LADDER: [TapSide; 9] = [
    TapSide::ClientProcess,
    TapSide::ClientPodNic,
    TapSide::ClientNodeNic,
    TapSide::ClientHypervisor,
    TapSide::Gateway,
    TapSide::ServerHypervisor,
    TapSide::ServerNodeNic,
    TapSide::ServerPodNic,
    TapSide::ServerProcess,
];

/// One capture-ladder exchange (10 spans), linked upstream/downstream by
/// systrace ids and tied together by a TCP sequence + otel trace.
fn push_exchange(spans: &mut Vec<Span>, seq: u32, link_in: u64, link_out: u64, otel: u128) {
    let base = u64::from(seq) * 1_000_000;
    for (rank, tap) in LADDER.iter().enumerate() {
        let r = rank as u64;
        let mut s = span(*tap, base + r * 10, base + 900_000 - r * 10);
        s.tcp_seq_req = Some(seq);
        if *tap == TapSide::ClientProcess {
            s.systrace_id_req = Some(SysTraceId(link_in));
        }
        if *tap == TapSide::ServerProcess {
            s.systrace_id_req = Some(SysTraceId(link_out));
            s.otel_trace_id = Some(OtelTraceId(otel));
        }
        spans.push(s);
    }
    let mut app = span(TapSide::ServerApp, base + 1_000, base + 800_000);
    app.kind = SpanKind::App;
    app.otel_trace_id = Some(OtelTraceId(otel));
    app.otel_span_id = Some(OtelSpanId(u64::from(seq)));
    spans.push(app);
}

/// Per-exchange five-tuples so shard routing disperses the corpus.
fn spread_flows(spans: &mut [Span]) {
    for s in spans {
        let key = s
            .tcp_seq_req
            .or(s.otel_span_id.map(|v| v.0 as u32))
            .unwrap_or(0);
        s.five_tuple = FiveTuple::tcp(
            Ipv4Addr::new(10, (key >> 8) as u8, key as u8, 1),
            40_000,
            Ipv4Addr::new(10, 128, (key >> 16) as u8, 2),
            80,
        );
    }
}

/// A fan-out exchange tree (branching 10, `levels` deep), flows spread.
/// `levels` 4 ≈ 11k spans, 5 ≈ 111k spans.
fn template(levels: usize) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut next_seq = 1u32;
    let mut next_key = 1u64;
    let mut queue = VecDeque::new();
    queue.push_back((next_key, 0usize));
    next_key += 1;
    while let Some((link_in, level)) = queue.pop_front() {
        let link_out = next_key;
        next_key += 1;
        let seq = next_seq;
        next_seq += 1;
        push_exchange(&mut spans, seq, link_in, link_out, u128::from(seq));
        if level + 1 < levels {
            for _ in 0..10usize {
                queue.push_back((link_out, level + 1));
            }
        }
    }
    spread_flows(&mut spans);
    spans
}

fn scale_cfg() -> AssembleConfig {
    AssembleConfig {
        iterations: 50_000,
        max_spans: 200_000,
        ..AssembleConfig::default()
    }
}

/// Ingest one corpus through the concurrent store and wait for full
/// application (flush barrier), batched or span-at-a-time.
fn concurrent_ingest(workers: usize, spans: &[Span], batch: Option<usize>) -> usize {
    let store = ConcurrentShardedStore::with_config(
        ShardPolicy::with_shards(workers),
        ConcurrentConfig {
            queue_depth: 64,
            ..ConcurrentConfig::default()
        },
    );
    match batch {
        Some(n) => {
            for chunk in spans.chunks(n) {
                store.insert_batch(chunk.to_vec());
            }
        }
        None => {
            for s in spans {
                store.insert(s.clone());
            }
        }
    }
    store.flush();
    store.len()
}

/// Concurrent ingest throughput at 1/4/8 workers, batched (512-span
/// agent flushes) vs unbatched (span-at-a-time enqueue), against the
/// single-threaded `ShardedSpanStore` batch path as the baseline.
fn bench_parallel_ingest(c: &mut Criterion) {
    for (label, levels) in [("10k", 4), ("100k", 5)] {
        let spans = template(levels);
        let total = spans.len();
        let mut group = c.benchmark_group(format!("alg1_parallel_ingest_{label}"));
        group.throughput(Throughput::Elements(total as u64));
        group.bench_function("single_thread_batched", |b| {
            b.iter(|| {
                let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
                st.insert_batch(spans.clone());
                st.len()
            })
        });
        for workers in [1usize, 4, 8] {
            group.bench_with_input(BenchmarkId::new("batched", workers), &workers, |b, &w| {
                b.iter(|| concurrent_ingest(w, &spans, Some(512)))
            });
            // Unbatched at 100k floods the channels with 111k one-span
            // messages; measure it on the 10k corpus only.
            if levels == 4 {
                group.bench_with_input(
                    BenchmarkId::new("unbatched", workers),
                    &workers,
                    |b, &w| b.iter(|| concurrent_ingest(w, &spans, None)),
                );
            }
        }
        group.finish();
    }
}

/// Algorithm 1 Phase 1 at 4 shards: sequential per-shard probing vs the
/// scoped-thread fan-out, over ~10k and ~111k span corpora.
fn bench_parallel_phase1(c: &mut Criterion) {
    let cfg = scale_cfg();
    for (label, levels) in [("10k", 4), ("100k", 5)] {
        let spans = template(levels);
        let total = spans.len();
        let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        let ids = st.insert_batch(spans);
        let start = ids[0];
        let seq = assemble_trace_sharded(&st, start, &cfg);
        let par = assemble_trace_sharded_parallel(&st, start, &cfg);
        assert_eq!(seq.len(), total, "bench trace must cover the corpus");
        assert_eq!(
            seq.spans.len(),
            par.spans.len(),
            "parallel Phase 1 must assemble the identical trace"
        );
        let mut group = c.benchmark_group(format!("alg1_parallel_phase1_{label}"));
        group.throughput(Throughput::Elements(total as u64));
        group.bench_function("sequential", |b| {
            b.iter(|| assemble_trace_sharded(&st, start, &cfg))
        });
        group.bench_function("scoped_threads", |b| {
            b.iter(|| assemble_trace_sharded_parallel(&st, start, &cfg))
        });
        group.finish();
    }
}

/// Coarse acceptance checks, asserted only where ≥4 cores exist (a
/// single-core runner cannot observe a parallel speedup; see the module
/// docs). Always printed, so `EXPERIMENTS.md` numbers come from here.
fn bench_acceptance(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let spans = template(5); // ~111k spans
    let time = |f: &mut dyn FnMut() -> usize| {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        t0.elapsed()
    };
    let single = time(&mut || {
        let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        st.insert_batch(spans.clone());
        st.len()
    });
    let four = time(&mut || concurrent_ingest(4, &spans, Some(512)));
    println!(
        "acceptance(100k ingest): single-thread {single:?}, 4 workers {four:?}, {cores} cores"
    );
    if cores >= 4 {
        assert!(
            four <= single / 2,
            "≥4 cores but 4-worker ingest not ≥2× single-threaded: {four:?} vs {single:?}"
        );
    }

    let cfg = scale_cfg();
    let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
    let start = st.insert_batch(spans)[0];
    let seq = time(&mut || assemble_trace_sharded(&st, start, &cfg).len());
    let par = time(&mut || assemble_trace_sharded_parallel(&st, start, &cfg).len());
    println!("acceptance(100k phase1): sequential {seq:?}, scoped threads {par:?}");
    if cores >= 4 {
        assert!(
            par <= seq + seq / 4,
            "≥4 cores but parallel Phase 1 slower than sequential: {par:?} vs {seq:?}"
        );
    }
    // Keep the group in the report even though the assertions above are
    // the substance; a trivial measured body keeps `--test` coverage.
    let mut group = c.benchmark_group("alg1_parallel_acceptance");
    group.bench_function("noop", |b| b.iter(|| cores));
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_ingest,
    bench_parallel_phase1,
    bench_acceptance
);
criterion_main!(benches);
