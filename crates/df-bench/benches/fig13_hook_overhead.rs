//! Criterion microbench for Fig. 13: real per-event cost of the hook
//! machinery (dispatch + enter-map join + payload copy + ring publish) per
//! Table 3 ABI, kprobe vs tracepoint, DeepFlow program vs empty program.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_agent::ebpf::{EmptyProgram, SharedSyscallProgram};
use df_kernel::hooks::{
    AttachPoint, HookContext, HookEngine, HookOverheadModel, HookPhase, ProbeKind,
};
use df_types::{FiveTuple, NodeId, Pid, SocketId, SyscallAbi, Tid, TimeNs};
use std::net::Ipv4Addr;

fn ctx<'a>(abi: SyscallAbi, phase: HookPhase, payload: &'a [u8]) -> HookContext<'a> {
    HookContext {
        phase,
        abi: Some(abi),
        symbol: None,
        ts: TimeNs(1),
        pid: Pid(1),
        tid: Tid(1),
        coroutine: None,
        process_name: "bench",
        node: NodeId(1),
        socket_id: Some(SocketId(1)),
        five_tuple: Some(FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )),
        tcp_seq: Some(1000),
        direction: Some(abi.direction()),
        byte_len: payload.len(),
        payload: Some(payload),
        first_syscall: true,
    }
}

fn engine(abi: SyscallAbi, kind: ProbeKind, deepflow: bool) -> HookEngine {
    let mut engine = HookEngine::new(1 << 20, HookOverheadModel::default());
    if deepflow {
        let prog = SharedSyscallProgram::new(256);
        engine
            .attach(AttachPoint::SyscallEnter(abi), kind, Box::new(prog.clone()))
            .unwrap();
        engine
            .attach(AttachPoint::SyscallExit(abi), kind, Box::new(prog))
            .unwrap();
    } else {
        engine
            .attach(
                AttachPoint::SyscallEnter(abi),
                kind,
                Box::new(EmptyProgram::new()),
            )
            .unwrap();
        engine
            .attach(
                AttachPoint::SyscallExit(abi),
                kind,
                Box::new(EmptyProgram::new()),
            )
            .unwrap();
    }
    engine
}

fn bench_hooks(c: &mut Criterion) {
    let payload = Bytes::from(vec![0x41u8; 256]);
    let mut group = c.benchmark_group("fig13_hook_pair");
    // The full 10-ABI matrix runs in the fig13_report binary; criterion
    // tracks a representative subset for regression purposes.
    for abi in [
        SyscallAbi::Read,
        SyscallAbi::Write,
        SyscallAbi::Recvmsg,
        SyscallAbi::Sendmmsg,
    ] {
        for (label, deepflow) in [("empty", false), ("deepflow", true)] {
            group.bench_with_input(
                BenchmarkId::new(format!("kprobe_{label}"), abi.name()),
                &abi,
                |b, &abi| {
                    let mut eng = engine(abi, ProbeKind::Kprobe, deepflow);
                    let enter = ctx(abi, HookPhase::Enter, &payload);
                    let exit = ctx(abi, HookPhase::Exit, &payload);
                    b.iter(|| {
                        eng.fire(&AttachPoint::SyscallEnter(abi), &enter);
                        eng.fire(&AttachPoint::SyscallExit(abi), &exit);
                        if eng.ring.len() > (1 << 19) {
                            eng.ring.drain_all();
                        }
                    });
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("tracepoint_deepflow", abi.name()),
            &abi,
            |b, &abi| {
                let mut eng = engine(abi, ProbeKind::Tracepoint, true);
                let enter = ctx(abi, HookPhase::Enter, &payload);
                let exit = ctx(abi, HookPhase::Exit, &payload);
                b.iter(|| {
                    eng.fire(&AttachPoint::SyscallEnter(abi), &enter);
                    eng.fire(&AttachPoint::SyscallExit(abi), &exit);
                    if eng.ring.len() > (1 << 19) {
                        eng.ring.drain_all();
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hooks);
criterion_main!(benches);
