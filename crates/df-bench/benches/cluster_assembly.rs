//! Criterion microbench for distributed trace assembly
//! (`deepflow::cluster`): Algorithm 1 run across 1, 2 and 4 simulated
//! trace-server nodes — every cross-shard probe a framed RPC over the
//! df-net fabric — against the in-process sharded assembly as the
//! baseline. Also measures ingest with span-batch shipping to remote
//! shard owners.
//!
//! The interesting number is the *overhead shape*: the distributed
//! protocol pays JSON framing + simulated hops + per-round RPC fan-out,
//! so it must stay within a small constant factor of the local path
//! (assembly rounds are batched per round, not per key — paper §4.2's
//! candidate-set batching), not fall off a cliff.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deepflow::cluster::{Cluster, ClusterConfig};
use deepflow::server::assemble::AssembleConfig;
use deepflow::server::sharded::{assemble_trace_sharded, ShardedSpanStore};
use deepflow::storage::ShardPolicy;
use df_types::ids::*;
use df_types::l7::L7Protocol;
use df_types::net::FiveTuple;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::TimeNs;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

fn span(tap: TapSide, req: u64, resp: u64) -> Span {
    Span {
        span_id: SpanId(0),
        kind: SpanKind::Sys,
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: tap,
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(1),
        five_tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        ),
        l7_protocol: L7Protocol::Http1,
        endpoint: "GET /".to_string(),
        req_time: TimeNs(req),
        resp_time: TimeNs(resp),
        status: SpanStatus::Ok,
        status_code: Some(200),
        req_bytes: 1,
        resp_bytes: 1,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: None,
        systrace_id_resp: None,
        pseudo_thread_id: None,
        x_request_id_req: None,
        x_request_id_resp: None,
        tcp_seq_req: None,
        tcp_seq_resp: None,
        otel_trace_id: None,
        otel_span_id: None,
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

/// The nine capture points of one exchange, outermost first.
const LADDER: [TapSide; 9] = [
    TapSide::ClientProcess,
    TapSide::ClientPodNic,
    TapSide::ClientNodeNic,
    TapSide::ClientHypervisor,
    TapSide::Gateway,
    TapSide::ServerHypervisor,
    TapSide::ServerNodeNic,
    TapSide::ServerPodNic,
    TapSide::ServerProcess,
];

/// One capture-ladder exchange (10 spans), linked by systrace ids and a
/// TCP sequence + otel trace — the same corpus shape `alg1_parallel`
/// uses, so the numbers compare.
fn push_exchange(spans: &mut Vec<Span>, seq: u32, link_in: u64, link_out: u64, otel: u128) {
    let base = u64::from(seq) * 1_000_000;
    for (rank, tap) in LADDER.iter().enumerate() {
        let r = rank as u64;
        let mut s = span(*tap, base + r * 10, base + 900_000 - r * 10);
        s.tcp_seq_req = Some(seq);
        if *tap == TapSide::ClientProcess {
            s.systrace_id_req = Some(SysTraceId(link_in));
        }
        if *tap == TapSide::ServerProcess {
            s.systrace_id_req = Some(SysTraceId(link_out));
            s.otel_trace_id = Some(OtelTraceId(otel));
        }
        spans.push(s);
    }
    let mut app = span(TapSide::ServerApp, base + 1_000, base + 800_000);
    app.kind = SpanKind::App;
    app.otel_trace_id = Some(OtelTraceId(otel));
    app.otel_span_id = Some(OtelSpanId(u64::from(seq)));
    spans.push(app);
}

/// Per-exchange five-tuples so shard routing disperses the corpus.
fn spread_flows(spans: &mut [Span]) {
    for s in spans {
        let key = s
            .tcp_seq_req
            .or(s.otel_span_id.map(|v| v.0 as u32))
            .unwrap_or(0);
        s.five_tuple = FiveTuple::tcp(
            Ipv4Addr::new(10, (key >> 8) as u8, key as u8, 1),
            40_000,
            Ipv4Addr::new(10, 128, (key >> 16) as u8, 2),
            80,
        );
    }
}

/// A fan-out exchange tree (branching 10, `levels` deep), flows spread.
/// `levels` 3 ≈ 1.1k spans.
fn template(levels: usize) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut next_seq = 1u32;
    let mut next_key = 1u64;
    let mut queue = VecDeque::new();
    queue.push_back((next_key, 0usize));
    next_key += 1;
    while let Some((link_in, level)) = queue.pop_front() {
        let link_out = next_key;
        next_key += 1;
        let seq = next_seq;
        next_seq += 1;
        push_exchange(&mut spans, seq, link_in, link_out, u128::from(seq));
        if level + 1 < levels {
            for _ in 0..10usize {
                queue.push_back((link_out, level + 1));
            }
        }
    }
    spread_flows(&mut spans);
    spans
}

fn scale_cfg() -> AssembleConfig {
    AssembleConfig {
        iterations: 50_000,
        max_spans: 200_000,
        ..AssembleConfig::default()
    }
}

fn build_cluster(nodes: usize, spans: &[Span]) -> (Cluster, deepflow::types::SpanId) {
    build_cluster_rf(nodes, 1, spans)
}

fn build_cluster_rf(nodes: usize, rf: usize, spans: &[Span]) -> (Cluster, deepflow::types::SpanId) {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes,
        policy: ShardPolicy::with_shards(4),
        assemble: scale_cfg(),
        replication_factor: rf,
        ..ClusterConfig::default()
    });
    let mut start = None;
    for chunk in spans.chunks(512) {
        let ids = cluster.ingest(chunk.to_vec());
        start.get_or_insert(ids[0]);
    }
    (cluster, start.expect("non-empty corpus"))
}

/// Distributed assembly at 1/2/4 nodes vs the in-process sharded
/// baseline, on a ~1.1k-span corpus.
fn bench_cluster_assembly(c: &mut Criterion) {
    let spans = template(3);
    let total = spans.len();
    let cfg = scale_cfg();

    // Local baseline + ground truth.
    let mut local = ShardedSpanStore::new(ShardPolicy::with_shards(4));
    let ids = local.insert_batch(spans.clone());
    let expected = assemble_trace_sharded(&local, ids[0], &cfg);
    assert_eq!(expected.len(), total, "corpus must assemble fully");

    let mut group = c.benchmark_group("cluster_assembly_1k");
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("local_sharded", |b| {
        b.iter(|| assemble_trace_sharded(&local, ids[0], &cfg).len())
    });
    for nodes in [1usize, 2, 4] {
        let (mut cluster, start) = build_cluster(nodes, &spans);
        // Correctness once, outside the measurement loop: the
        // distributed answer is the local answer.
        let result = cluster.assemble(start);
        assert!(result.is_complete());
        assert_eq!(result.trace, expected, "distributed assembly diverged");
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
            b.iter(|| cluster.assemble(start).trace.len())
        });
    }
    group.finish();
}

/// Ingest with span-batch shipping (512-span batches) at 1/2/4 nodes.
fn bench_cluster_ingest(c: &mut Criterion) {
    let spans = template(3);
    let total = spans.len();
    let mut group = c.benchmark_group("cluster_ingest_1k");
    group.throughput(Throughput::Elements(total as u64));
    for nodes in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let (cluster, _) = build_cluster(n, &spans);
                assert_eq!(cluster.stats().spans_lost, 0);
                cluster.len()
            })
        });
    }
    group.finish();
}

/// Failover latency at RF=2: assembly cost on a healthy 3-node replicated
/// cluster vs the same cluster with one replica owner dead. The first
/// post-kill query pays the retry ladder (virtual time — wall-clock cost
/// is the retransmit bookkeeping) and puts the dead node under probation;
/// steady state then pays one fast-fail probe per round plus the replica
/// hop, so the dead-node curve must stay within a small constant factor
/// of healthy — that gap *is* the failover latency the tentpole buys.
fn bench_cluster_failover(c: &mut Criterion) {
    let spans = template(3);
    let total = spans.len();
    let cfg = scale_cfg();
    let mut local = ShardedSpanStore::new(ShardPolicy::with_shards(4));
    let ids = local.insert_batch(spans.clone());
    let expected = assemble_trace_sharded(&local, ids[0], &cfg);

    let mut group = c.benchmark_group("cluster_failover_rf2_1k");
    group.throughput(Throughput::Elements(total as u64));

    let (mut healthy, start) = build_cluster_rf(3, 2, &spans);
    let result = healthy.assemble(start);
    assert!(result.is_complete());
    assert_eq!(result.trace, expected, "replicated assembly diverged");
    group.bench_function("healthy", |b| {
        b.iter(|| healthy.assemble(start).trace.len())
    });

    let (mut degraded, start) = build_cluster_rf(3, 2, &spans);
    degraded.kill(1);
    // Warm-up: pays the full retry ladder once and arms the probation
    // window, like the first query after a real crash would.
    let result = degraded.assemble(start);
    assert!(result.is_complete(), "RF=2 must absorb the dead node");
    assert_eq!(result.trace, expected, "failover assembly diverged");
    group.bench_function("one_node_dead", |b| {
        b.iter(|| {
            let r = degraded.assemble(start);
            assert!(r.is_complete());
            r.trace.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster_assembly,
    bench_cluster_ingest,
    bench_cluster_failover
);
criterion_main!(benches);
