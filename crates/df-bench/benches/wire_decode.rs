//! Criterion microbench for the DFW1 wire codec (`df_types::wire`):
//! decode throughput at 10k and 100k spans per batch, the zero-copy
//! header/dictionary parse alone, encode throughput, and the end-to-end
//! wire ingest (`ConcurrentShardedStore::ingest_wire`) against the
//! struct-path baseline (`insert_batch`) on the same corpus.
//!
//! Reported numbers (spans/sec/core) go to `EXPERIMENTS.md` — the decode
//! path is what bounds a trace-server core's ingest rate, so it is
//! measured batch-in → `Vec<Span>`-out with no store behind it, then
//! again with the real sharded store behind it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deepflow::server::concurrent::ConcurrentShardedStore;
use deepflow::storage::ShardPolicy;
use df_types::ids::*;
use df_types::l7::L7Protocol;
use df_types::net::FiveTuple;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::{wire, TimeNs};
use std::net::Ipv4Addr;

const TAP_SIDES: [TapSide; 11] = [
    TapSide::ClientApp,
    TapSide::ClientProcess,
    TapSide::ClientPodNic,
    TapSide::ClientNodeNic,
    TapSide::ClientHypervisor,
    TapSide::Gateway,
    TapSide::ServerHypervisor,
    TapSide::ServerNodeNic,
    TapSide::ServerPodNic,
    TapSide::ServerProcess,
    TapSide::ServerApp,
];

/// A production-shaped corpus: realistic tap-ladder mix, a small endpoint
/// set (so the dictionary interning actually pays), sparse optional
/// fields, some custom tags.
fn corpus(n: usize) -> Vec<Span> {
    (0..n)
        .map(|i| {
            let i = i as u64;
            let mut s = Span {
                span_id: SpanId(0),
                kind: if i % 10 == 9 {
                    SpanKind::App
                } else {
                    SpanKind::Sys
                },
                capture: CapturePoint {
                    node: NodeId((i % 16) as u32),
                    tap_side: TAP_SIDES[(i % 11) as usize],
                    interface: if i.is_multiple_of(3) {
                        Some(format!("eth{}", i % 4))
                    } else {
                        None
                    },
                },
                agent: AgentId((i % 16) as u32),
                flow_id: FlowId(i / 9),
                five_tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, (i % 250) as u8, (i / 250 % 250) as u8, 1),
                    40_000 + (i % 1_000) as u16,
                    Ipv4Addr::new(10, 128, (i % 250) as u8, 2),
                    80,
                ),
                l7_protocol: L7Protocol::Http1,
                endpoint: format!("GET /api/v1/endpoint-{}", i % 32),
                req_time: TimeNs(i * 1_000),
                resp_time: TimeNs(i * 1_000 + 350_000),
                status: if i.is_multiple_of(50) {
                    SpanStatus::ServerError
                } else {
                    SpanStatus::Ok
                },
                status_code: Some(if i.is_multiple_of(50) { 500 } else { 200 }),
                req_bytes: 128 + i % 512,
                resp_bytes: 1024 + i % 8192,
                pid: Some(Pid((i % 64) as u32)),
                tid: Some(Tid((i % 256) as u32)),
                process_name: Some(format!("svc-{}", i % 8)),
                systrace_id_req: Some(SysTraceId(i / 9)),
                systrace_id_resp: None,
                pseudo_thread_id: None,
                x_request_id_req: if i.is_multiple_of(4) {
                    Some(XRequestId(u128::from(i / 9)))
                } else {
                    None
                },
                x_request_id_resp: None,
                tcp_seq_req: Some((i / 9) as u32),
                tcp_seq_resp: None,
                otel_trace_id: if i % 10 == 9 {
                    Some(OtelTraceId(u128::from(i / 9)))
                } else {
                    None
                },
                otel_span_id: None,
                otel_parent_span_id: None,
                tags: TagSet::default(),
                flow_metrics: None,
            };
            s.tags = std::mem::take(&mut s.tags)
                .with_label("env", "prod")
                .with_label(
                    "team",
                    if i.is_multiple_of(2) {
                        "payments"
                    } else {
                        "search"
                    },
                );
            s
        })
        .collect()
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    for &n in &[10_000usize, 100_000] {
        let spans = corpus(n);
        let bytes = wire::encode_batch(&spans);

        group.throughput(Throughput::Elements(n as u64));
        // The headline number: DFW1 bytes → Vec<Span>.
        group.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            b.iter(|| wire::decode_batch(bytes).expect("valid batch"))
        });
        // Zero-copy header + dictionary parse only (no Span
        // materialisation) — the cost floor of a forwarding node that
        // ships the batch on verbatim.
        group.bench_with_input(BenchmarkId::new("parse_header", n), &bytes, |b, bytes| {
            b.iter(|| {
                wire::WireBatch::parse(bytes)
                    .expect("valid batch")
                    .span_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("encode", n), &spans, |b, spans| {
            b.iter(|| wire::encode_batch(spans))
        });
        // End-to-end wire ingest vs the struct-path baseline: same
        // corpus, same 4-shard store, batch-per-iteration.
        group.bench_with_input(BenchmarkId::new("ingest_wire", n), &bytes, |b, bytes| {
            b.iter(|| {
                let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
                let ids = store.ingest_wire(bytes).expect("valid batch");
                store.flush();
                ids.len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("ingest_struct_baseline", n),
            &spans,
            |b, spans| {
                b.iter(|| {
                    let store = ConcurrentShardedStore::new(ShardPolicy::with_shards(4));
                    let ids = store.insert_batch(spans.clone());
                    store.flush();
                    ids.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
