//! Criterion microbench for Fig. 14: tag-ingest throughput per encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_storage::{TagEncoding, TagTable};

const WIDTH: usize = 16;
const ROWS: usize = 10_000;
const CARDS: [usize; WIDTH] = [
    2, 4, 8, 8, 16, 16, 32, 64, 128, 1_000, 5_000, 10_000, ROWS, ROWS, ROWS, ROWS,
];

fn string_rows() -> Vec<Vec<String>> {
    (0..ROWS)
        .map(|i| {
            (0..WIDTH)
                .map(|c| format!("tag{c}-{:07}", (i * 31 + c) % CARDS[c]))
                .collect()
        })
        .collect()
}

fn int_rows() -> Vec<Vec<u32>> {
    (0..ROWS)
        .map(|i| {
            (0..WIDTH)
                .map(|c| ((i * 31 + c) % CARDS[c]) as u32)
                .collect()
        })
        .collect()
}

fn bench_encodings(c: &mut Criterion) {
    let srows = string_rows();
    let irows = int_rows();
    let mut group = c.benchmark_group("fig14_ingest");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function(BenchmarkId::new("ingest", "smart-encoding"), |b| {
        b.iter(|| {
            let mut t = TagTable::new(TagEncoding::SmartInt, WIDTH);
            t.ingest_int_rows(irows.iter().map(|r| r.as_slice()));
            t
        })
    });
    group.bench_function(BenchmarkId::new("ingest", "low-cardinality"), |b| {
        b.iter(|| {
            let mut t = TagTable::new(TagEncoding::LowCardinality, WIDTH);
            t.ingest_string_rows(srows.iter().map(|r| r.as_slice()));
            t
        })
    });
    group.bench_function(BenchmarkId::new("ingest", "direct"), |b| {
        b.iter(|| {
            let mut t = TagTable::new(TagEncoding::Plain, WIDTH);
            t.ingest_string_rows(srows.iter().map(|r| r.as_slice()));
            t
        })
    });
    group.finish();

    let mut group = c.benchmark_group("fig14_serialize");
    for (enc, is_int) in [
        (TagEncoding::SmartInt, true),
        (TagEncoding::LowCardinality, false),
        (TagEncoding::Plain, false),
    ] {
        let mut t = TagTable::new(enc, WIDTH);
        if is_int {
            t.ingest_int_rows(irows.iter().map(|r| r.as_slice()));
        } else {
            t.ingest_string_rows(srows.iter().map(|r| r.as_slice()));
        }
        group.bench_function(BenchmarkId::new("to_disk", enc.label()), |b| {
            b.iter(|| t.to_disk())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encodings);
criterion_main!(benches);
