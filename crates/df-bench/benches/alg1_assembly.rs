//! Criterion microbench for Algorithm 1: assembly cost as the trace's span
//! count grows (synthetic chains) and as the store grows (noise spans).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepflow::server::assemble::{assemble_trace, AssembleConfig};
use deepflow::storage::SpanStore;
use df_types::ids::*;
use df_types::l7::L7Protocol;
use df_types::net::FiveTuple;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::TimeNs;
use std::net::Ipv4Addr;

fn span(tap: TapSide, req: u64, resp: u64) -> Span {
    Span {
        span_id: SpanId(0),
        kind: SpanKind::Sys,
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: tap,
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(1),
        five_tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        ),
        l7_protocol: L7Protocol::Http1,
        endpoint: "GET /".to_string(),
        req_time: TimeNs(req),
        resp_time: TimeNs(resp),
        status: SpanStatus::Ok,
        status_code: Some(200),
        req_bytes: 1,
        resp_bytes: 1,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: None,
        systrace_id_resp: None,
        pseudo_thread_id: None,
        x_request_id_req: None,
        x_request_id_resp: None,
        tcp_seq_req: None,
        tcp_seq_resp: None,
        otel_trace_id: None,
        otel_span_id: None,
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

/// Build a store containing one `depth`-hop call chain (client+server span
/// per hop, linked by systrace ids and TCP sequences) plus `noise`
/// unrelated spans.
fn build_store(depth: u64, noise: u64) -> (SpanStore, SpanId) {
    let mut st = SpanStore::new();
    let mut first = None;
    for hop in 0..depth {
        let base = hop * 100;
        let mut server = span(TapSide::ServerProcess, base, base + 1000);
        server.tcp_seq_req = Some(10_000 + hop as u32);
        server.systrace_id_req = Some(SysTraceId(hop + 1));
        server.systrace_id_resp = Some(SysTraceId(1_000_000 + hop));
        let id = st.insert(server);
        first.get_or_insert(id);
        if hop + 1 < depth {
            let mut client = span(TapSide::ClientProcess, base + 10, base + 990);
            client.tcp_seq_req = Some(10_000 + hop as u32 + 1);
            client.systrace_id_req = Some(SysTraceId(hop + 1)); // chains to server
            client.systrace_id_resp = Some(SysTraceId(1_000_000 + hop));
            st.insert(client);
        }
    }
    for i in 0..noise {
        let mut s = span(TapSide::ServerProcess, 1_000_000 + i, 1_000_500 + i);
        s.tcp_seq_req = Some(2_000_000 + i as u32);
        s.systrace_id_req = Some(SysTraceId(3_000_000 + i));
        st.insert(s);
    }
    (st, first.unwrap())
}

fn bench_assembly(c: &mut Criterion) {
    let cfg = AssembleConfig::default();
    let mut group = c.benchmark_group("alg1_chain_depth");
    for depth in [4u64, 16, 64, 256] {
        let (st, start) = build_store(depth, 1_000);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| assemble_trace(&st, start, &cfg))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alg1_store_noise");
    for noise in [1_000u64, 10_000, 100_000] {
        let (st, start) = build_store(16, noise);
        group.bench_with_input(BenchmarkId::from_parameter(noise), &noise, |b, _| {
            b.iter(|| assemble_trace(&st, start, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
