//! Criterion microbench for Algorithm 1: assembly cost as the trace's span
//! count grows (synthetic chains) and as the store grows (noise spans), plus
//! production-scale traces (1k/10k/100k spans) built from capture-ladder
//! exchanges arranged as fan-out trees and deep call chains.
//!
//! The `*_scale` groups bench the frontier implementation (`new`) against the
//! full-rescan reference oracle (`reference`) on identical stores, so the
//! speedup of the indexed path can be read straight off one run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deepflow::server::assemble::{assemble_trace, assemble_trace_reference, AssembleConfig};
use deepflow::server::sharded::{assemble_trace_sharded, ShardedSpanStore};
use deepflow::server::trace_cache::{CacheOutcome, TraceCache};
use deepflow::storage::{ShardPolicy, SpanStore};
use df_types::ids::*;
use df_types::l7::L7Protocol;
use df_types::net::FiveTuple;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::TimeNs;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

fn span(tap: TapSide, req: u64, resp: u64) -> Span {
    Span {
        span_id: SpanId(0),
        kind: SpanKind::Sys,
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: tap,
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(1),
        five_tuple: FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            40000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        ),
        l7_protocol: L7Protocol::Http1,
        endpoint: "GET /".to_string(),
        req_time: TimeNs(req),
        resp_time: TimeNs(resp),
        status: SpanStatus::Ok,
        status_code: Some(200),
        req_bytes: 1,
        resp_bytes: 1,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: None,
        systrace_id_resp: None,
        pseudo_thread_id: None,
        x_request_id_req: None,
        x_request_id_resp: None,
        tcp_seq_req: None,
        tcp_seq_resp: None,
        otel_trace_id: None,
        otel_span_id: None,
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

/// Build a store containing one `depth`-hop call chain (client+server span
/// per hop, linked by systrace ids and TCP sequences) plus `noise`
/// unrelated spans.
fn build_store(depth: u64, noise: u64) -> (SpanStore, SpanId) {
    let mut st = SpanStore::new();
    let mut first = None;
    for hop in 0..depth {
        let base = hop * 100;
        let mut server = span(TapSide::ServerProcess, base, base + 1000);
        server.tcp_seq_req = Some(10_000 + hop as u32);
        server.systrace_id_req = Some(SysTraceId(hop + 1));
        server.systrace_id_resp = Some(SysTraceId(1_000_000 + hop));
        let id = st.insert(server);
        first.get_or_insert(id);
        if hop + 1 < depth {
            let mut client = span(TapSide::ClientProcess, base + 10, base + 990);
            client.tcp_seq_req = Some(10_000 + hop as u32 + 1);
            client.systrace_id_req = Some(SysTraceId(hop + 1)); // chains to server
            client.systrace_id_resp = Some(SysTraceId(1_000_000 + hop));
            st.insert(client);
        }
    }
    for i in 0..noise {
        let mut s = span(TapSide::ServerProcess, 1_000_000 + i, 1_000_500 + i);
        s.tcp_seq_req = Some(2_000_000 + i as u32);
        s.systrace_id_req = Some(SysTraceId(3_000_000 + i));
        st.insert(s);
    }
    (st, first.unwrap())
}

/// The nine network/process capture points of one request-response exchange,
/// outermost (client process) first.
const LADDER: [TapSide; 9] = [
    TapSide::ClientProcess,
    TapSide::ClientPodNic,
    TapSide::ClientNodeNic,
    TapSide::ClientHypervisor,
    TapSide::Gateway,
    TapSide::ServerHypervisor,
    TapSide::ServerNodeNic,
    TapSide::ServerPodNic,
    TapSide::ServerProcess,
];

/// Append one capture-ladder exchange: nine sys spans sharing `seq`, linked
/// upstream via `link_in` (client side) and downstream via `link_out`
/// (server side), plus one app span tied in through `otel`.
fn push_exchange(spans: &mut Vec<Span>, seq: u32, link_in: u64, link_out: u64, otel: u128) {
    let base = u64::from(seq) * 1_000_000; // unique, monotone per exchange
    for (rank, tap) in LADDER.iter().enumerate() {
        let r = rank as u64;
        let mut s = span(*tap, base + r * 10, base + 900_000 - r * 10);
        s.tcp_seq_req = Some(seq);
        if *tap == TapSide::ClientProcess {
            s.systrace_id_req = Some(SysTraceId(link_in));
        }
        if *tap == TapSide::ServerProcess {
            s.systrace_id_req = Some(SysTraceId(link_out));
            s.otel_trace_id = Some(OtelTraceId(otel));
        }
        spans.push(s);
    }
    let mut app = span(TapSide::ServerApp, base + 1_000, base + 800_000);
    app.kind = SpanKind::App;
    app.otel_trace_id = Some(OtelTraceId(otel));
    app.otel_span_id = Some(OtelSpanId(u64::from(seq)));
    spans.push(app);
}

/// Build one trace shaped as a `branching`-ary tree of exchanges, `levels`
/// deep (10 spans per exchange). `branching == 1` yields a deep call chain;
/// larger factors yield wide fan-outs. Returns the store, the root span to
/// start assembly from, and the total span count.
fn build_exchange_tree(branching: usize, levels: usize) -> (SpanStore, SpanId, usize) {
    let mut spans = Vec::new();
    let mut next_seq = 1u32;
    let mut next_key = 1u64;
    let mut queue = VecDeque::new();
    queue.push_back((next_key, 0usize));
    next_key += 1;
    while let Some((link_in, level)) = queue.pop_front() {
        let link_out = next_key;
        next_key += 1;
        let seq = next_seq;
        next_seq += 1;
        push_exchange(&mut spans, seq, link_in, link_out, u128::from(seq));
        if level + 1 < levels {
            for _ in 0..branching {
                queue.push_back((link_out, level + 1));
            }
        }
    }
    let total = spans.len();
    let mut st = SpanStore::new();
    let ids = st.insert_batch(spans);
    (st, ids[0], total)
}

/// Config for the scale benchmarks: deep chains need more search iterations
/// than the paper's default 30, and the 100k traces exceed the default span
/// cap. Applied to both implementations, so the comparison stays fair.
fn scale_cfg() -> AssembleConfig {
    AssembleConfig {
        iterations: 50_000,
        max_spans: 200_000,
        ..AssembleConfig::default()
    }
}

/// Fan-out trees (branching 10): ~1k, ~10k and ~100k spans per trace.
fn bench_trace_scale_fanout(c: &mut Criterion) {
    let cfg = scale_cfg();
    let mut group = c.benchmark_group("alg1_scale_fanout");
    for (label, levels) in [("1k", 3), ("10k", 4), ("100k", 5)] {
        let (st, start, total) = build_exchange_tree(10, levels);
        assert_eq!(
            assemble_trace(&st, start, &cfg).len(),
            total,
            "scale bench trace must cover the whole store"
        );
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("new", label), &levels, |b, _| {
            b.iter(|| assemble_trace(&st, start, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("reference", label), &levels, |b, _| {
            b.iter(|| assemble_trace_reference(&st, start, &cfg))
        });
    }
    group.finish();
}

/// Deep call chains (branching 1): 100, 1k and 10k exchanges end to end.
/// The reference oracle is omitted at 100k spans — its re-scan Phase 1
/// revisits the whole growing set on each of ~20k iterations and takes
/// minutes, which is exactly the pathology the frontier rewrite removes.
fn bench_trace_scale_chain(c: &mut Criterion) {
    let cfg = scale_cfg();
    let mut group = c.benchmark_group("alg1_scale_chain");
    for (label, levels, run_reference) in [
        ("1k", 100, true),
        ("10k", 1_000, true),
        ("100k", 10_000, false),
    ] {
        let (st, start, total) = build_exchange_tree(1, levels);
        assert_eq!(
            assemble_trace(&st, start, &cfg).len(),
            total,
            "scale bench trace must cover the whole store"
        );
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("new", label), &levels, |b, _| {
            b.iter(|| assemble_trace(&st, start, &cfg))
        });
        if run_reference {
            group.bench_with_input(BenchmarkId::new("reference", label), &levels, |b, _| {
                b.iter(|| assemble_trace_reference(&st, start, &cfg))
            });
        }
    }
    group.finish();
}

/// Ingest path: per-span `insert` vs the deferred-sort `insert_batch`.
fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_ingest");
    for (label, levels) in [("10k", 4), ("100k", 5)] {
        let mut template = Vec::new();
        let mut key = 1u64;
        let mut seq = 1u32;
        for level in 0..levels {
            for _ in 0..10usize.pow(level as u32) {
                push_exchange(&mut template, seq, key, key + 1, u128::from(seq));
                key += 2;
                seq += 1;
            }
        }
        group.throughput(Throughput::Elements(template.len() as u64));
        group.bench_with_input(BenchmarkId::new("insert", label), &levels, |b, _| {
            b.iter(|| {
                let mut st = SpanStore::new();
                for s in template.clone() {
                    st.insert(s);
                }
                st.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("insert_batch", label), &levels, |b, _| {
            b.iter(|| {
                let mut st = SpanStore::new();
                st.insert_batch(template.clone());
                st.len()
            })
        });
    }
    group.finish();
}

/// Spread a template's spans over distinct flows: each exchange (identified
/// by its TCP sequence / otel span id) gets its own five-tuple, so
/// [`ShardPolicy`] routing actually disperses the corpus instead of hashing
/// every span to one shard.
fn spread_flows(spans: &mut [Span]) {
    for s in spans {
        let key = s
            .tcp_seq_req
            .or(s.otel_span_id.map(|v| v.0 as u32))
            .unwrap_or(0);
        s.five_tuple = FiveTuple::tcp(
            Ipv4Addr::new(10, (key >> 8) as u8, key as u8, 1),
            40_000,
            Ipv4Addr::new(10, 128, (key >> 16) as u8, 2),
            80,
        );
    }
}

/// The ~10k-span fan-out template used by the sharded and cache groups.
fn template_10k() -> Vec<Span> {
    let mut spans = Vec::new();
    let mut next_seq = 1u32;
    let mut next_key = 1u64;
    let mut queue = VecDeque::new();
    queue.push_back((next_key, 0usize));
    next_key += 1;
    while let Some((link_in, level)) = queue.pop_front() {
        let link_out = next_key;
        next_key += 1;
        let seq = next_seq;
        next_seq += 1;
        push_exchange(&mut spans, seq, link_in, link_out, u128::from(seq));
        if level + 1 < 4 {
            for _ in 0..10usize {
                queue.push_back((link_out, level + 1));
            }
        }
    }
    spread_flows(&mut spans);
    spans
}

/// Cross-shard assembly at 1, 4 and 16 shards over the same ~10k-span
/// corpus (flows spread so routing disperses spans). The 1-shard run reads
/// as the sharding overhead against `alg1_scale_fanout/new/10k`; the wider
/// runs show the cost of probing every shard per frontier key.
fn bench_sharded_assembly(c: &mut Criterion) {
    let cfg = scale_cfg();
    let template = template_10k();
    let total = template.len();
    let mut group = c.benchmark_group("alg1_sharded");
    group.throughput(Throughput::Elements(total as u64));
    for shards in [1usize, 4, 16] {
        let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(shards));
        let ids = st.insert_batch(template.clone());
        let start = ids[0];
        assert_eq!(
            assemble_trace_sharded(&st, start, &cfg).len(),
            total,
            "sharded bench trace must cover the whole corpus"
        );
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| assemble_trace_sharded(&st, start, &cfg))
        });
    }
    group.finish();
}

/// Warm-vs-cold trace cache over the 10k-span corpus: `cold` runs the full
/// cross-shard Algorithm 1 every iteration; `warm` repeats the same query
/// against a valid cache entry (an `Arc` clone after generation checks).
/// The setup asserts the warm path is ≥10× faster — the cache's reason to
/// exist — so a regression fails the bench smoke run, not just the charts.
fn bench_trace_cache(c: &mut Criterion) {
    let cfg = scale_cfg();
    let template = template_10k();
    let total = template.len();
    let mut st = ShardedSpanStore::new(ShardPolicy::with_shards(4));
    let ids = st.insert_batch(template);
    let start = ids[0];
    let mut cache = TraceCache::new();
    let trace = assemble_trace_sharded(&st, start, &cfg);
    assert_eq!(trace.len(), total);
    cache.store(start, trace, &st);

    // Sanity: warm ≥10× cold (acceptance criterion), measured coarsely.
    let t0 = std::time::Instant::now();
    for _ in 0..5 {
        std::hint::black_box(assemble_trace_sharded(&st, start, &cfg));
    }
    let cold = t0.elapsed();
    let t1 = std::time::Instant::now();
    for _ in 0..5 {
        match cache.lookup(start, &st) {
            CacheOutcome::Hit(t) => std::hint::black_box(t.len()),
            _ => panic!("cache entry must stay valid: store unmutated"),
        };
    }
    let warm = t1.elapsed();
    assert!(
        warm * 10 <= cold,
        "warm cache hit must be ≥10× faster than cold assembly: warm={warm:?} cold={cold:?}"
    );

    let mut group = c.benchmark_group("alg1_trace_cache");
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("cold", |b| {
        b.iter(|| assemble_trace_sharded(&st, start, &cfg))
    });
    group.bench_function("warm", |b| {
        b.iter(|| match cache.lookup(start, &st) {
            CacheOutcome::Hit(t) => t.len(),
            _ => unreachable!("store unmutated"),
        })
    });
    group.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let cfg = AssembleConfig::default();
    let mut group = c.benchmark_group("alg1_chain_depth");
    for depth in [4u64, 16, 64, 256] {
        let (st, start) = build_store(depth, 1_000);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| assemble_trace(&st, start, &cfg))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alg1_store_noise");
    for noise in [1_000u64, 10_000, 100_000] {
        let (st, start) = build_store(16, noise);
        group.bench_with_input(BenchmarkId::from_parameter(noise), &noise, |b, _| {
            b.iter(|| assemble_trace(&st, start, &cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assembly,
    bench_trace_scale_fanout,
    bench_trace_scale_chain,
    bench_sharded_assembly,
    bench_trace_cache,
    bench_ingest
);
criterion_main!(benches);
