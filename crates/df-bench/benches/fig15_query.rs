//! Criterion microbench for Fig. 15: span-list and trace queries against a
//! populated server (Bookinfo-generated spans).

use criterion::{criterion_group, criterion_main, Criterion};
use deepflow::mesh::apps;
use deepflow::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn populated_server() -> (Server, Vec<SpanId>) {
    let mut make_tracer = || apps::no_tracer();
    let (mut world, _h) = apps::bookinfo(40.0, DurationNs::from_secs(30), &mut make_tracer);
    let mut df = Deployment::install(&mut world).expect("install");
    df.run(&mut world, TimeNs::from_secs(31), DurationNs::from_secs(1));
    let ids: Vec<SpanId> = df
        .server
        .span_list(&SpanQuery {
            limit: 500,
            ..SpanQuery::window(TimeNs::ZERO, TimeNs::from_secs(31))
        })
        .iter()
        .map(|s| s.span_id)
        .collect();
    (
        std::mem::replace(&mut df.server, Server::new(&Default::default())),
        ids,
    )
}

fn bench_queries(c: &mut Criterion) {
    let (server, ids) = populated_server();
    let mut group = c.benchmark_group("fig15_query");
    group.bench_function("span_list_1000_page", |b| {
        let q = SpanQuery {
            limit: 1000,
            ..SpanQuery::window(TimeNs::ZERO, TimeNs::from_secs(31))
        };
        b.iter(|| server.span_list(&q))
    });
    group.bench_function("span_list_errors_scan", |b| {
        let q = SpanQuery {
            errors_only: true,
            limit: usize::MAX,
            ..SpanQuery::window(TimeNs::ZERO, TimeNs::from_secs(31))
        };
        b.iter(|| server.span_list(&q))
    });
    group.bench_function("trace_sequential", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let id = ids[i % ids.len()];
            i += 1;
            server.trace(id)
        })
    });
    group.bench_function("trace_random", |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| {
            let id = ids[rng.gen_range(0..ids.len())];
            server.trace(id)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
