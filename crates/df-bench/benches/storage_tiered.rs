//! Tiered-storage bench: buffer-pool page-in cost and eviction-policy
//! quality.
//!
//! Two questions, one per part:
//!
//! * **What does a cold read cost?** Criterion latency of a warm hit
//!   (segment resident, pin/unpin only) vs a cold miss (disk-scheduler
//!   read + DFSPANS1 decode + frame install), plus spill throughput.
//!   The manual timing loops record the same numbers to JSON.
//! * **Does LRU-K earn its complexity?** A scan-then-point workload —
//!   a hot set of segments point-queried every round, interleaved with
//!   one-pass scans over a cold range wider than the frame budget — run
//!   against the *same* segment files under LRU-K, LRU and FIFO. LRU-K
//!   must keep the hot set resident (scan pages never reach K accesses,
//!   so they evict each other); LRU and FIFO flush it every scan. The
//!   bench asserts the hit-rate ordering, so the `--test` smoke run in
//!   `ci.sh` gates the claim.
//!
//! Results go to `results/storage_tiered.json` and the repo-root
//! `BENCH_storage_tiered.json` snapshot quoted by `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use df_storage::{persist, BufferPool, BufferPoolConfig, EvictionPolicy, ShardPolicy, SpanStore};
use df_types::ids::{FlowId, SpanId};
use df_types::span::{Span, TapSide};
use df_types::TimeNs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const FRAMES: usize = 16;
const HOT_SEGMENTS: usize = 8;
const SCAN_SEGMENTS: usize = 48;
const ROUNDS: usize = 10;
const SPANS_PER_SEGMENT: usize = 16;

fn segment_spans(seg: u64) -> Vec<Span> {
    (0..SPANS_PER_SEGMENT as u64)
        .map(|i| {
            let mut s = Span::synthetic(
                TapSide::ServerProcess,
                seg * 1_000_000_000 + i * 1_000,
                seg * 1_000_000_000 + i * 1_000 + 500,
            );
            s.span_id = SpanId(seg * SPANS_PER_SEGMENT as u64 + i + 1);
            s.flow_id = FlowId(seg);
            s
        })
        .collect()
}

/// Write `count` segment files and return their paths.
fn write_segments(dir: &Path, count: usize) -> Vec<PathBuf> {
    std::fs::create_dir_all(dir).expect("create bench dir");
    (0..count)
        .map(|seg| {
            let spans = segment_spans(seg as u64);
            let rows: Vec<u32> = (0..spans.len() as u32).collect();
            let bytes = persist::encode_span_segment(&spans, &rows);
            let path = dir.join(format!("seg{seg:04}.dfspan"));
            std::fs::write(&path, bytes).expect("write segment");
            path
        })
        .collect()
}

/// A pool over the given segment files; returns (pool, segment ids).
fn pool_over(paths: &[PathBuf], policy: EvictionPolicy, frames: usize) -> (BufferPool, Vec<u64>) {
    let pool = BufferPool::new(BufferPoolConfig {
        frames,
        k: 2,
        policy,
        queue_depth: 64,
    });
    let ids = paths
        .iter()
        .map(|p| {
            let id = pool.alloc_segment();
            pool.register(id, p.clone());
            id
        })
        .collect();
    (pool, ids)
}

/// Run the scan-then-point workload; returns (hit_rate, hot_hit_rate).
/// Each round: every hot segment twice (point queries with re-use, so
/// they cross the K=2 threshold), then a one-pass scan over the cold
/// range (wider than the frame budget), then the hot set once more.
fn scan_then_point(pool: &BufferPool, ids: &[u64]) -> (f64, f64) {
    let (hot, scan) = ids.split_at(HOT_SEGMENTS);
    let mut hot_accesses = 0u64;
    let mut hot_hits = 0u64;
    let mut touch = |seg: u64, is_hot: bool| {
        let before = pool.stats().misses;
        let page = pool.fetch(seg).expect("segment pages in");
        assert_eq!(page.len(), SPANS_PER_SEGMENT);
        drop(page);
        if is_hot {
            hot_accesses += 1;
            if pool.stats().misses == before {
                hot_hits += 1;
            }
        }
    };
    for _round in 0..ROUNDS {
        for &h in hot {
            touch(h, true);
            touch(h, true);
        }
        for &s in scan {
            touch(s, false);
        }
        for &h in hot {
            touch(h, true);
        }
    }
    let st = pool.stats();
    let total = (st.hits + st.misses) as f64;
    (
        st.hits as f64 / total,
        hot_hits as f64 / hot_accesses as f64,
    )
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("df-bench-tiered-{tag}-{}", std::process::id()))
}

fn bench_tiered(c: &mut Criterion) {
    let dir = bench_dir("criterion");
    let paths = write_segments(&dir, 2);

    let mut group = c.benchmark_group("storage_tiered");

    // Warm hit: resident frame, pin/unpin and history update only.
    {
        let (pool, ids) = pool_over(&paths, EvictionPolicy::LruK, FRAMES);
        pool.fetch(ids[0]).expect("prime");
        group.bench_function("warm_hit", |b| {
            b.iter(|| pool.fetch(ids[0]).expect("resident").len())
        });
    }
    // Cold miss: one frame, two segments — every fetch evicts and pages
    // in through the disk scheduler.
    {
        let (pool, ids) = pool_over(&paths, EvictionPolicy::LruK, 1);
        let mut flip = 0usize;
        group.bench_function("cold_miss", |b| {
            b.iter(|| {
                flip ^= 1;
                pool.fetch(ids[flip]).expect("pages in").len()
            })
        });
    }
    // Spill throughput: encode + write + flip for a 4-bucket store.
    group.bench_function("spill_4_buckets", |b| {
        b.iter(|| {
            let mut st = SpanStore::new();
            for seg in 0..4u64 {
                for s in segment_spans(seg) {
                    let mut s = s;
                    s.span_id = SpanId(0);
                    st.insert(s);
                }
            }
            let pool = Arc::new(BufferPool::new(BufferPoolConfig::with_frames(FRAMES)));
            let stats = st
                .spill_before(
                    &ShardPolicy::single(),
                    TimeNs(u64::MAX),
                    &pool,
                    &dir.join("spill"),
                    0,
                )
                .expect("spill succeeds");
            stats.spans
        })
    });
    group.finish();

    // ---- Manual measurements for the JSON snapshot ----

    let warm_ns = {
        let (pool, ids) = pool_over(&paths, EvictionPolicy::LruK, FRAMES);
        pool.fetch(ids[0]).expect("prime");
        let t = Instant::now();
        let reps = 10_000u32;
        for _ in 0..reps {
            let p = pool.fetch(ids[0]).expect("resident");
            std::hint::black_box(p.len());
        }
        t.elapsed().as_nanos() as f64 / f64::from(reps)
    };
    let cold_ns = {
        let (pool, ids) = pool_over(&paths, EvictionPolicy::LruK, 1);
        let t = Instant::now();
        let reps = 200u32;
        for r in 0..reps {
            let p = pool.fetch(ids[(r % 2) as usize]).expect("pages in");
            std::hint::black_box(p.len());
        }
        t.elapsed().as_nanos() as f64 / f64::from(reps)
    };

    // ---- Eviction-policy shoot-out on the scan-then-point workload ----

    let dir2 = bench_dir("policies");
    let paths = write_segments(&dir2, HOT_SEGMENTS + SCAN_SEGMENTS);
    let mut rates = Vec::new();
    for (name, policy) in [
        ("lru_k", EvictionPolicy::LruK),
        ("lru", EvictionPolicy::Lru),
        ("fifo", EvictionPolicy::Fifo),
    ] {
        let (pool, ids) = pool_over(&paths, policy, FRAMES);
        let (hit_rate, hot_hit_rate) = scan_then_point(&pool, &ids);
        println!(
            "storage_tiered/{name:6}  hit rate {:5.1}%   hot-set hit rate {:5.1}%",
            hit_rate * 100.0,
            hot_hit_rate * 100.0
        );
        rates.push((name, hit_rate, hot_hit_rate));
    }
    // The claim the smoke gate enforces: scan resistance.
    assert!(
        rates[0].1 > rates[1].1 && rates[0].1 > rates[2].1,
        "LRU-K must beat LRU and FIFO on scan-then-point: {rates:?}"
    );
    assert!(
        rates[0].2 > 0.9,
        "LRU-K must keep the hot set resident across scans: {rates:?}"
    );

    let json = serde_json::json!({
        "config": {
            "frames": FRAMES,
            "k": 2,
            "hot_segments": HOT_SEGMENTS,
            "scan_segments": SCAN_SEGMENTS,
            "rounds": ROUNDS,
            "spans_per_segment": SPANS_PER_SEGMENT,
        },
        "latency_ns": {
            "warm_hit": warm_ns,
            "cold_miss": cold_ns,
        },
        "hit_rate": rates
            .iter()
            .map(|(n, hr, _)| (n.to_string(), *hr))
            .collect::<std::collections::BTreeMap<_, _>>(),
        "hot_set_hit_rate": rates
            .iter()
            .map(|(n, _, hh)| (n.to_string(), *hh))
            .collect::<std::collections::BTreeMap<_, _>>(),
    });
    let root = repo_root();
    let body = serde_json::to_string_pretty(&json).expect("serialise");
    let _ = std::fs::create_dir_all(root.join("results"));
    let _ = std::fs::write(root.join("results/storage_tiered.json"), &body);
    let _ = std::fs::write(root.join("BENCH_storage_tiered.json"), &body);
    println!("[saved results/storage_tiered.json + BENCH_storage_tiered.json]");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

criterion_group!(benches, bench_tiered);
criterion_main!(benches);
