//! Application-layer protocol vocabulary.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Application-layer protocols DeepFlow's inference engine recognises
/// (paper §3.3.1: "iterates through the common protocol specifications").
///
/// The set mirrors the protocol references cited by the paper: HTTP/1.1
/// (RFC 7231), HTTP/2 (RFC 7540), DNS (RFC 1035), Redis RESP, the MySQL
/// client/server protocol, the Kafka wire protocol, MQTT v3.1 and Dubbo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum L7Protocol {
    /// HTTP/1.1 — pipelined; request/response matched by order.
    Http1,
    /// HTTP/2 — multiplexed; matched by stream identifier.
    Http2,
    /// DNS — multiplexed over UDP; matched by transaction id.
    Dns,
    /// Redis RESP — pipelined.
    Redis,
    /// MySQL client/server protocol — pipelined (one outstanding command).
    Mysql,
    /// Kafka wire protocol — multiplexed; matched by correlation id.
    Kafka,
    /// MQTT v3.1 — matched by packet identifier where applicable.
    Mqtt,
    /// Dubbo RPC — multiplexed; matched by request id.
    Dubbo,
    /// AMQP 0-9-1 style broker protocol (RabbitMQ case study, Fig. 12).
    Amqp,
    /// TLS-wrapped payload whose inner protocol was recovered via uprobes on
    /// `ssl_read`/`ssl_write` (paper §3.2.1 instrumentation extensions).
    Tls,
    /// A user-supplied protocol specification (paper §3.3.1: "the optional
    /// user-supplied protocol specifications"), identified by the slot it
    /// was registered under.
    Custom(u8),
    /// Inference failed; the flow is still measured at L4.
    Unknown,
}

impl L7Protocol {
    /// Whether the protocol multiplexes concurrent exchanges on one
    /// connection ("parallel protocols" in §3.3.1). Multiplexed protocols
    /// are session-aggregated by their embedded distinguishing attribute;
    /// pipelined ones by request/response order.
    pub fn is_multiplexed(self) -> bool {
        matches!(
            self,
            L7Protocol::Http2 | L7Protocol::Dns | L7Protocol::Kafka | L7Protocol::Dubbo
        )
    }

    /// All concrete protocols, in the order the inference engine tries them.
    pub const ALL: [L7Protocol; 9] = [
        L7Protocol::Http2,
        L7Protocol::Http1,
        L7Protocol::Dns,
        L7Protocol::Redis,
        L7Protocol::Mysql,
        L7Protocol::Kafka,
        L7Protocol::Mqtt,
        L7Protocol::Dubbo,
        L7Protocol::Amqp,
    ];
}

impl fmt::Display for L7Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            L7Protocol::Http1 => "HTTP/1.1",
            L7Protocol::Http2 => "HTTP/2",
            L7Protocol::Dns => "DNS",
            L7Protocol::Redis => "Redis",
            L7Protocol::Mysql => "MySQL",
            L7Protocol::Kafka => "Kafka",
            L7Protocol::Mqtt => "MQTT",
            L7Protocol::Dubbo => "Dubbo",
            L7Protocol::Amqp => "AMQP",
            L7Protocol::Tls => "TLS",
            L7Protocol::Custom(id) => return write!(f, "custom-{id}"),
            L7Protocol::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// The inferred type of one L7 message (paper Figure 6, phase 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageType {
    /// The message initiates an exchange.
    Request,
    /// The message completes an exchange.
    Response,
    /// A one-way message with no expected reply (e.g. MQTT PUBLISH QoS 0).
    /// Out of scope for span construction per §3.3.1, but still counted in
    /// L7 metrics.
    OneWay,
    /// Could not be classified.
    Unknown,
}

impl fmt::Display for MessageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageType::Request => "request",
            MessageType::Response => "response",
            MessageType::OneWay => "one-way",
            MessageType::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// The key used to pair a request with its response inside one flow.
///
/// Pipelined protocols use [`SessionKey::Ordered`] (FIFO matching); multiplexed
/// protocols carry an embedded id (DNS transaction id, HTTP/2 stream id,
/// Kafka correlation id, Dubbo request id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionKey {
    /// Match by order within the flow (pipeline protocols).
    Ordered,
    /// Match by the protocol's embedded distinguishing attribute.
    Multiplexed(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplexed_classification_matches_paper() {
        assert!(L7Protocol::Http2.is_multiplexed());
        assert!(L7Protocol::Dns.is_multiplexed());
        assert!(!L7Protocol::Http1.is_multiplexed());
        assert!(!L7Protocol::Redis.is_multiplexed());
        assert!(!L7Protocol::Mysql.is_multiplexed());
    }

    #[test]
    fn all_contains_no_sentinels() {
        assert!(!L7Protocol::ALL.contains(&L7Protocol::Unknown));
        assert!(!L7Protocol::ALL.contains(&L7Protocol::Tls));
    }

    #[test]
    fn display_names() {
        assert_eq!(L7Protocol::Http1.to_string(), "HTTP/1.1");
        assert_eq!(MessageType::Request.to_string(), "request");
    }
}
