//! Cluster RPC vocabulary: the messages trace-server nodes exchange over
//! the `df-net` fabric.
//!
//! Two protocols share one envelope:
//!
//! * **Span-batch shipping** — an agent (or ingest front-end) ships a
//!   contiguous run of routed spans to the node owning their shard
//!   ([`RpcBody::SpanBatch`]), acknowledged per batch
//!   ([`RpcBody::SpanBatchAck`]). `start_row` makes application
//!   idempotent: a duplicate (retransmitted) batch is detected by row
//!   position, an out-of-order batch is stashed until contiguous.
//! * **Candidate-set probing** — Algorithm 1 Phase 1's per-round key
//!   batches travel to remote shard owners as [`RpcBody::CandidateRequest`]
//!   and come back as `(shard, row, span)` triples
//!   ([`RpcBody::CandidateResponse`]). The `round` number lets the
//!   coordinator reject stale or duplicate responses, which is what keeps
//!   retries from reordering frontier rounds.
//! * **Span fetch** ([`RpcBody::SpanFetch`] /
//!   [`RpcBody::SpanFetchResponse`]) — the coordinator pulling one span by
//!   `(shard, row)` address, e.g. the query's start span when its shard
//!   lives on another node.
//! * **Replication** — a shard primary forwards each accepted batch to
//!   the shard's replicas as [`RpcBody::ReplicateBatch`] (the agent's
//!   DFW1 bytes carried verbatim, same layout as a span batch) and
//!   collects [`RpcBody::ReplicateAck`]s; the primary acks the agent
//!   only once its write quorum is met.
//! * **Anti-entropy** — replicas compare per-shard
//!   `(row_watermark, content_digest)` summaries
//!   ([`RpcBody::ShardSummaryRequest`] / [`RpcBody::ShardSummaryResponse`])
//!   and a lagging replica pulls the missing contiguous row ranges from a
//!   peer ([`RpcBody::RowRangeRequest`] / [`RpcBody::RowRangeResponse`]),
//!   applying them through the same reorder buffer as live replication so
//!   convergence is byte-identical.
//!
//! ## Framing
//!
//! An envelope serialises to a fabric-segment payload as a fixed 17-byte
//! header — magic `DFR1`, `rpc_id` (u64 LE), a kind byte, body length
//! (u32 LE) — followed by a **binary body**. Span payloads travel as
//! [DFW1 batches](crate::wire) (see `docs/WIRE_FORMAT.md`); the remaining
//! fields are fixed-width little-endian integers and LEB128 varints. A
//! [`RpcBody::SpanBatch`] body carries the sender's encoded batch
//! *verbatim* — a node forwarding or retrying a batch never re-encodes
//! it, and the receiver decodes the exact bytes the agent produced.
//!
//! The kind byte tells a receiver how to parse the body (and lets a tap
//! classify traffic via [`RpcEnvelope::peek`] without parsing anything).
//! [`RpcEnvelope::encode`] is infallible by construction: every body
//! value has exactly one byte encoding and nothing in the pipeline can
//! fail. Decoding never panics; every failure is a structured
//! [`RpcDecodeError`].

use crate::span::Span;
use crate::wire::{self, put_varint_u128, put_varint_u64, Cursor, WireDecodeError};
use bytes::Bytes;
use std::fmt;

/// Magic prefixing every RPC payload on the wire.
pub const RPC_MAGIC: &[u8; 4] = b"DFR1";

/// Fixed header length: magic (4) + rpc_id (8) + kind (1) + body len (4).
pub const RPC_HEADER_LEN: usize = 17;

/// Normative table of every DFR1 RPC kind: `(variant name, kind byte)`.
/// `df-audit`'s spec-exhaustiveness pass cross-checks this table against
/// [`RpcBody::kind`], `decode_body`, and the RPC_KINDS table in
/// `docs/WIRE_FORMAT.md` — adding a kind without updating all four is a
/// CI failure.
pub const RPC_KINDS: &[(&str, u8)] = &[
    ("SpanBatch", 1),
    ("SpanBatchAck", 2),
    ("CandidateRequest", 3),
    ("CandidateResponse", 4),
    ("SpanFetch", 5),
    ("SpanFetchResponse", 6),
    ("ReplicateBatch", 7),
    ("ReplicateAck", 8),
    ("ShardSummaryRequest", 9),
    ("ShardSummaryResponse", 10),
    ("RowRangeRequest", 11),
    ("RowRangeResponse", 12),
];

/// One frontier round's association keys, batched per index — the Phase 1
/// probe payload. Field order mirrors the probe order on the receiving
/// shard (systrace, pseudo-thread, X-Request-ID, TCP seq, OTel trace), so
/// two stores probing the same batch return candidates in the same order.
/// That is also the wire order: each index is a varint count followed by
/// its keys as varints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateKeys {
    /// Thread-propagated syscall trace ids.
    pub systrace: Vec<u64>,
    /// Coroutine pseudo-thread ids.
    pub pseudo_thread: Vec<u64>,
    /// X-Request-ID header values.
    pub x_request: Vec<u128>,
    /// TCP sequence numbers.
    pub tcp_seq: Vec<u32>,
    /// Third-party (OTel) trace ids.
    pub otel_trace: Vec<u128>,
}

impl CandidateKeys {
    /// Total keys across all indexes (saturating — the sum is a size
    /// estimate, not an offset).
    pub fn len(&self) -> usize {
        self.systrace
            .len()
            .saturating_add(self.pseudo_thread.len())
            .saturating_add(self.x_request.len())
            .saturating_add(self.tcp_seq.len())
            .saturating_add(self.otel_trace.len())
    }

    /// Whether the batch holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One remote candidate: the span plus its `(shard, row)` address, so the
/// coordinator can extend its global visited set exactly as a local probe
/// would.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSpan {
    /// Global shard index the span lives in.
    pub shard: u16,
    /// Row within that shard.
    pub row: u32,
    /// The span itself.
    pub span: Span,
}

/// RPC message body.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcBody {
    /// Ship a contiguous run of routed spans to the shard's owner. The
    /// spans travel as one DFW1 batch carried verbatim (the spans inside
    /// hold their already-assigned global ids); `start_row` is the row
    /// the first span must land on (idempotency anchor).
    SpanBatch {
        /// Global shard index.
        shard: u16,
        /// Row the first span lands on.
        start_row: u32,
        /// The DFW1-encoded batch, exactly as the sender produced it.
        /// Build with [`RpcBody::span_batch`], unpack with
        /// [`wire::decode_batch`]; [`wire::peek_span_count`] reads the
        /// span count without decoding.
        wire: Bytes,
    },
    /// Acknowledge a span batch (same coordinates as the batch).
    SpanBatchAck {
        /// Global shard index.
        shard: u16,
        /// Row the acknowledged batch started at.
        start_row: u32,
        /// Spans acknowledged.
        count: u32,
    },
    /// Probe the receiver's shards with one frontier round's key batch.
    CandidateRequest {
        /// Phase 1 round number (coordinator-local, monotone).
        round: u32,
        /// The round's keys.
        keys: CandidateKeys,
    },
    /// The receiver's new candidate rows for a probe round. On the wire
    /// the spans travel as one shared-dictionary DFW1 batch followed by a
    /// `(shard, row)` address pair per span, in batch order.
    CandidateResponse {
        /// Round this responds to.
        round: u32,
        /// Matching spans with their global addresses.
        candidates: Vec<CandidateSpan>,
    },
    /// Fetch one span by address (the query coordinator seeding Phase 1
    /// when the start span's shard lives on another node).
    SpanFetch {
        /// Global shard index.
        shard: u16,
        /// Row within the shard.
        row: u32,
    },
    /// Answer to a [`RpcBody::SpanFetch`]; `None` when the row does not
    /// exist (or is tombstoned) on the receiver. A present span travels
    /// as a single-span DFW1 batch.
    SpanFetchResponse {
        /// Echoed shard.
        shard: u16,
        /// Echoed row.
        row: u32,
        /// The span, if present and live.
        span: Option<Box<Span>>,
    },
    /// Primary → replica forward of an accepted span batch. Same body
    /// layout as [`RpcBody::SpanBatch`]; the distinct kind lets a replica
    /// know it must *not* forward further, and lets a tap tell ingest
    /// traffic from replication traffic.
    ReplicateBatch {
        /// Global shard index.
        shard: u16,
        /// Row the first span lands on.
        start_row: u32,
        /// The DFW1-encoded batch, forwarded verbatim — never re-encoded
        /// between the agent and the last replica.
        wire: Bytes,
    },
    /// Replica → primary acknowledgement of a [`RpcBody::ReplicateBatch`]
    /// (same coordinates as the forwarded batch).
    ReplicateAck {
        /// Global shard index.
        shard: u16,
        /// Row the acknowledged batch started at.
        start_row: u32,
        /// Spans acknowledged.
        count: u32,
    },
    /// Ask a peer replica for its per-shard anti-entropy summary.
    ShardSummaryRequest {
        /// Global shard index.
        shard: u16,
    },
    /// A replica's anti-entropy summary: its contiguous applied-row
    /// watermark and a content digest over those rows.
    ShardSummaryResponse {
        /// Echoed shard.
        shard: u16,
        /// Applied rows (the contiguous prefix; stashed out-of-order
        /// batches beyond the first gap do not count).
        rows: u32,
        /// FNV-1a digest folded over the applied rows' DFW1 encodings.
        digest: u64,
    },
    /// Pull a contiguous row range from a peer replica (anti-entropy
    /// backfill of rows the requester is missing).
    RowRangeRequest {
        /// Global shard index.
        shard: u16,
        /// First row wanted.
        start_row: u32,
        /// Upper bound on rows returned.
        max_rows: u32,
    },
    /// Answer to a [`RpcBody::RowRangeRequest`]: the rows the peer
    /// actually holds from `start_row`, as one DFW1 batch (possibly
    /// empty, possibly shorter than asked).
    RowRangeResponse {
        /// Echoed shard.
        shard: u16,
        /// Row the first returned span sits on.
        start_row: u32,
        /// The DFW1-encoded rows.
        wire: Bytes,
    },
}

impl RpcBody {
    /// The header kind byte for this body.
    pub fn kind(&self) -> u8 {
        match self {
            RpcBody::SpanBatch { .. } => 1,
            RpcBody::SpanBatchAck { .. } => 2,
            RpcBody::CandidateRequest { .. } => 3,
            RpcBody::CandidateResponse { .. } => 4,
            RpcBody::SpanFetch { .. } => 5,
            RpcBody::SpanFetchResponse { .. } => 6,
            RpcBody::ReplicateBatch { .. } => 7,
            RpcBody::ReplicateAck { .. } => 8,
            RpcBody::ShardSummaryRequest { .. } => 9,
            RpcBody::ShardSummaryResponse { .. } => 10,
            RpcBody::RowRangeRequest { .. } => 11,
            RpcBody::RowRangeResponse { .. } => 12,
        }
    }

    /// Build a [`RpcBody::SpanBatch`], encoding `spans` as one DFW1
    /// batch. The resulting bytes are what travels — retries and
    /// forwards reuse them verbatim.
    pub fn span_batch(shard: u16, start_row: u32, spans: &[Span]) -> RpcBody {
        RpcBody::SpanBatch {
            shard,
            start_row,
            wire: Bytes::from(wire::encode_batch(spans)),
        }
    }

    /// Build a [`RpcBody::RowRangeResponse`], encoding `spans` as one
    /// DFW1 batch.
    pub fn row_range_response(shard: u16, start_row: u32, spans: &[Span]) -> RpcBody {
        RpcBody::RowRangeResponse {
            shard,
            start_row,
            wire: Bytes::from(wire::encode_batch(spans)),
        }
    }

    /// Append this body's binary encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RpcBody::SpanBatch {
                shard,
                start_row,
                wire,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&start_row.to_le_bytes());
                out.extend_from_slice(wire);
            }
            RpcBody::SpanBatchAck {
                shard,
                start_row,
                count,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&start_row.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
            RpcBody::CandidateRequest { round, keys } => {
                out.extend_from_slice(&round.to_le_bytes());
                put_varint_u64(out, keys.systrace.len() as u64);
                for &k in &keys.systrace {
                    put_varint_u64(out, k);
                }
                put_varint_u64(out, keys.pseudo_thread.len() as u64);
                for &k in &keys.pseudo_thread {
                    put_varint_u64(out, k);
                }
                put_varint_u64(out, keys.x_request.len() as u64);
                for &k in &keys.x_request {
                    put_varint_u128(out, k);
                }
                put_varint_u64(out, keys.tcp_seq.len() as u64);
                for &k in &keys.tcp_seq {
                    put_varint_u64(out, k as u64);
                }
                put_varint_u64(out, keys.otel_trace.len() as u64);
                for &k in &keys.otel_trace {
                    put_varint_u128(out, k);
                }
            }
            RpcBody::CandidateResponse { round, candidates } => {
                out.extend_from_slice(&round.to_le_bytes());
                let mut enc = wire::WireEncoder::new();
                for c in candidates {
                    enc.push(&c.span);
                }
                let batch = enc.finish();
                put_varint_u64(out, batch.len() as u64);
                out.extend_from_slice(&batch);
                for c in candidates {
                    out.extend_from_slice(&c.shard.to_le_bytes());
                    out.extend_from_slice(&c.row.to_le_bytes());
                }
            }
            RpcBody::SpanFetch { shard, row } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&row.to_le_bytes());
            }
            RpcBody::SpanFetchResponse { shard, row, span } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&row.to_le_bytes());
                match span {
                    None => out.push(0),
                    Some(s) => {
                        out.push(1);
                        let batch = wire::encode_batch(std::slice::from_ref(s));
                        put_varint_u64(out, batch.len() as u64);
                        out.extend_from_slice(&batch);
                    }
                }
            }
            RpcBody::ReplicateBatch {
                shard,
                start_row,
                wire,
            }
            | RpcBody::RowRangeResponse {
                shard,
                start_row,
                wire,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&start_row.to_le_bytes());
                out.extend_from_slice(wire);
            }
            RpcBody::ReplicateAck {
                shard,
                start_row,
                count,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&start_row.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
            RpcBody::ShardSummaryRequest { shard } => {
                out.extend_from_slice(&shard.to_le_bytes());
            }
            RpcBody::ShardSummaryResponse {
                shard,
                rows,
                digest,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
            }
            RpcBody::RowRangeRequest {
                shard,
                start_row,
                max_rows,
            } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&start_row.to_le_bytes());
                out.extend_from_slice(&max_rows.to_le_bytes());
            }
        }
    }
}

/// A framed RPC message.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcEnvelope {
    /// Caller-assigned id; the response echoes it, retries reuse it.
    pub rpc_id: u64,
    /// The message.
    pub body: RpcBody,
}

/// Why a payload failed to decode as an RPC envelope.
///
/// Decoding is total: any byte sequence maps to either an envelope or one
/// of these variants — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcDecodeError {
    /// Payload shorter than the fixed 17-byte header.
    Truncated,
    /// Magic bytes are not `DFR1` (not an RPC payload at all).
    BadMagic,
    /// Header body-length disagrees with the actual payload length.
    LengthMismatch {
        /// Length the header claimed.
        claimed: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// The header kind byte names no message kind in this protocol
    /// version (valid kinds are 1–12).
    BadKind {
        /// The unassigned kind byte.
        kind: u8,
    },
    /// An embedded DFW1 span payload declares a wire-format version this
    /// decoder does not speak.
    BadVersion {
        /// The version byte the payload carried.
        found: u8,
    },
    /// The binary body failed to parse (truncated field, over-wide
    /// varint, bad discriminant, malformed embedded span batch...). The
    /// inner [`WireDecodeError`] names the failing field.
    Body(WireDecodeError),
    /// An embedded DFW1 batch holds a different number of spans than the
    /// body declares around it.
    BodyCountMismatch {
        /// Spans the body structure declares.
        declared: u64,
        /// Spans the embedded batch actually holds.
        got: u64,
    },
}

impl fmt::Display for RpcDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcDecodeError::Truncated => write!(f, "payload shorter than RPC header"),
            RpcDecodeError::BadMagic => write!(f, "payload does not start with DFR1"),
            RpcDecodeError::LengthMismatch { claimed, actual } => {
                write!(f, "header claims {claimed}-byte body, got {actual}")
            }
            RpcDecodeError::BadKind { kind } => write!(f, "unknown RPC kind {kind}"),
            RpcDecodeError::BadVersion { found } => {
                write!(f, "embedded span payload speaks DFW1 version {found}")
            }
            RpcDecodeError::Body(e) => write!(f, "bad RPC body: {e}"),
            RpcDecodeError::BodyCountMismatch { declared, got } => {
                write!(f, "body declares {declared} spans, batch holds {got}")
            }
        }
    }
}

impl std::error::Error for RpcDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcDecodeError::Body(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireDecodeError> for RpcDecodeError {
    /// Wrap a body-level error, hoisting an embedded batch's version
    /// mismatch to the envelope's own [`RpcDecodeError::BadVersion`].
    fn from(e: WireDecodeError) -> RpcDecodeError {
        match e {
            WireDecodeError::BadVersion { found } => RpcDecodeError::BadVersion { found },
            other => RpcDecodeError::Body(other),
        }
    }
}

fn read_u16_le(cur: &mut Cursor<'_>, ctx: &'static str) -> Result<u16, WireDecodeError> {
    let b: [u8; 2] = cur
        .take(2, ctx)?
        .try_into()
        .map_err(|_| WireDecodeError::Truncated { context: ctx })?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32_le(cur: &mut Cursor<'_>, ctx: &'static str) -> Result<u32, WireDecodeError> {
    let b: [u8; 4] = cur
        .take(4, ctx)?
        .try_into()
        .map_err(|_| WireDecodeError::Truncated { context: ctx })?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64_le(cur: &mut Cursor<'_>, ctx: &'static str) -> Result<u64, WireDecodeError> {
    let b: [u8; 8] = cur
        .take(8, ctx)?
        .try_into()
        .map_err(|_| WireDecodeError::Truncated { context: ctx })?;
    Ok(u64::from_le_bytes(b))
}

/// Read a `shard + start_row + verbatim DFW1 batch` body (the shared
/// shape of span-batch, replicate-batch, and row-range-response bodies),
/// validating the embedded batch header at the envelope boundary.
fn read_verbatim_batch(cur: &mut Cursor<'_>) -> Result<(u16, u32, Bytes), RpcDecodeError> {
    let shard = read_u16_le(cur, "shard")?;
    let start_row = read_u32_le(cur, "start_row")?;
    let raw = cur.take(cur.remaining(), "span_batch")?;
    wire::peek_span_count(raw)?;
    Ok((shard, start_row, Bytes::copy_from_slice(raw)))
}

/// Read a length-prefixed embedded DFW1 batch and decode it fully.
fn read_embedded_batch(cur: &mut Cursor<'_>) -> Result<Vec<Span>, RpcDecodeError> {
    let len = cur.varint_u64("batch_len")? as usize;
    let raw = cur.take(len, "batch")?;
    wire::decode_batch(raw).map_err(RpcDecodeError::from)
}

fn decode_body(kind: u8, body: &[u8]) -> Result<RpcBody, RpcDecodeError> {
    let mut cur = Cursor::new(body);
    let decoded = match kind {
        1 => {
            // The batch travels verbatim; validate the DFW1 header now so
            // a corrupt or foreign-version payload fails at the envelope
            // boundary, not deep inside ingest.
            let (shard, start_row, wire) = read_verbatim_batch(&mut cur)?;
            return Ok(RpcBody::SpanBatch {
                shard,
                start_row,
                wire,
            });
        }
        2 => RpcBody::SpanBatchAck {
            shard: read_u16_le(&mut cur, "shard")?,
            start_row: read_u32_le(&mut cur, "start_row")?,
            count: read_u32_le(&mut cur, "count")?,
        },
        3 => {
            let round = read_u32_le(&mut cur, "round")?;
            let n = cur.varint_u64("systrace_count")? as usize;
            let mut systrace = Vec::with_capacity(n.min(cur.remaining().saturating_add(1)));
            for _ in 0..n {
                systrace.push(cur.varint_u64("systrace_key")?);
            }
            let n = cur.varint_u64("pseudo_thread_count")? as usize;
            let mut pseudo_thread = Vec::with_capacity(n.min(cur.remaining().saturating_add(1)));
            for _ in 0..n {
                pseudo_thread.push(cur.varint_u64("pseudo_thread_key")?);
            }
            let n = cur.varint_u64("x_request_count")? as usize;
            let mut x_request = Vec::with_capacity(n.min(cur.remaining().saturating_add(1)));
            for _ in 0..n {
                x_request.push(cur.varint_u128("x_request_key")?);
            }
            let n = cur.varint_u64("tcp_seq_count")? as usize;
            let mut tcp_seq = Vec::with_capacity(n.min(cur.remaining().saturating_add(1)));
            for _ in 0..n {
                tcp_seq.push(cur.varint_u32("tcp_seq_key")?);
            }
            let n = cur.varint_u64("otel_trace_count")? as usize;
            let mut otel_trace = Vec::with_capacity(n.min(cur.remaining().saturating_add(1)));
            for _ in 0..n {
                otel_trace.push(cur.varint_u128("otel_trace_key")?);
            }
            RpcBody::CandidateRequest {
                round,
                keys: CandidateKeys {
                    systrace,
                    pseudo_thread,
                    x_request,
                    tcp_seq,
                    otel_trace,
                },
            }
        }
        4 => {
            let round = read_u32_le(&mut cur, "round")?;
            let spans = read_embedded_batch(&mut cur)?;
            let mut candidates = Vec::with_capacity(spans.len());
            for span in spans {
                let shard = read_u16_le(&mut cur, "candidate_shard")?;
                let row = read_u32_le(&mut cur, "candidate_row")?;
                candidates.push(CandidateSpan { shard, row, span });
            }
            RpcBody::CandidateResponse { round, candidates }
        }
        5 => RpcBody::SpanFetch {
            shard: read_u16_le(&mut cur, "shard")?,
            row: read_u32_le(&mut cur, "row")?,
        },
        6 => {
            let shard = read_u16_le(&mut cur, "shard")?;
            let row = read_u32_le(&mut cur, "row")?;
            let span = match cur.u8("span_present")? {
                0 => None,
                1 => {
                    let mut spans = read_embedded_batch(&mut cur)?;
                    if spans.len() != 1 {
                        return Err(RpcDecodeError::BodyCountMismatch {
                            declared: 1,
                            got: spans.len() as u64,
                        });
                    }
                    Some(Box::new(spans.remove(0)))
                }
                v => {
                    return Err(RpcDecodeError::Body(WireDecodeError::BadEnum {
                        field: "span_present",
                        value: v,
                    }))
                }
            };
            RpcBody::SpanFetchResponse { shard, row, span }
        }
        7 => {
            let (shard, start_row, wire) = read_verbatim_batch(&mut cur)?;
            return Ok(RpcBody::ReplicateBatch {
                shard,
                start_row,
                wire,
            });
        }
        8 => RpcBody::ReplicateAck {
            shard: read_u16_le(&mut cur, "shard")?,
            start_row: read_u32_le(&mut cur, "start_row")?,
            count: read_u32_le(&mut cur, "count")?,
        },
        9 => RpcBody::ShardSummaryRequest {
            shard: read_u16_le(&mut cur, "shard")?,
        },
        10 => RpcBody::ShardSummaryResponse {
            shard: read_u16_le(&mut cur, "shard")?,
            rows: read_u32_le(&mut cur, "rows")?,
            digest: read_u64_le(&mut cur, "digest")?,
        },
        11 => RpcBody::RowRangeRequest {
            shard: read_u16_le(&mut cur, "shard")?,
            start_row: read_u32_le(&mut cur, "start_row")?,
            max_rows: read_u32_le(&mut cur, "max_rows")?,
        },
        12 => {
            let (shard, start_row, wire) = read_verbatim_batch(&mut cur)?;
            return Ok(RpcBody::RowRangeResponse {
                shard,
                start_row,
                wire,
            });
        }
        other => return Err(RpcDecodeError::BadKind { kind: other }),
    };
    if cur.remaining() != 0 {
        return Err(RpcDecodeError::Body(WireDecodeError::TrailingBytes {
            extra: cur.remaining(),
        }));
    }
    Ok(decoded)
}

impl RpcEnvelope {
    /// Frame the envelope into a fabric-segment payload. Infallible by
    /// construction: every body value has exactly one encoding.
    pub fn encode(&self) -> Bytes {
        let mut body = Vec::with_capacity(64);
        self.body.encode_into(&mut body);
        let mut out = Vec::with_capacity(RPC_HEADER_LEN.saturating_add(body.len()));
        out.extend_from_slice(RPC_MAGIC);
        out.extend_from_slice(&self.rpc_id.to_le_bytes());
        out.push(self.body.kind());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        Bytes::from(out)
    }

    /// Parse a fabric-segment payload back into an envelope.
    pub fn decode(payload: &[u8]) -> Result<RpcEnvelope, RpcDecodeError> {
        let (rpc_id, kind, claimed, rest) = split_header(payload)?;
        if rest.len() != claimed {
            return Err(RpcDecodeError::LengthMismatch {
                claimed,
                actual: rest.len(),
            });
        }
        let body = decode_body(kind, rest)?;
        Ok(RpcEnvelope { rpc_id, body })
    }

    /// Peek the rpc_id and kind byte without parsing the body (tap
    /// classification, dispatch).
    pub fn peek(payload: &[u8]) -> Result<(u64, u8), RpcDecodeError> {
        let (rpc_id, kind, _, _) = split_header(payload)?;
        Ok((rpc_id, kind))
    }
}

/// Split the fixed DFR1 header totally: `(rpc_id, kind, claimed body
/// length, body bytes)`. Truncation is checked once up front so the
/// field reads below cannot fail.
fn split_header(payload: &[u8]) -> Result<(u64, u8, usize, &[u8]), RpcDecodeError> {
    let rest = payload
        .get(RPC_HEADER_LEN..)
        .ok_or(RpcDecodeError::Truncated)?;
    if payload.get(..4) != Some(RPC_MAGIC.as_slice()) {
        return Err(RpcDecodeError::BadMagic);
    }
    let rpc_id_bytes: [u8; 8] = payload
        .get(4..12)
        .and_then(|s| s.try_into().ok())
        .ok_or(RpcDecodeError::Truncated)?;
    let kind = *payload.get(12).ok_or(RpcDecodeError::Truncated)?;
    let len_bytes: [u8; 4] = payload
        .get(13..17)
        .and_then(|s| s.try_into().ok())
        .ok_or(RpcDecodeError::Truncated)?;
    Ok((
        u64::from_le_bytes(rpc_id_bytes),
        kind,
        u32::from_le_bytes(len_bytes) as usize,
        rest,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TapSide;

    fn sample_keys() -> CandidateKeys {
        CandidateKeys {
            systrace: vec![1, 2],
            pseudo_thread: vec![3],
            // Deliberately above u64::MAX: the wire must carry full u128s.
            x_request: vec![0xdead_beef_dead_beef_dead_beef_dead_beef],
            tcp_seq: vec![42],
            otel_trace: vec![u128::MAX - 1],
        }
    }

    #[test]
    fn candidate_keys_len_counts_every_index() {
        assert_eq!(sample_keys().len(), 6);
        assert!(CandidateKeys::default().is_empty());
    }

    #[test]
    fn envelope_round_trips_every_body_kind() {
        let span = Span::synthetic(TapSide::ServerProcess, 100, 900);
        let bodies = vec![
            RpcBody::span_batch(3, 17, std::slice::from_ref(&span)),
            RpcBody::SpanBatchAck {
                shard: 3,
                start_row: 17,
                count: 1,
            },
            RpcBody::CandidateRequest {
                round: 2,
                keys: sample_keys(),
            },
            RpcBody::CandidateResponse {
                round: 2,
                candidates: vec![
                    CandidateSpan {
                        shard: 1,
                        row: 9,
                        span: span.clone(),
                    },
                    CandidateSpan {
                        shard: 4,
                        row: 0,
                        span: span.clone(),
                    },
                ],
            },
            RpcBody::SpanFetch { shard: 0, row: 4 },
            RpcBody::SpanFetchResponse {
                shard: 0,
                row: 4,
                span: Some(Box::new(span.clone())),
            },
            RpcBody::SpanFetchResponse {
                shard: 0,
                row: 5,
                span: None,
            },
            RpcBody::CandidateResponse {
                round: 0,
                candidates: Vec::new(),
            },
            RpcBody::ReplicateBatch {
                shard: 3,
                start_row: 17,
                wire: Bytes::from(wire::encode_batch(std::slice::from_ref(&span))),
            },
            RpcBody::ReplicateAck {
                shard: 3,
                start_row: 17,
                count: 1,
            },
            RpcBody::ShardSummaryRequest { shard: 6 },
            RpcBody::ShardSummaryResponse {
                shard: 6,
                rows: 4096,
                digest: 0xfeed_face_cafe_beef,
            },
            RpcBody::RowRangeRequest {
                shard: 6,
                start_row: 128,
                max_rows: 512,
            },
            RpcBody::row_range_response(6, 128, std::slice::from_ref(&span)),
            RpcBody::row_range_response(6, 0, &[]),
        ];
        for body in bodies {
            let env = RpcEnvelope { rpc_id: 77, body };
            let wire = env.encode();
            let back = RpcEnvelope::decode(&wire).expect("decodes");
            assert_eq!(back, env);
            let (id, kind) = RpcEnvelope::peek(&wire).expect("peeks");
            assert_eq!(id, 77);
            assert_eq!(kind, env.body.kind());
        }
    }

    #[test]
    fn span_batch_body_carries_the_encoded_batch_verbatim() {
        let spans = vec![
            Span::synthetic(TapSide::ClientProcess, 1, 2),
            Span::synthetic(TapSide::ServerProcess, 3, 4),
        ];
        let raw = wire::encode_batch(&spans);
        let body = RpcBody::span_batch(7, 100, &spans);
        let RpcBody::SpanBatch { wire: carried, .. } = &body else {
            unreachable!()
        };
        assert_eq!(
            &carried[..],
            &raw[..],
            "no re-encode between batch and body"
        );
        let env = RpcEnvelope { rpc_id: 1, body };
        let payload = env.encode();
        // The batch bytes appear verbatim inside the framed payload.
        assert_eq!(&payload[RPC_HEADER_LEN + 6..], &raw[..]);
        let back = RpcEnvelope::decode(&payload).expect("decodes");
        let RpcBody::SpanBatch { wire: w, .. } = back.body else {
            panic!("wrong kind");
        };
        assert_eq!(wire::decode_batch(&w).expect("batch decodes"), spans);
    }

    #[test]
    fn replicate_batch_forwards_the_ingest_bytes_verbatim() {
        // A primary forwarding a batch to a replica reuses the exact bytes
        // the agent shipped — only the kind byte differs on the wire.
        let spans = vec![
            Span::synthetic(TapSide::ClientProcess, 1, 2),
            Span::synthetic(TapSide::ServerProcess, 3, 4),
        ];
        let ingest = RpcBody::span_batch(7, 100, &spans);
        let RpcBody::SpanBatch { wire: carried, .. } = &ingest else {
            unreachable!()
        };
        let forward = RpcBody::ReplicateBatch {
            shard: 7,
            start_row: 100,
            wire: carried.clone(),
        };
        assert_eq!(forward.kind(), 7);
        let payload = RpcEnvelope {
            rpc_id: 11,
            body: forward,
        }
        .encode();
        assert_eq!(&payload[RPC_HEADER_LEN + 6..], &carried[..]);
        let back = RpcEnvelope::decode(&payload).expect("decodes");
        let RpcBody::ReplicateBatch { wire: w, .. } = back.body else {
            panic!("wrong kind");
        };
        assert_eq!(wire::decode_batch(&w).expect("batch decodes"), spans);
    }

    #[test]
    fn u128_keys_survive_the_wire_exactly() {
        let env = RpcEnvelope {
            rpc_id: 1,
            body: RpcBody::CandidateRequest {
                round: 0,
                keys: CandidateKeys {
                    x_request: vec![u128::MAX, (u64::MAX as u128) + 1],
                    otel_trace: vec![u128::MAX],
                    ..CandidateKeys::default()
                },
            },
        };
        let back = RpcEnvelope::decode(&env.encode()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            RpcEnvelope::decode(b"short"),
            Err(RpcDecodeError::Truncated)
        );
        let mut wire = RpcEnvelope {
            rpc_id: 5,
            body: RpcBody::SpanBatchAck {
                shard: 0,
                start_row: 0,
                count: 0,
            },
        }
        .encode()
        .to_vec();
        // Corrupt the magic.
        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            RpcEnvelope::decode(&bad_magic),
            Err(RpcDecodeError::BadMagic)
        );
        // Truncate the body.
        let cut = wire.len() - 2;
        assert!(matches!(
            RpcEnvelope::decode(&wire[..cut]),
            Err(RpcDecodeError::LengthMismatch { .. })
        ));
        // An unassigned kind byte.
        wire[12] = 99;
        assert_eq!(
            RpcEnvelope::decode(&wire),
            Err(RpcDecodeError::BadKind { kind: 99 })
        );
        // A kind whose body shape needs more bytes than an ack carries.
        wire[12] = 4;
        assert!(matches!(
            RpcEnvelope::decode(&wire),
            Err(RpcDecodeError::Body(_))
        ));
    }

    #[test]
    fn hostile_claimed_length_is_rejected_without_wrapping() {
        // The length field claims u32::MAX bytes against a tiny body: the
        // comparison must stay a plain equality, never header + claimed
        // arithmetic that could wrap under overflow-checks.
        let mut wire = RpcEnvelope {
            rpc_id: 7,
            body: RpcBody::SpanBatchAck {
                shard: 0,
                start_row: 0,
                count: 0,
            },
        }
        .encode()
        .to_vec();
        wire[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            RpcEnvelope::decode(&wire),
            Err(RpcDecodeError::LengthMismatch {
                claimed,
                actual
            }) if claimed == u32::MAX as usize && actual < claimed
        ));
    }

    #[test]
    fn peek_requires_the_full_header_and_nothing_more() {
        let wire = RpcEnvelope {
            rpc_id: 11,
            body: RpcBody::SpanBatchAck {
                shard: 3,
                start_row: 4,
                count: 5,
            },
        }
        .encode();
        // Exactly the fixed header is enough to classify the frame even
        // though the body is missing; one byte short is Truncated.
        assert_eq!(RpcEnvelope::peek(&wire[..RPC_HEADER_LEN]), Ok((11, 2)));
        assert_eq!(
            RpcEnvelope::peek(&wire[..RPC_HEADER_LEN - 1]),
            Err(RpcDecodeError::Truncated)
        );
        assert_eq!(RpcEnvelope::peek(&[]), Err(RpcDecodeError::Truncated));
    }

    #[test]
    fn span_batch_with_bumped_dfw1_version_is_rejected_at_the_envelope() {
        let span = Span::synthetic(TapSide::ClientProcess, 1, 2);
        let env = RpcEnvelope {
            rpc_id: 9,
            body: RpcBody::span_batch(0, 0, std::slice::from_ref(&span)),
        };
        let mut payload = env.encode().to_vec();
        // The DFW1 version byte sits right after the batch's magic, which
        // itself follows the 17-byte header + shard (2) + start_row (4).
        let version_off = RPC_HEADER_LEN + 6 + 4;
        assert_eq!(payload[version_off], wire::WIRE_VERSION);
        payload[version_off] = wire::WIRE_VERSION + 1;
        assert_eq!(
            RpcEnvelope::decode(&payload),
            Err(RpcDecodeError::BadVersion {
                found: wire::WIRE_VERSION + 1
            })
        );
    }

    #[test]
    fn trailing_body_bytes_are_rejected() {
        let env = RpcEnvelope {
            rpc_id: 2,
            body: RpcBody::SpanFetch { shard: 1, row: 2 },
        };
        let mut payload = env.encode().to_vec();
        payload.push(0xAA);
        // Fix up the claimed body length so the frame check passes and the
        // body-level trailing check has to catch it.
        let claimed = (payload.len() - RPC_HEADER_LEN) as u32;
        payload[13..17].copy_from_slice(&claimed.to_le_bytes());
        assert_eq!(
            RpcEnvelope::decode(&payload),
            Err(RpcDecodeError::Body(WireDecodeError::TrailingBytes {
                extra: 1
            }))
        );
    }
}
