//! Cluster RPC vocabulary: the messages trace-server nodes exchange over
//! the `df-net` fabric.
//!
//! Two protocols share one envelope:
//!
//! * **Span-batch shipping** — an agent (or ingest front-end) ships a
//!   contiguous run of routed spans to the node owning their shard
//!   ([`RpcBody::SpanBatch`]), acknowledged per batch
//!   ([`RpcBody::SpanBatchAck`]). `start_row` makes application
//!   idempotent: a duplicate (retransmitted) batch is detected by row
//!   position, an out-of-order batch is stashed until contiguous.
//! * **Candidate-set probing** — Algorithm 1 Phase 1's per-round key
//!   batches travel to remote shard owners as [`RpcBody::CandidateRequest`]
//!   and come back as `(shard, row, span)` triples
//!   ([`RpcBody::CandidateResponse`]). The `round` number lets the
//!   coordinator reject stale or duplicate responses, which is what keeps
//!   retries from reordering frontier rounds.
//! * **Span fetch** ([`RpcBody::SpanFetch`] /
//!   [`RpcBody::SpanFetchResponse`]) — the coordinator pulling one span by
//!   `(shard, row)` address, e.g. the query's start span when its shard
//!   lives on another node.
//!
//! ## Framing
//!
//! An envelope serialises to a fabric-segment payload as a fixed 17-byte
//! header — magic `DFR1`, `rpc_id` (u64 LE), a kind byte, body length
//! (u32 LE) — followed by the JSON-encoded body. The kind byte duplicates
//! the body's enum tag so a receiver can dispatch (or a tap can classify)
//! without parsing JSON; [`RpcEnvelope::decode`] verifies the two agree.

use crate::span::Span;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic prefixing every RPC payload on the wire.
pub const RPC_MAGIC: &[u8; 4] = b"DFR1";

/// Fixed header length: magic (4) + rpc_id (8) + kind (1) + body len (4).
pub const RPC_HEADER_LEN: usize = 17;

/// One frontier round's association keys, batched per index — the Phase 1
/// probe payload. Field order mirrors the probe order on the receiving
/// shard (systrace, pseudo-thread, X-Request-ID, TCP seq, OTel trace), so
/// two stores probing the same batch return candidates in the same order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateKeys {
    /// Thread-propagated syscall trace ids.
    pub systrace: Vec<u64>,
    /// Coroutine pseudo-thread ids.
    pub pseudo_thread: Vec<u64>,
    /// X-Request-ID header values.
    pub x_request: Vec<u128>,
    /// TCP sequence numbers.
    pub tcp_seq: Vec<u32>,
    /// Third-party (OTel) trace ids.
    pub otel_trace: Vec<u128>,
}

impl CandidateKeys {
    /// Total keys across all indexes.
    pub fn len(&self) -> usize {
        self.systrace.len()
            + self.pseudo_thread.len()
            + self.x_request.len()
            + self.tcp_seq.len()
            + self.otel_trace.len()
    }

    /// Whether the batch holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One remote candidate: the span plus its `(shard, row)` address, so the
/// coordinator can extend its global visited set exactly as a local probe
/// would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSpan {
    /// Global shard index the span lives in.
    pub shard: u16,
    /// Row within that shard.
    pub row: u32,
    /// The span itself.
    pub span: Span,
}

/// RPC message body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RpcBody {
    /// Ship a contiguous run of routed spans to the shard's owner. The
    /// spans carry their already-assigned global ids; `start_row` is the
    /// row the first span must land on (idempotency anchor).
    SpanBatch {
        /// Global shard index.
        shard: u16,
        /// Row the first span lands on.
        start_row: u32,
        /// The routed spans, in row order.
        spans: Vec<Span>,
    },
    /// Acknowledge a span batch (same coordinates as the batch).
    SpanBatchAck {
        /// Global shard index.
        shard: u16,
        /// Row the acknowledged batch started at.
        start_row: u32,
        /// Spans acknowledged.
        count: u32,
    },
    /// Probe the receiver's shards with one frontier round's key batch.
    CandidateRequest {
        /// Phase 1 round number (coordinator-local, monotone).
        round: u32,
        /// The round's keys.
        keys: CandidateKeys,
    },
    /// The receiver's new candidate rows for a probe round.
    CandidateResponse {
        /// Round this responds to.
        round: u32,
        /// Matching spans with their global addresses.
        candidates: Vec<CandidateSpan>,
    },
    /// Fetch one span by address (the query coordinator seeding Phase 1
    /// when the start span's shard lives on another node).
    SpanFetch {
        /// Global shard index.
        shard: u16,
        /// Row within the shard.
        row: u32,
    },
    /// Answer to a [`RpcBody::SpanFetch`]; `None` when the row does not
    /// exist (or is tombstoned) on the receiver.
    SpanFetchResponse {
        /// Echoed shard.
        shard: u16,
        /// Echoed row.
        row: u32,
        /// The span, if present and live.
        span: Option<Box<Span>>,
    },
}

impl RpcBody {
    /// The header kind byte for this body.
    pub fn kind(&self) -> u8 {
        match self {
            RpcBody::SpanBatch { .. } => 1,
            RpcBody::SpanBatchAck { .. } => 2,
            RpcBody::CandidateRequest { .. } => 3,
            RpcBody::CandidateResponse { .. } => 4,
            RpcBody::SpanFetch { .. } => 5,
            RpcBody::SpanFetchResponse { .. } => 6,
        }
    }
}

/// A framed RPC message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcEnvelope {
    /// Caller-assigned id; the response echoes it, retries reuse it.
    pub rpc_id: u64,
    /// The message.
    pub body: RpcBody,
}

/// Why a payload failed to decode as an RPC envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcDecodeError {
    /// Payload shorter than the fixed header.
    Truncated,
    /// Magic bytes are not `DFR1` (not an RPC payload at all).
    BadMagic,
    /// Header body-length disagrees with the actual payload length.
    LengthMismatch {
        /// Length the header claimed.
        claimed: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// The JSON body failed to parse.
    BadBody(String),
    /// Header kind byte disagrees with the parsed body's variant.
    KindMismatch {
        /// Kind byte from the header.
        header: u8,
        /// Kind implied by the parsed body.
        body: u8,
    },
}

impl fmt::Display for RpcDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcDecodeError::Truncated => write!(f, "payload shorter than RPC header"),
            RpcDecodeError::BadMagic => write!(f, "payload does not start with DFR1"),
            RpcDecodeError::LengthMismatch { claimed, actual } => {
                write!(f, "header claims {claimed}-byte body, got {actual}")
            }
            RpcDecodeError::BadBody(e) => write!(f, "bad RPC body: {e}"),
            RpcDecodeError::KindMismatch { header, body } => {
                write!(f, "header kind {header} != body kind {body}")
            }
        }
    }
}

impl std::error::Error for RpcDecodeError {}

impl RpcEnvelope {
    /// Frame the envelope into a fabric-segment payload.
    pub fn encode(&self) -> Bytes {
        let body = serde_json::to_string(&self.body).expect("RPC body serialises");
        let mut out = Vec::with_capacity(RPC_HEADER_LEN + body.len());
        out.extend_from_slice(RPC_MAGIC);
        out.extend_from_slice(&self.rpc_id.to_le_bytes());
        out.push(self.body.kind());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(body.as_bytes());
        Bytes::from(out)
    }

    /// Parse a fabric-segment payload back into an envelope.
    pub fn decode(payload: &[u8]) -> Result<RpcEnvelope, RpcDecodeError> {
        if payload.len() < RPC_HEADER_LEN {
            return Err(RpcDecodeError::Truncated);
        }
        if &payload[..4] != RPC_MAGIC {
            return Err(RpcDecodeError::BadMagic);
        }
        let rpc_id = u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
        let kind = payload[12];
        let claimed = u32::from_le_bytes(payload[13..17].try_into().expect("4 bytes")) as usize;
        let rest = &payload[RPC_HEADER_LEN..];
        if rest.len() != claimed {
            return Err(RpcDecodeError::LengthMismatch {
                claimed,
                actual: rest.len(),
            });
        }
        let text = std::str::from_utf8(rest).map_err(|e| RpcDecodeError::BadBody(e.to_string()))?;
        let body: RpcBody =
            serde_json::from_str(text).map_err(|e| RpcDecodeError::BadBody(e.to_string()))?;
        if body.kind() != kind {
            return Err(RpcDecodeError::KindMismatch {
                header: kind,
                body: body.kind(),
            });
        }
        Ok(RpcEnvelope { rpc_id, body })
    }

    /// Peek the rpc_id and kind byte without parsing the JSON body (tap
    /// classification, dispatch).
    pub fn peek(payload: &[u8]) -> Result<(u64, u8), RpcDecodeError> {
        if payload.len() < RPC_HEADER_LEN {
            return Err(RpcDecodeError::Truncated);
        }
        if &payload[..4] != RPC_MAGIC {
            return Err(RpcDecodeError::BadMagic);
        }
        let rpc_id = u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
        Ok((rpc_id, payload[12]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TapSide;

    fn sample_keys() -> CandidateKeys {
        CandidateKeys {
            systrace: vec![1, 2],
            pseudo_thread: vec![3],
            // Deliberately above u64::MAX: the wire must carry full u128s.
            x_request: vec![0xdead_beef_dead_beef_dead_beef_dead_beef],
            tcp_seq: vec![42],
            otel_trace: vec![u128::MAX - 1],
        }
    }

    #[test]
    fn candidate_keys_len_counts_every_index() {
        assert_eq!(sample_keys().len(), 6);
        assert!(CandidateKeys::default().is_empty());
    }

    #[test]
    fn envelope_round_trips_every_body_kind() {
        let span = Span::synthetic(TapSide::ServerProcess, 100, 900);
        let bodies = vec![
            RpcBody::SpanBatch {
                shard: 3,
                start_row: 17,
                spans: vec![span.clone()],
            },
            RpcBody::SpanBatchAck {
                shard: 3,
                start_row: 17,
                count: 1,
            },
            RpcBody::CandidateRequest {
                round: 2,
                keys: sample_keys(),
            },
            RpcBody::CandidateResponse {
                round: 2,
                candidates: vec![CandidateSpan {
                    shard: 1,
                    row: 9,
                    span: span.clone(),
                }],
            },
            RpcBody::SpanFetch { shard: 0, row: 4 },
            RpcBody::SpanFetchResponse {
                shard: 0,
                row: 4,
                span: Some(Box::new(span)),
            },
        ];
        for body in bodies {
            let env = RpcEnvelope { rpc_id: 77, body };
            let wire = env.encode();
            let back = RpcEnvelope::decode(&wire).expect("decodes");
            assert_eq!(back, env);
            let (id, kind) = RpcEnvelope::peek(&wire).expect("peeks");
            assert_eq!(id, 77);
            assert_eq!(kind, env.body.kind());
        }
    }

    #[test]
    fn u128_keys_survive_the_wire_exactly() {
        let env = RpcEnvelope {
            rpc_id: 1,
            body: RpcBody::CandidateRequest {
                round: 0,
                keys: CandidateKeys {
                    x_request: vec![u128::MAX, (u64::MAX as u128) + 1],
                    otel_trace: vec![u128::MAX],
                    ..CandidateKeys::default()
                },
            },
        };
        let back = RpcEnvelope::decode(&env.encode()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            RpcEnvelope::decode(b"short"),
            Err(RpcDecodeError::Truncated)
        );
        let mut wire = RpcEnvelope {
            rpc_id: 5,
            body: RpcBody::SpanBatchAck {
                shard: 0,
                start_row: 0,
                count: 0,
            },
        }
        .encode()
        .to_vec();
        // Corrupt the magic.
        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            RpcEnvelope::decode(&bad_magic),
            Err(RpcDecodeError::BadMagic)
        );
        // Truncate the body.
        let cut = wire.len() - 2;
        assert!(matches!(
            RpcEnvelope::decode(&wire[..cut]),
            Err(RpcDecodeError::LengthMismatch { .. })
        ));
        // Flip the kind byte so header and body disagree.
        wire[12] = 4;
        assert!(matches!(
            RpcEnvelope::decode(&wire),
            Err(RpcDecodeError::KindMismatch { header: 4, body: 2 })
        ));
    }
}
